"""Tests for litigation holds (the paper's Section IX future work)."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.common.codec import encode_key
from repro.common.errors import KeyNotFoundError, ShreddingError

DOCS = Schema("docs", [
    Field("doc_id", FieldType.INT),
    Field("body", FieldType.STR),
], key_fields=["doc_id"])

RETENTION = minutes(30)


def make_db(tmp_path, migration=False):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=32),
                        compliance=ComplianceConfig(
                            mode=ComplianceMode.LOG_CONSISTENT,
                            regret_interval=minutes(5),
                            worm_migration=migration,
                            split_threshold=0.6)))
    db.create_relation(DOCS)
    db.set_retention("docs", RETENTION)
    return db


def expire_everything(db):
    """Make all current history old enough to shred."""
    db.pass_time(RETENTION + minutes(5))


def add_history(db, doc_id, versions=3):
    with db.transaction() as txn:
        db.insert(txn, "docs", {"doc_id": doc_id, "body": "v0"})
    for v in range(1, versions):
        with db.transaction() as txn:
            db.update(txn, "docs", {"doc_id": doc_id, "body": f"v{v}"})


class TestHoldLifecycle:
    def test_place_and_query(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        hold_id = db.place_hold("docs", key=(1,), case_ref="SEC-2026-17")
        assert db.holds.is_held("docs", encode_key((1,)))
        assert not db.holds.is_held("docs", encode_key((2,)))
        holds = db.holds.active_holds()
        assert len(holds) == 1
        assert holds[0].case_ref == "SEC-2026-17"
        assert holds[0].hold_id == hold_id

    def test_relation_wide_hold(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        add_history(db, 2)
        db.place_hold("docs")
        assert db.holds.is_held("docs", encode_key((1,)))
        assert db.holds.is_held("docs", encode_key((2,)))

    def test_release_is_versioned(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        hold_id = db.place_hold("docs", key=(1,))
        placed_at = db.clock.now()
        db.clock.advance(minutes(1))
        db.release_hold(hold_id)
        assert not db.holds.is_held("docs", encode_key((1,)))
        # but it WAS held at placement time: history preserved
        assert db.holds.is_held("docs", encode_key((1,)), at=placed_at)
        history = db.versions("__holds__", (hold_id,))
        assert len(history) == 2

    def test_double_release_rejected(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        hold_id = db.place_hold("docs", key=(1,))
        db.release_hold(hold_id)
        with pytest.raises(ShreddingError):
            db.release_hold(hold_id)

    def test_release_unknown_hold(self, tmp_path):
        db = make_db(tmp_path)
        with pytest.raises(KeyNotFoundError):
            db.release_hold(404)

    def test_hold_requires_relation(self, tmp_path):
        from repro.common.errors import RelationNotFoundError
        db = make_db(tmp_path)
        with pytest.raises(RelationNotFoundError):
            db.place_hold("ghost")

    def test_ids_unique_after_restart_probe(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        first = db.place_hold("docs", key=(1,))
        db.holds._next_id = 1  # simulate a fresh manager after restart
        second = db.place_hold("docs", key=(1,))
        assert second != first


class TestHoldsBlockShredding:
    def test_held_tuple_survives_vacuum(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        add_history(db, 2)
        db.place_hold("docs", key=(1,), case_ref="subpoena")
        expire_everything(db)
        report = db.vacuum()
        # doc 2's two superseded versions shredded; doc 1 untouched
        assert report.shredded_live == 2
        assert len(db.versions("docs", (1,))) == 3
        assert len(db.versions("docs", (2,))) == 1
        audit = Auditor(db).audit()
        assert audit.ok, audit.summary()

    def test_released_hold_allows_shredding(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        hold_id = db.place_hold("docs", key=(1,))
        expire_everything(db)
        assert db.vacuum().shredded_live == 0
        db.release_hold(hold_id)
        assert db.vacuum().shredded_live == 2
        assert Auditor(db).audit().ok

    def test_relation_hold_blocks_everything(self, tmp_path):
        db = make_db(tmp_path)
        for doc in range(5):
            add_history(db, doc)
        db.place_hold("docs")
        expire_everything(db)
        assert db.vacuum().shredded_live == 0

    def test_hold_blocks_worm_shredding(self, tmp_path):
        db = make_db(tmp_path, migration=True)
        with db.transaction() as txn:
            db.insert(txn, "docs", {"doc_id": 1, "body": "v0"})
        for v in range(1, 120):
            db.clock.advance(1000)
            with db.transaction() as txn:
                db.update(txn, "docs", {"doc_id": 1, "body": f"v{v}"})
        db.engine.run_stamper()
        assert db.engine.histdir.page_count() > 0
        db.place_hold("docs", key=(1,))
        expire_everything(db)
        report = db.vacuum()
        assert report.shredded_worm == 0
        assert len(db.versions("docs", (1,))) == 120


class TestAuditorEnforcesHolds:
    def test_shredding_held_tuple_fails_audit(self, tmp_path):
        # a dishonest operator bypasses the vacuum's hold check: the
        # SHREDDED record itself convicts them
        db = make_db(tmp_path)
        add_history(db, 1)
        db.place_hold("docs", key=(1,), case_ref="grand-jury")
        expire_everything(db)
        info = db.engine.relation("docs")
        db.engine.run_stamper()
        victim = info.tree.versions(encode_key((1,)))[0]
        db.plugin.log_shredded(victim, 0, db.clock.now())
        db.engine.physically_delete(info.relation_id, victim.key,
                                    victim.start)
        report = Auditor(db).audit()
        assert not report.ok
        assert "shred-under-hold" in report.codes()

    def test_shred_after_release_passes_audit(self, tmp_path):
        db = make_db(tmp_path)
        add_history(db, 1)
        hold_id = db.place_hold("docs", key=(1,))
        expire_everything(db)
        db.release_hold(hold_id)
        db.clock.advance(minutes(1))
        assert db.vacuum().shredded_live == 2
        report = Auditor(db).audit()
        assert report.ok, report.summary()
