"""Tests for the forensic analyzer: localising detected tampering."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.core import Adversary
from repro.core.forensics import ForensicAnalyzer

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=32),
                        compliance=ComplianceConfig(
                            mode=mode,
                            regret_interval=minutes(5))))
    db.create_relation(LEDGER)
    for i in range(40):
        with db.transaction() as txn:
            db.insert(txn, "ledger", {"entry_id": i, "amount": i})
    mala = Adversary(db)
    mala.settle()
    return db, mala


class TestForensics:
    def test_clean_audit_yields_no_evidence(self, tmp_path):
        db, _ = make_db(tmp_path)
        report = ForensicAnalyzer(db).analyze()
        assert report.audit.ok
        assert report.evidence == []

    def test_missing_tuple_localised(self, tmp_path):
        db, mala = make_db(tmp_path)
        insert_done = db.clock.now()
        db.clock.advance(minutes(10))
        tamper_time = db.clock.now()
        mala.shred_tuple("ledger", (7,))
        db.clock.advance(minutes(3))
        report = ForensicAnalyzer(db).analyze()
        assert not report.audit.ok
        missing = [e for e in report.evidence if e.kind == "missing"]
        assert len(missing) == 1
        evidence = missing[0]
        assert evidence.pgno is not None
        # the window brackets the actual tampering moment
        assert evidence.not_before <= tamper_time <= evidence.not_after
        assert evidence.not_before >= 0
        assert insert_done >= evidence.not_before

    def test_posthoc_insert_flagged_as_extra(self, tmp_path):
        db, mala = make_db(tmp_path)
        mala.backdate_insert("ledger", {"entry_id": 9999, "amount": 1},
                             start=db.clock.now() - minutes(60))
        report = ForensicAnalyzer(db).analyze()
        extra = [e for e in report.evidence if e.kind == "extra"]
        assert len(extra) == 1
        assert "post-hoc" in extra[0].detail

    def test_read_mismatch_localised(self, tmp_path):
        db, mala = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        handle = mala.begin_state_reversion(
            "ledger", (3,), {"entry_id": 3, "amount": 31337})
        db.get("ledger", (3,))
        handle.revert()
        db.engine.buffer.drop_all()
        report = ForensicAnalyzer(db).analyze()
        mismatches = [e for e in report.evidence
                      if e.kind == "read-mismatch"]
        assert mismatches
        assert mismatches[0].pgno == handle.pgno

    def test_legal_shredding_is_not_evidence(self, tmp_path):
        db, mala = make_db(tmp_path)
        db.set_retention("ledger", minutes(30))
        db.clock.advance(minutes(1))
        for i in range(5):
            with db.transaction() as txn:
                db.update(txn, "ledger", {"entry_id": i, "amount": -1})
        db.pass_time(minutes(40))
        assert db.vacuum().shredded_live == 5
        # now tamper with something else
        mala.settle()
        mala.shred_tuple("ledger", (20,))
        report = ForensicAnalyzer(db).analyze()
        missing = [e for e in report.evidence if e.kind == "missing"]
        assert len(missing) == 1  # only the real tampering, not the shreds

    def test_summary_readable(self, tmp_path):
        db, mala = make_db(tmp_path)
        mala.shred_tuple("ledger", (7,))
        text = ForensicAnalyzer(db).analyze().summary()
        assert "localised" in text
        assert "missing" in text
