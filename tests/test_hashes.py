"""Tests for ADD-HASH and the sequential page hash Hs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import (DIGEST_BYTES, AddHash, SeqHash, add_hash, h,
                          seq_hash)


class TestAddHash:
    def test_empty_digest_is_zero(self):
        assert AddHash().digest() == b"\x00" * DIGEST_BYTES

    def test_digest_length(self):
        assert len(AddHash([b"x"]).digest()) == DIGEST_BYTES

    def test_commutative(self):
        items = [b"alpha", b"beta", b"gamma", b"delta"]
        forward = AddHash(items)
        backward = AddHash(reversed(items))
        assert forward == backward
        assert forward.digest() == backward.digest()

    def test_incremental_matches_batch(self):
        items = [f"item{i}".encode() for i in range(50)]
        incremental = AddHash()
        for item in items:
            incremental.add(item)
        assert incremental.digest() == add_hash(items)

    def test_multiset_sensitivity(self):
        once = AddHash([b"x"])
        twice = AddHash([b"x", b"x"])
        assert once != twice

    def test_different_sets_differ(self):
        assert AddHash([b"a", b"b"]) != AddHash([b"a", b"c"])

    def test_remove_inverts_add(self):
        base = AddHash([b"a", b"b"])
        grown = base.copy().add(b"c").remove(b"c")
        assert grown == base
        assert grown.count == 2

    def test_union(self):
        left = AddHash([b"a", b"b"])
        right = AddHash([b"c"])
        assert left.union(right) == AddHash([b"a", b"b", b"c"])

    def test_copy_is_independent(self):
        base = AddHash([b"a"])
        dup = base.copy()
        dup.add(b"b")
        assert base != dup

    def test_count_tracks_adds_and_removes(self):
        hash_ = AddHash([b"a", b"b"])
        assert hash_.count == 2
        hash_.remove(b"a")
        assert hash_.count == 1

    def test_completeness_condition_shape(self):
        # The auditor's check: H(Ds ∪ L) == H(Df) for the legitimate final
        # state and != for a tampered one (Section IV-A).
        snapshot = [b"t1", b"t2"]
        log = [b"t3", b"t4"]
        final_good = [b"t4", b"t1", b"t3", b"t2"]
        final_tampered = [b"t4", b"t1", b"t3"]  # t2 shredded illegally
        expected = AddHash(snapshot).union(AddHash(log))
        assert expected == AddHash(final_good)
        assert expected != AddHash(final_tampered)

    @given(st.lists(st.binary(min_size=1, max_size=32), max_size=20))
    def test_permutation_invariance(self, items):
        assert AddHash(items) == AddHash(sorted(items))

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                    max_size=10))
    def test_add_then_remove_all_returns_to_empty(self, items):
        hash_ = AddHash(items)
        for item in items:
            hash_.remove(item)
        assert hash_ == AddHash()


class TestSeqHash:
    def test_order_sensitive(self):
        assert SeqHash([b"a", b"b"]) != SeqHash([b"b", b"a"])

    def test_incremental_matches_batch(self):
        items = [f"r{i}".encode() for i in range(20)]
        running = SeqHash()
        for item in items:
            running.add(item)
        assert running.digest() == seq_hash(items)

    def test_empty_differs_from_single(self):
        assert SeqHash() != SeqHash([b""])

    def test_digest_length(self):
        assert len(seq_hash([b"x"])) == DIGEST_BYTES

    def test_copy_supports_divergent_replay(self):
        # The auditor snapshots the chain state before a tuple that is later
        # undone, then rolls forward both with and without it (Section V).
        prefix = SeqHash([b"r1", b"r2"])
        with_t2 = prefix.copy().add(b"t2").add(b"r3")
        without_t2 = prefix.copy().add(b"r3")
        assert with_t2 != without_t2

    @given(st.lists(st.binary(max_size=16), min_size=2, max_size=8))
    def test_any_reordering_detected(self, items):
        rotated = items[1:] + items[:1]
        if rotated == items:
            return
        assert SeqHash(items) != SeqHash(rotated)


def test_h_is_sha512():
    import hashlib
    assert h(b"abc") == hashlib.sha512(b"abc").digest()
