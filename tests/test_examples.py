"""Smoke tests: every example script must run clean, end to end.

Examples are the library's living documentation; run them as subprocesses
exactly as a user would and check their key output lines.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "first audit: COMPLIANT" in out
        assert "second audit: TAMPERING" in out
        assert "completeness" in out

    def test_attack_gallery(self):
        out = run_example("attack_gallery.py")
        assert out.count("DETECTED") >= 11
        assert "missed" in out  # the state-reversion asymmetry

    def test_shredding_lifecycle(self):
        out = run_example("shredding_lifecycle.py")
        assert "vacuum before expiry: 0" in out
        assert "audit: COMPLIANT" in out
        assert "active records survive" in out

    def test_worm_migration(self):
        out = run_example("worm_migration_timetravel.py")
        assert "historical page(s) migrated to WORM" in out
        assert "audit: COMPLIANT" in out
        assert "time travel:" in out

    def test_crash_recovery(self):
        out = run_example("crash_recovery_demo.py")
        assert "audit after honest recovery: COMPLIANT" in out
        assert "audit after silent recovery: TAMPERING DETECTED" in out

    def test_litigation_holds(self):
        out = run_example("litigation_holds.py")
        assert "audit: COMPLIANT (the hold was honoured)" in out
        assert "audit: VIOLATION" in out

    def test_tpcc_demo_small(self):
        out = run_example("tpcc_compliance_demo.py", "60")
        assert "overhead vs regular" in out
        assert out.count("audit: COMPLIANT") == 2
