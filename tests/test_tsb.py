"""Tests for the time-split B+-tree and the structural integrity checker."""

import pytest

from repro.btree import TSBTree, check_tree
from repro.btree.events import TimeSplitEvent
from repro.common.clock import SimulatedClock
from repro.common.codec import encode_key
from repro.storage import BufferCache, Pager, TupleVersion

PAGE_SIZE = 512


def tv(key, start, stamped=True, payload=b"p"):
    return TupleVersion(relation_id=1, key=encode_key((key,)), start=start,
                        stamped=stamped, eol=False, seq=0, payload=payload)


class MigrationRecorder:
    """Captures time-split events as the engine's migrate callback would."""

    def __init__(self):
        self.events = []

    def __call__(self, event: TimeSplitEvent) -> str:
        self.events.append(event)
        return f"migrated/p{event.leaf_pgno}-{len(self.events)}"


def make_tsb(tmp_path, threshold, clock=None):
    clock = clock or SimulatedClock()
    tmp_path.mkdir(parents=True, exist_ok=True)
    pager = Pager(tmp_path / "db", PAGE_SIZE)
    buffer = BufferCache(pager, 64)
    recorder = MigrationRecorder()
    tree = TSBTree.create_tsb(
        buffer, PAGE_SIZE, relation_id=1, split_threshold=threshold,
        now=clock.now, resolve_start=lambda t: t.start if t.stamped else
        None, migrate=recorder)
    return tree, buffer, recorder, clock


class TestSplitPolicy:
    def test_skewed_updates_trigger_time_splits(self, tmp_path):
        # one hot key updated many times: distinct fraction ~0 < threshold
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.5)
        for i in range(1, 200):
            tree.insert(tv(1, start=clock.tick()))
        assert tree.time_splits > 0
        assert recorder.events, "history should have migrated"

    def test_uniform_inserts_never_time_split(self, tmp_path):
        # all-distinct keys: fraction 1.0, never below any threshold <= 1
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.9)
        for key in range(300):
            tree.insert(tv(key, start=clock.tick()))
        assert tree.time_splits == 0
        assert tree.key_splits > 0
        assert recorder.events == []

    def test_threshold_zero_disables_time_splits(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.0)
        for i in range(200):
            tree.insert(tv(1, start=clock.tick()))
        assert tree.time_splits == 0

    def test_single_update_per_key_needs_high_threshold(self, tmp_path):
        # ORDER_LINE-like: each key has exactly 2 versions, fraction = 0.5,
        # so threshold 0.5 (not <) must key-split, 0.8 must time-split.
        for threshold, expect_time in [(0.5, False), (0.8, True)]:
            tree, buffer, recorder, clock = make_tsb(
                tmp_path / f"t{threshold}", threshold)
            for key in range(150):
                tree.insert(tv(key, start=clock.tick()))
                tree.insert(tv(key, start=clock.tick()))
            assert (tree.time_splits > 0) == expect_time

    def test_migrated_history_removed_from_live_tree(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.5)
        for i in range(200):
            tree.insert(tv(1, start=clock.tick()))
        live = tree.versions(encode_key((1,)))
        migrated = sum(len(e.hist_entries) for e in recorder.events)
        assert len(live) + migrated == 200
        # the newest version always stays live
        all_starts = [v.start for v in live]
        for event in recorder.events:
            assert max(all_starts) > max(
                h.start for h in event.hist_entries)

    def test_hist_union_live_covers_presplit_page(self, tmp_path):
        # no version is ever lost: everything inserted is either live in
        # the tree or recorded in exactly one migration event
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.5)
        inserted = set()
        for i in range(100):
            record = tree.insert(tv(1, start=clock.tick()))
            inserted.add((record.key, record.start))
        live = {(e.key, e.start) for e in tree.iter_entries()}
        hist = [(h.key, h.start) for event in recorder.events
                for h in event.hist_entries]
        assert len(hist) == len(set(hist)), "a version migrated twice"
        assert live | set(hist) == inserted
        assert live & set(hist) == set()

    def test_unstamped_versions_never_migrate(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.9)
        for i in range(60):
            tree.insert(tv(1, start=clock.tick(), stamped=False))
        for event in recorder.events:
            assert event.hist_entries == []
        # all versions still live
        assert len(tree.versions(encode_key((1,)))) == 60

    def test_migration_events_describe_directory_entries(self, tmp_path):
        # the engine's historical directory is built from these events: each
        # must carry the leaf, the split time, and a non-empty hist set
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.5)
        for i in range(200):
            tree.insert(tv(1, start=clock.tick()))
        assert recorder.events
        for event in recorder.events:
            assert event.hist_entries
            assert event.split_time <= clock.now()
            assert all(h.start < event.split_time
                       for h in event.hist_entries)
            assert event.relation_id == 1

    def test_structure_valid_after_mixed_splits(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.5)
        for key in range(50):
            for _ in range(5):
                tree.insert(tv(key % 7, start=clock.tick()))
            tree.insert(tv(100 + key, start=clock.tick()))
        assert check_tree(lambda p: buffer.get(p), tree.root_pgno) == []

    def test_time_split_counts_feed_fig4(self, tmp_path):
        # higher threshold => more time splits for an update-heavy workload
        counts = {}
        for threshold in (0.2, 0.5, 0.9):
            tree, buffer, recorder, clock = make_tsb(
                tmp_path / f"wl{threshold}", threshold)
            for i in range(300):
                tree.insert(tv(i % 10, start=clock.tick()))
            counts[threshold] = tree.time_splits
        assert counts[0.2] <= counts[0.5] <= counts[0.9]

    def test_invalid_threshold_rejected(self, tmp_path):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            make_tsb(tmp_path, threshold=1.5)


class TestIntegrityChecker:
    def test_detects_swapped_leaf_entries(self, tmp_path):
        # the Fig. 2(b) attack
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.0)
        for key in range(100):
            tree.insert(tv(key, start=1))
        leaf_pgno = tree.leaf_pgnos()[0]
        leaf = buffer.get(leaf_pgno)
        leaf.entries[0], leaf.entries[2] = leaf.entries[2], leaf.entries[0]
        issues = check_tree(lambda p: buffer.get(p), tree.root_pgno)
        assert any(i.kind == "slot-order" for i in issues)

    def test_detects_tampered_separator(self, tmp_path):
        # the Fig. 2(c) attack: an internal key changed to hide a tuple
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.0)
        for key in range(200):
            tree.insert(tv(key, start=1))
        root = buffer.get(tree.root_pgno)
        assert root.is_internal()
        key_, start_ = root.seps[0]
        root.seps[0] = (encode_key((10_000,)), start_)
        issues = check_tree(lambda p: buffer.get(p), tree.root_pgno)
        assert issues, "tampered separator must be detected"

    def test_detects_version_thread_violation(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.0)
        for start in (10, 20, 30):
            tree.insert(tv(1, start=start))
        leaf = buffer.get(tree.leaf_pgnos()[0])
        leaf.entries[0], leaf.entries[1] = leaf.entries[1], leaf.entries[0]
        issues = check_tree(lambda p: buffer.get(p), tree.root_pgno)
        assert any(i.kind == "version-threading" for i in issues)

    def test_detects_broken_leaf_chain(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.0)
        for key in range(100):
            tree.insert(tv(key, start=1))
        pgnos = tree.leaf_pgnos()
        assert len(pgnos) >= 2
        first = buffer.get(pgnos[0])
        first.next_leaf = pgnos[-1] if len(pgnos) > 2 else -1
        issues = check_tree(lambda p: buffer.get(p), tree.root_pgno)
        assert any(i.kind == "leaf-chain" for i in issues)

    def test_clean_tree_has_no_issues(self, tmp_path):
        tree, buffer, recorder, clock = make_tsb(tmp_path, threshold=0.5)
        for key in range(400):
            tree.insert(tv(key % 40, start=clock.tick()))
        assert check_tree(lambda p: buffer.get(p), tree.root_pgno) == []
