"""Tests for the sharded coordinator (``repro.shard``).

The load-bearing properties:

* routing is deterministic and TPC-C partitions by warehouse;
* a 2-warehouse TPC-C run across 2 shards produces exactly the same
  logical table contents as the same run against one database, and the
  merged :class:`DistributedAuditor` attestation verifies clean;
* tampering with any one shard — its pages or its WORM box — flips the
  combined verdict to tampered *and names the offending shard*;
* the same coordinator suite passes with in-process shards and with
  ``ServerClient`` shards against live ``ComplianceServer`` instances.
"""

import json

import pytest

from repro.common.clock import SimulatedClock
from repro.common.codec import Field, FieldType, Schema
from repro.common.config import ComplianceMode, DBConfig
from repro.common.errors import ConfigError, ShardError
from repro.core import Adversary, Auditor, CompliantDB
from repro.crypto import AuditorKey
from repro.server import ComplianceServer, ServerClient, ServerConfig
from repro.shard import (DecisionJournal, DistributedAuditor, HashRouter,
                         ShardedDB, WarehouseRouter, make_router)
from repro.tpcc import TPCCLoader, TPCCScale
from repro.tpcc.driver import TPCCDriver
from repro.tpcc.schema import ALL_SCHEMAS

T = Schema("t", [Field("a", FieldType.INT), Field("b", FieldType.INT)],
           key_fields=["a"])


def fill(db, lo=1, hi=9):
    with db.transaction() as txn:
        for i in range(lo, hi):
            db.insert(txn, "t", {"a": i, "b": i * 10})


class TestRouters:
    def test_hash_router_is_deterministic(self):
        one, two = HashRouter(4), HashRouter(4)
        for key in [(1,), (2, "x"), ("k", 3.5)]:
            assert one.shard_of("r", key) == two.shard_of("r", key)

    def test_hash_router_salts_by_relation(self):
        router = HashRouter(16)
        placements = {router.shard_of(f"rel{i}", (42,))
                      for i in range(32)}
        assert len(placements) > 1  # same key, different relations

    def test_warehouse_router_partitions_by_leading_key(self):
        router = WarehouseRouter(2)
        assert router.shard_of("stock", (1, 77)) == 0
        assert router.shard_of("stock", (2, 77)) == 1
        assert router.shard_of("stock", (3, 77)) == 0  # round-robin

    def test_warehouse_router_pins_item(self):
        router = WarehouseRouter(4)
        for i_id in (1, 9999):
            assert router.shard_of("item", (i_id,)) == 0
        assert router.shards_for_scan("item") == [0]
        assert router.shards_for_scan("stock") == [0, 1, 2, 3]

    def test_warehouse_router_rejects_non_integer_warehouse(self):
        with pytest.raises(ConfigError):
            WarehouseRouter(2).shard_of("stock", ("oops",))

    def test_registry_round_trip(self):
        assert isinstance(make_router("hash", 3), HashRouter)
        assert isinstance(make_router("warehouse", 3), WarehouseRouter)
        with pytest.raises(ConfigError):
            make_router("nope", 3)


class TestDecisionJournal:
    def test_commits_survive_reopen(self, tmp_path):
        journal = DecisionJournal(tmp_path / "j.jsonl")
        journal.log_commit("g001-000001")
        journal.close()
        reopened = DecisionJournal(tmp_path / "j.jsonl")
        assert "g001-000001" in reopened.committed_gids()
        reopened.close()

    def test_incarnation_increments_per_open(self, tmp_path):
        first = DecisionJournal(tmp_path / "j.jsonl")
        assert first.incarnation == 1
        first.close()
        second = DecisionJournal(tmp_path / "j.jsonl")
        assert second.incarnation == 2
        second.close()

    def test_torn_tail_is_presumed_abort(self, tmp_path):
        journal = DecisionJournal(tmp_path / "j.jsonl")
        journal.log_commit("g001-000001")
        journal.close()
        with open(tmp_path / "j.jsonl", "ab") as f:
            f.write(b'{"decision":"commit","gid":"g001-0')  # torn
        reopened = DecisionJournal(tmp_path / "j.jsonl")
        assert reopened.committed_gids() == frozenset({"g001-000001"})
        reopened.close()


class TestCoordinator:
    def test_single_shard_txn_takes_1pc(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        db.create_relation(T)
        with db.transaction() as txn:
            db.insert(txn, "t", {"a": 1, "b": 10})  # warehouse 1 only
        assert txn.writes == {0}
        counters = db.metrics()["coordinator"]["counters"]
        assert counters["shard_commit_1pc_total"] == 1
        assert counters["shard_commit_2pc_total"] == 0
        assert db.journal.committed_gids() == frozenset()  # no journal
        db.close()

    def test_cross_shard_txn_runs_2pc_and_journals(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        db.create_relation(T)
        with db.transaction() as txn:
            db.insert(txn, "t", {"a": 1, "b": 10})
            db.insert(txn, "t", {"a": 2, "b": 20})
        assert txn.writes == {0, 1}
        assert txn.gid in db.journal.committed_gids()
        counters = db.metrics()["coordinator"]["counters"]
        assert counters["shard_commit_2pc_total"] == 1
        db.close()

    def test_abort_rolls_back_every_shard(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        db.create_relation(T)
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                db.insert(txn, "t", {"a": 1, "b": 10})
                db.insert(txn, "t", {"a": 2, "b": 20})
                raise RuntimeError("client bug")
        assert db.scan("t") == []
        assert db.journal.committed_gids() == frozenset()
        db.close()

    def test_scan_merges_in_global_key_order(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=3)
        db.create_relation(T)
        fill(db, 1, 13)
        assert [k for k, _ in db.scan("t")] == \
            [(i,) for i in range(1, 13)]
        db.close()

    def test_unknown_relation_is_a_shard_error(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        with pytest.raises(ShardError):
            db.get("ghost", (1,))
        db.close()

    def test_reopen_adopts_schemas_from_shard_catalogs(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        db.create_relation(T)
        fill(db)
        db.close()
        reopened = ShardedDB.open(tmp_path / "s")
        assert reopened.get("t", (3,))["b"] == 30
        fill(reopened, 20, 22)  # routing works without create_relation
        assert len(reopened.scan("t")) == 10
        reopened.close()

    def test_meta_file_records_layout(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2, router="hash")
        meta = json.loads((tmp_path / "s" / "shard-meta.json")
                          .read_text())
        assert meta == {"shards": 2, "router": "hash"}
        db.close()
        assert isinstance(ShardedDB.open(tmp_path / "s").router,
                          HashRouter)


class TestTPCCAcrossShards:
    """The acceptance scenario: 2-warehouse TPC-C over 2 shards equals
    the same run against a single database, and the merged attestation
    verifies clean."""

    SCALE = TPCCScale(warehouses=2, districts_per_warehouse=2,
                      customers_per_district=6, items=20,
                      initial_orders_per_district=3, pad=4)
    TXNS = 25

    def run_workload(self, db):
        TPCCLoader(db, self.SCALE, seed=11).load()
        result = TPCCDriver(db, self.SCALE, seed=13).run(self.TXNS)
        db.checkpoint()
        return result

    def test_sharded_run_matches_single_db_baseline(self, tmp_path):
        sharded = ShardedDB.create(tmp_path / "s", shards=2)
        sharded_result = self.run_workload(sharded)

        single = CompliantDB.create(
            tmp_path / "one",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
            clock=SimulatedClock(), auditor_key=AuditorKey.generate())
        single_result = self.run_workload(single)

        # same committed/rolled-back split (the workload is
        # deterministic; only the physical placement differs)
        assert sharded_result.committed == single_result.committed
        assert sharded_result.rolled_back == single_result.rolled_back

        # every relation holds exactly the same keys
        for schema in ALL_SCHEMAS:
            sharded_keys = [k for k, _ in sharded.scan(schema.name)]
            single_keys = [k for k, _ in single.scan(schema.name)]
            assert sharded_keys == single_keys, schema.name

        # warehouse partitioning actually split the data
        per_shard = [len(backend.scan("stock"))
                     for backend in sharded.backends]
        assert all(count > 0 for count in per_shard)

        # merged audit: clean, attestation valid, per-shard digests fold
        report = DistributedAuditor(sharded).audit()
        assert report.ok
        assert report.tampered_shards() == []
        assert report.verify(sharded.auditor_key)
        assert not report.verify(AuditorKey.generate("mala"))

        # the single-DB audit is clean too (baseline sanity)
        assert Auditor(single).audit().ok
        single.close()
        sharded.close()


class TestTamperDetection:
    def make_sharded(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        db.create_relation(T)
        fill(db)
        db.checkpoint()
        return db

    def test_page_tamper_names_the_offending_shard(self, tmp_path):
        db = self.make_sharded(tmp_path)
        victim = db.router.shard_of("t", (2,))
        mala = Adversary(db.backends[victim])
        mala.settle()
        mala.alter_tuple("t", (2,), {"a": 2, "b": 31337})
        report = DistributedAuditor(db).audit(rotate=False)
        assert not report.ok
        assert report.tampered_shards() == [victim]
        # the attestation covers the tampered verdict and still verifies
        assert report.verify(db.auditor_key)
        db.close()

    def test_worm_tamper_names_the_offending_shard(self, tmp_path):
        db = self.make_sharded(tmp_path)
        db.close()
        # flip one byte of shard 0's snapshot on its WORM box
        snap = next((tmp_path / "s" / "shard-000" / "worm")
                    .rglob("snap-*.bin"))
        data = bytearray(snap.read_bytes())
        data[len(data) // 2] ^= 0x01
        snap.write_bytes(bytes(data))
        reopened = ShardedDB.open(tmp_path / "s")
        report = DistributedAuditor(reopened).audit(rotate=False)
        assert not report.ok
        assert report.tampered_shards() == [0]
        assert report.verify(reopened.auditor_key)
        reopened.close()

    def test_combined_digest_is_union_of_shard_digests(self, tmp_path):
        from repro.crypto import AddHash
        db = self.make_sharded(tmp_path)
        report = DistributedAuditor(db).audit(rotate=False)
        folded = AddHash()
        for shard_report in report.shard_reports:
            folded = folded.union(AddHash.from_digest(
                bytes.fromhex(shard_report.final_digest),
                shard_report.final_tuples))
        assert folded.hexdigest() == report.combined_final_digest
        assert folded.count == report.final_tuples
        db.close()


class TestWireShards:
    """The same coordinator, with every shard behind a live server."""

    @pytest.fixture
    def wire_sharded(self, tmp_path):
        key = AuditorKey.generate()
        dbs, servers, clients = [], [], []
        for i in range(2):
            # each server owns its clock: two writer threads must not
            # share one (ticks would race); per-shard audits never
            # compare timestamps across shards
            db = CompliantDB.create(
                tmp_path / f"db{i}",
                DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
                clock=SimulatedClock(), auditor_key=key)
            server = ComplianceServer(
                db, ServerConfig(allow_crash_ops=True)).start()
            dbs.append(db)
            servers.append(server)
            clients.append(ServerClient(*server.address))
        sharded = ShardedDB(clients, HashRouter(2),
                            journal_path=tmp_path / "journal.jsonl",
                            auditor_key=key)
        yield sharded
        for client in clients:
            client.close()
        for server in servers:
            server.shutdown()
        for db in dbs:
            db.close()
        sharded.journal.close()

    def test_cross_shard_commit_over_the_wire(self, wire_sharded):
        db = wire_sharded
        db.create_relation(T)
        fill(db, 1, 13)
        assert [k for k, _ in db.scan("t")] == \
            [(i,) for i in range(1, 13)]
        assert db.get("t", (7,))["b"] == 70
        # at least one multi-shard transaction ran full 2PC
        assert db.journal.committed_gids()

    def test_distributed_audit_over_the_wire(self, wire_sharded):
        db = wire_sharded
        db.create_relation(T)
        fill(db)
        db.checkpoint()
        report = DistributedAuditor(db).audit()
        assert report.ok
        assert report.shards == 2
        assert report.verify(db.auditor_key)

    def test_wire_2pc_crash_recovery(self, wire_sharded):
        db = wire_sharded
        db.create_relation(T)
        # prepare a cross-shard txn on both servers, journal the commit
        # decision, then crash both before phase two reaches them
        txn = db.begin()
        db.insert(txn, "t", {"a": 1, "b": 10})
        db.insert(txn, "t", {"a": 2, "b": 20})
        for shard in sorted(txn.writes):
            db.backends[shard].prepare(txn.handles[shard], txn.gid)
        db.journal.log_commit(txn.gid)
        db.crash_recover()
        assert db.get("t", (1,))["b"] == 10
        assert db.get("t", (2,))["b"] == 20
        # and an undecided prepared txn presumed-aborts
        txn = db.begin()
        db.insert(txn, "t", {"a": 5, "b": 50})
        db.insert(txn, "t", {"a": 6, "b": 60})
        for shard in sorted(txn.writes):
            db.backends[shard].prepare(txn.handles[shard], txn.gid)
        db.crash_recover()
        assert db.get("t", (5,)) is None
        assert db.get("t", (6,)) is None
