"""Tests for the PR 7 durability/consistency bugfixes.

Four fixes ride under the multi-client server:

1. ``WormServer.create_file`` routes immutable bytes through the same
   write+flush path as append data, so ``fsync`` is honoured and the
   flush counters see them.
2. ``WormServer.append(durable=True)`` folds any buffered chunks into
   the *same* physical flush as the new bytes (one round-trip, not two).
3. A failing commit/abort listener halts the transaction manager
   (:class:`ComplianceHaltError`) instead of leaving the compliance log
   silently diverged from the WAL; crash + recovery repairs it.
4. ``TransactionManager.crash_reset`` clears the lock table *in place*
   so components holding a reference keep observing the live table.
"""

import pytest

from repro.common.clock import SimulatedClock, years
from repro.common.config import ComplianceMode, DBConfig
from repro.common.errors import (ComplianceHaltError, LockConflictError,
                                 WormError)
from repro.core import Auditor, CompliantDB
from repro.txn import (LockMode, LockTable, TransactionManager, TxnState)
from repro.wal import TransactionLog
from repro.worm import WormServer


def counter(obs, name, **labels):
    return obs.registry.counter(name, **labels).value


class TestCreateFileFlushPath:
    def test_create_file_counts_flush_and_bytes(self, worm):
        flushes = counter(worm.obs, "worm_flushes_total")
        written = counter(worm.obs, "worm_bytes_written_total")
        worm.create_file("doc", b"x" * 300)
        assert counter(worm.obs, "worm_flushes_total") == flushes + 1
        assert counter(worm.obs, "worm_bytes_written_total") == \
            written + 300
        assert worm.read("doc") == b"x" * 300
        assert worm.size("doc") == 300

    def test_create_file_honours_fsync(self, tmp_path, clock):
        worm = WormServer(tmp_path / "w", clock,
                          default_retention=years(1), fsync=True)
        before = counter(worm.obs, "worm_fsyncs_total")
        worm.create_file("doc", b"payload")
        assert counter(worm.obs, "worm_fsyncs_total") == before + 1

    def test_create_file_flush_histogram_sees_bytes(self, worm):
        from repro.obs import DEFAULT_SIZE_BUCKETS
        worm.create_file("doc", b"y" * 64)
        hist = worm.obs.registry.histogram(
            "worm_flush_bytes", buckets=DEFAULT_SIZE_BUCKETS)
        assert hist.sum >= 64

    def test_empty_witness_file_costs_no_flush(self, worm):
        before = counter(worm.obs, "worm_flushes_total")
        worm.create_file("witness")
        assert counter(worm.obs, "worm_flushes_total") == before
        assert worm.size("witness") == 0

    def test_created_file_leaves_no_open_handle(self, worm):
        # a handle left open by the write path would keep the file
        # mutable-looking and leak on delete
        worm.create_file("doc", b"data")
        assert "doc" not in worm._append_handles


class TestDurableAppendCoalesces:
    def test_durable_append_after_buffered_is_one_flush(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"aa", durable=False)
        worm.append("log", b"bb", durable=False)
        flushes = counter(worm.obs, "worm_flushes_total")
        worm.append("log", b"cc", durable=True)
        assert counter(worm.obs, "worm_flushes_total") == flushes + 1
        assert worm.buffered("log") == 0
        assert worm.read("log") == b"aabbcc"

    def test_coalesced_flush_preserves_order_across_crash(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"11", durable=False)
        worm.append("log", b"22", durable=True)
        # everything landed durably: a crash must lose nothing
        assert worm.drop_buffers() == 0
        assert worm.read("log") == b"1122"
        assert worm.size("log") == 4

    def test_plain_durable_append_unchanged(self, worm):
        worm.create_append_file("log")
        flushes = counter(worm.obs, "worm_flushes_total")
        offset = worm.append("log", b"solo", durable=True)
        assert offset == 0
        assert counter(worm.obs, "worm_flushes_total") == flushes + 1


def make_manager(tmp_path):
    wal = TransactionLog(tmp_path / "wal.log")
    return TransactionManager(SimulatedClock(), wal)


class TestListenerFailureHalts:
    def test_commit_listener_failure_raises_halt(self, tmp_path):
        mgr = make_manager(tmp_path)
        mgr.on_commit.append(
            lambda txn, ct: (_ for _ in ()).throw(WormError("box down")))
        txn = mgr.begin()
        with pytest.raises(ComplianceHaltError):
            mgr.commit(txn)
        assert mgr.halted
        assert isinstance(mgr.halt_cause, WormError)

    def test_commit_is_still_counted_as_durable(self, tmp_path):
        # WAL ground truth: the COMMIT record flushed before the
        # listener ran, so the counters must record the outcome
        mgr = make_manager(tmp_path)
        mgr.on_commit.append(
            lambda txn, ct: (_ for _ in ()).throw(WormError("box down")))
        txn = mgr.begin()
        with pytest.raises(ComplianceHaltError):
            mgr.commit(txn)
        assert counter(mgr.obs, "txn_commit_total") == 1
        assert mgr.obs.registry.gauge("txn_active").value == 0
        assert txn.state is TxnState.COMMITTED
        assert txn.txn_id in mgr.commit_times

    def test_halted_manager_rejects_everything(self, tmp_path):
        mgr = make_manager(tmp_path)
        mgr.on_commit.append(
            lambda txn, ct: (_ for _ in ()).throw(WormError("box down")))
        survivor = mgr.begin()
        with pytest.raises(ComplianceHaltError):
            mgr.commit(mgr.begin())
        with pytest.raises(ComplianceHaltError):
            mgr.begin()
        with pytest.raises(ComplianceHaltError):
            mgr.commit(survivor)
        with pytest.raises(ComplianceHaltError):
            mgr.abort(survivor)

    def test_abort_listener_failure_also_halts(self, tmp_path):
        mgr = make_manager(tmp_path)
        mgr.on_abort.append(
            lambda txn: (_ for _ in ()).throw(WormError("box down")))
        txn = mgr.begin()
        with pytest.raises(ComplianceHaltError):
            mgr.abort(txn)
        assert mgr.halted
        assert counter(mgr.obs, "txn_abort_total") == 1

    def test_halt_gauge_tracks_poison(self, tmp_path):
        mgr = make_manager(tmp_path)
        gauge = mgr.obs.registry.gauge("txn_halted")
        assert gauge.value == 0
        mgr.on_commit.append(
            lambda txn, ct: (_ for _ in ()).throw(WormError("box down")))
        with pytest.raises(ComplianceHaltError):
            mgr.commit(mgr.begin())
        assert gauge.value == 1
        mgr.crash_reset()
        assert gauge.value == 0

    def test_crash_reset_lifts_the_poison(self, tmp_path):
        mgr = make_manager(tmp_path)
        failing = \
            lambda txn, ct: (_ for _ in ()).throw(WormError("box down"))
        mgr.on_commit.append(failing)
        with pytest.raises(ComplianceHaltError):
            mgr.commit(mgr.begin())
        mgr.on_commit.remove(failing)
        mgr.crash_reset()
        assert not mgr.halted
        txn = mgr.begin()
        assert mgr.commit(txn) > txn.txn_id


class TestCrashResetLockTable:
    def test_lock_table_identity_survives_crash_reset(self, tmp_path):
        mgr = make_manager(tmp_path)
        table_ref = mgr.locks  # e.g. the engine's reference
        txn = mgr.begin()
        mgr.locks.acquire(txn.txn_id, "r", LockMode.EXCLUSIVE)  # repro-lint: disable=lock-discipline -- unit test drives the LockTable directly; crash_reset is the release under test
        mgr.crash_reset()
        assert mgr.locks is table_ref
        assert table_ref.holders("r") == set()
        # the shared reference observes post-crash grants
        fresh = mgr.begin()
        table_ref.acquire(fresh.txn_id, "r", LockMode.EXCLUSIVE)
        assert mgr.locks.holders("r") == {fresh.txn_id}

    def test_clear_drops_every_holder(self):
        table = LockTable()
        table.acquire(1, "a", LockMode.EXCLUSIVE)
        table.acquire(2, "b", LockMode.SHARED)
        table.acquire(3, "b", LockMode.SHARED)
        table.clear()
        assert table.holders("a") == set()
        assert table.holders("b") == set()
        assert table.held_by(2) == set()
        table.acquire(9, "a", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            table.acquire(10, "a", LockMode.SHARED)


class TestFreshClockReopen:
    """Reopening with a brand-new SimulatedClock (what repro-admin and
    the server do) must fast-forward past persisted state — otherwise
    new commits stamp *earlier* than records already in L and the audit
    fails its stamp-order check."""

    @staticmethod
    def _schema():
        from repro.common.codec import Field, FieldType, Schema
        return Schema(
            "t", [Field("k", FieldType.INT), Field("v", FieldType.STR)],
            key_fields=["k"])

    def test_reopen_advances_clock_past_persisted_state(self, tmp_path):
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT))
        db.create_relation(self._schema())
        txn = db.begin()
        db.insert(txn, "t", {"k": 1, "v": "first"})
        db.commit(txn)
        high = db.clock.now()
        db.close()

        fresh = SimulatedClock()
        db = CompliantDB.open(tmp_path / "db", fresh)
        db.recover()
        assert fresh.now() >= high
        txn = db.begin()
        db.insert(txn, "t", {"k": 2, "v": "second"})
        db.commit(txn)
        report = Auditor(db).audit(rotate=False)
        assert report.ok, [f.detail for f in report.findings]
        db.close()

    def test_shared_clock_reopen_is_unaffected(self, tmp_path):
        clock = SimulatedClock()
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
            clock=clock)
        db.create_relation(self._schema())
        txn = db.begin()
        db.insert(txn, "t", {"k": 1, "v": "row"})
        db.commit(txn)
        db.close()
        before = clock.now()
        db = CompliantDB.open(tmp_path / "db", clock)
        db.recover()
        assert clock.now() == before
        db.close()


class TestHaltEndToEnd:
    """The paper's Section IV failure path, end to end: the WORM box
    rejects a STAMP_TRANS append mid-commit, the database halts, and a
    crash + recovery repairs the compliance log from the WAL with a
    clean audit."""

    def test_halt_then_crash_recover_then_clean_audit(self, tmp_path):
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT))
        from repro.common.codec import Field, FieldType, Schema
        db.create_relation(Schema(
            "t", [Field("k", FieldType.INT), Field("v", FieldType.STR)],
            key_fields=["k"]))

        real_append = db.worm.append
        clog_name = db.clog.name

        def failing_append(name, data, durable=True):
            # only the compliance log's STAMP_TRANS append fails — the
            # WAL mirror keeps working, as for a partial WORM outage
            if name == clog_name:
                raise WormError("simulated WORM outage")
            return real_append(name, data, durable=durable)

        txn = db.begin()
        db.insert(txn, "t", {"k": 1, "v": "one"})
        db.worm.append = failing_append
        try:
            with pytest.raises(ComplianceHaltError):
                db.commit(txn)
        finally:
            db.worm.append = real_append

        assert db.halted
        with pytest.raises(ComplianceHaltError):
            db.begin()

        db.crash()
        db.recover()
        assert not db.halted

        # the commit was durable: recovery kept the row and re-derived
        # the missing STAMP_TRANS record from the WAL
        assert db.get("t", (1,)) == {"k": 1, "v": "one"}
        report = Auditor(db).audit(rotate=False)
        assert report.ok, [f.detail for f in report.findings]
        db.close()
