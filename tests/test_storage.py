"""Tests for tuple records, slotted pages, the pager, and the buffer cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.codec import encode_key
from repro.common.errors import (PageFormatError, PageNotFoundError,
                                 StorageError)
from repro.storage import (FREE, INTERNAL, LEAF, META, BufferCache, Page,
                           Pager, TupleVersion, parse_page_tuples)


def make_tuple(key=1, start=100, stamped=True, eol=False, seq=0,
               payload=b"payload", relation_id=7):
    return TupleVersion(relation_id=relation_id, key=encode_key((key,)),
                        start=start, stamped=stamped, eol=eol, seq=seq,
                        payload=payload)


class TestTupleVersion:
    def test_round_trip(self):
        t = make_tuple(key=42, start=12345, seq=3, payload=b"\x00\xffdata")
        decoded, offset = TupleVersion.from_bytes(t.to_bytes())
        assert decoded == t
        assert offset == t.encoded_size()

    def test_round_trip_flags(self):
        for stamped in (False, True):
            for eol in (False, True):
                t = make_tuple(stamped=stamped, eol=eol)
                decoded, _ = TupleVersion.from_bytes(t.to_bytes())
                assert decoded.stamped == stamped
                assert decoded.eol == eol

    def test_truncated_rejected(self):
        raw = make_tuple().to_bytes()
        with pytest.raises(PageFormatError):
            TupleVersion.from_bytes(raw[:-1])

    def test_stamp_replaces_txn_id(self):
        unstamped = make_tuple(start=999, stamped=False)
        stamped = unstamped.stamp(commit_time=5000)
        assert stamped.start == 5000 and stamped.stamped
        with pytest.raises(PageFormatError):
            stamped.stamp(6000)

    def test_identity_bytes_requires_stamped(self):
        with pytest.raises(PageFormatError):
            make_tuple(stamped=False).identity_bytes()
        assert make_tuple().identity_bytes() == make_tuple().to_bytes()

    def test_sort_key_orders_versions(self):
        versions = [make_tuple(key=1, start=s) for s in (300, 100, 200)]
        ordered = sorted(versions, key=TupleVersion.sort_key)
        assert [v.start for v in ordered] == [100, 200, 300]

    def test_sequence_of_records_parses(self):
        records = [make_tuple(key=i, start=i * 10) for i in range(5)]
        blob = b"".join(r.to_bytes() for r in records)
        offset, out = 0, []
        while offset < len(blob):
            record, offset = TupleVersion.from_bytes(blob, offset)
            out.append(record)
        assert out == records

    @given(st.integers(min_value=-2**62, max_value=2**62),
           st.binary(max_size=64), st.integers(min_value=0, max_value=2**31))
    def test_round_trip_property(self, start, payload, seq):
        t = make_tuple(start=start, payload=payload, seq=seq)
        decoded, _ = TupleVersion.from_bytes(t.to_bytes())
        assert decoded == t


class TestPage:
    def test_leaf_round_trip(self):
        page = Page(5, LEAF)
        page.entries = [make_tuple(key=i, start=i) for i in range(10)]
        page.next_leaf, page.prev_leaf = 6, 4
        page.lsn = 999
        page.hist_refs = ["migrated/p5-0", "migrated/p5-1"]
        parsed = Page.from_bytes(page.to_bytes(4096))
        assert parsed.entries == page.entries
        assert parsed.next_leaf == 6 and parsed.prev_leaf == 4
        assert parsed.lsn == 999
        assert parsed.hist_refs == page.hist_refs

    def test_internal_round_trip(self):
        page = Page(3, INTERNAL, level=1)
        page.children = [10, 11, 12]
        page.seps = [(encode_key((5,)), 100), (encode_key((9,)), 200)]
        parsed = Page.from_bytes(page.to_bytes(4096))
        assert parsed.children == page.children
        assert parsed.seps == page.seps
        assert parsed.level == 1

    def test_meta_round_trip(self):
        page = Page(0, META)
        page.meta = {"catalog_root": 1, "freelist": [4, 7]}
        parsed = Page.from_bytes(page.to_bytes(4096))
        assert parsed.meta == page.meta

    def test_historical_flag_round_trip(self):
        page = Page(2, LEAF)
        page.historical = True
        assert Page.from_bytes(page.to_bytes(4096)).historical

    def test_free_page_round_trip(self):
        parsed = Page.from_bytes(Page(9, FREE).to_bytes(512))
        assert parsed.ptype == FREE and parsed.pgno == 9

    def test_bad_magic_rejected(self):
        raw = bytearray(Page(1, LEAF).to_bytes(4096))
        raw[0] ^= 0xFF
        with pytest.raises(PageFormatError):
            Page.from_bytes(bytes(raw))

    def test_overfull_page_rejected(self):
        page = Page(1, LEAF)
        page.entries = [make_tuple(key=i, payload=b"x" * 100)
                        for i in range(10)]
        with pytest.raises(PageFormatError):
            page.to_bytes(512)

    def test_fits_accounting(self):
        page = Page(1, LEAF)
        entry = make_tuple()
        while page.fits(512, extra=entry.encoded_size()):
            page.entries.append(entry)
        assert len(page.to_bytes(512)) == 512  # exactly serialisable
        page.entries.append(entry)
        with pytest.raises(PageFormatError):
            page.to_bytes(512)

    def test_internal_child_count_validated(self):
        page = Page(1, INTERNAL)
        page.children = [2]
        page.seps = [(b"k", 0)]
        with pytest.raises(PageFormatError):
            page.to_bytes(4096)

    def test_max_seq(self):
        page = Page(1, LEAF)
        assert page.max_seq() == 0
        page.entries = [make_tuple(seq=3), make_tuple(key=2, seq=9)]
        assert page.max_seq() == 9

    def test_find_slot_binary_search(self):
        page = Page(1, LEAF)
        page.entries = [make_tuple(key=k, start=s)
                        for k, s in [(1, 10), (1, 20), (3, 5)]]
        assert page.find_slot(encode_key((1,)), 15) == 1
        assert page.find_slot(encode_key((0,)), 0) == 0
        assert page.find_slot(encode_key((9,)), 0) == 3

    def test_parse_page_tuples_helper(self):
        page = Page(1, LEAF)
        page.entries = [make_tuple(key=1)]
        assert parse_page_tuples(page.to_bytes(4096)) == page.entries
        internal = Page(2, INTERNAL)
        internal.children = [1]
        assert parse_page_tuples(internal.to_bytes(4096)) == []


class TestPager:
    def test_create_writes_meta_page(self, tmp_path):
        pager = Pager(tmp_path / "db", 4096)
        assert pager.page_count == 1
        meta = Page.from_bytes(pager.read_raw(0))
        assert meta.ptype == META
        pager.close()

    def test_allocate_and_round_trip(self, tmp_path):
        pager = Pager(tmp_path / "db", 1024)
        pgno = pager.allocate()
        page = Page(pgno, LEAF)
        page.entries = [make_tuple()]
        pager.write_page(pgno, page.to_bytes(1024))
        assert Page.from_bytes(pager.read_page(pgno)).entries == page.entries
        pager.close()

    def test_hooks_fire_in_order(self, tmp_path):
        pager = Pager(tmp_path / "db", 1024)
        events = []
        pager.pread_hooks.append(lambda pgno, raw: events.append(("r", pgno)))
        pager.pwrite_hooks.append(
            lambda pgno, raw: events.append(("w", pgno)))
        pgno = pager.allocate()
        pager.write_page(pgno, Page(pgno, LEAF).to_bytes(1024))
        pager.read_page(pgno)
        assert events == [("w", pgno), ("r", pgno)]
        pager.close()

    def test_write_hook_fires_before_disk_write(self, tmp_path):
        # The compliance protocol requires records on WORM *before* the data
        # page hits disk; the hook must therefore observe the OLD disk state.
        pager = Pager(tmp_path / "db", 1024)
        pgno = pager.allocate()
        old_on_disk = []
        pager.pwrite_hooks.append(
            lambda p, raw: old_on_disk.append(pager.read_raw(p)))
        new = Page(pgno, LEAF)
        new.entries = [make_tuple()]
        pager.write_page(pgno, new.to_bytes(1024))
        assert Page.from_bytes(old_on_disk[0]).ptype == FREE

    def test_raw_io_bypasses_hooks(self, tmp_path):
        pager = Pager(tmp_path / "db", 1024)
        events = []
        pager.pread_hooks.append(lambda *a: events.append("r"))
        pager.pwrite_hooks.append(lambda *a: events.append("w"))
        pgno = pager.allocate()
        pager.write_raw(pgno, Page(pgno, LEAF).to_bytes(1024))  # repro-lint: disable=barrier-dominance -- deliberately exercising the raw seam to prove hooks do NOT fire
        pager.read_raw(pgno)
        assert events == []

    def test_out_of_range_page(self, tmp_path):
        pager = Pager(tmp_path / "db", 1024)
        with pytest.raises(PageNotFoundError):
            pager.read_page(5)
        with pytest.raises(PageNotFoundError):
            pager.read_page(-1)

    def test_wrong_size_write_rejected(self, tmp_path):
        pager = Pager(tmp_path / "db", 1024)
        with pytest.raises(StorageError):
            pager.write_page(0, b"short")

    def test_reopen_existing_file(self, tmp_path):
        pager = Pager(tmp_path / "db", 1024)
        pgno = pager.allocate()
        page = Page(pgno, LEAF)
        page.entries = [make_tuple(key=77)]
        pager.write_page(pgno, page.to_bytes(1024))
        pager.close()
        reopened = Pager(tmp_path / "db", 1024)
        assert reopened.page_count == 2
        assert Page.from_bytes(
            reopened.read_raw(pgno)).entries == page.entries
        reopened.close()


class TestBufferCache:
    def make(self, tmp_path, capacity=4, page_size=1024):
        pager = Pager(tmp_path / "db", page_size)
        return pager, BufferCache(pager, capacity)

    def test_hit_and_miss_counting(self, tmp_path):
        pager, cache = self.make(tmp_path)
        page = cache.new_page(LEAF)
        cache.flush_page(page.pgno)
        cache.drop_all()
        cache.get(page.pgno)
        cache.get(page.pgno)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_new_page_is_dirty_and_cached(self, tmp_path):
        pager, cache = self.make(tmp_path)
        page = cache.new_page(LEAF)
        assert page.dirty
        assert cache.get(page.pgno) is page

    def test_flush_persists_and_cleans(self, tmp_path):
        pager, cache = self.make(tmp_path)
        page = cache.new_page(LEAF)
        page.entries = [make_tuple()]
        cache.flush_page(page.pgno)
        assert not page.dirty
        assert Page.from_bytes(
            pager.read_raw(page.pgno)).entries == page.entries

    def test_flush_all_returns_count(self, tmp_path):
        pager, cache = self.make(tmp_path, capacity=16)
        for _ in range(3):
            cache.new_page(LEAF)
        assert cache.flush_all() == 3
        assert cache.flush_all() == 0

    def test_eviction_prefers_clean_pages(self, tmp_path):
        pager, cache = self.make(tmp_path, capacity=2)
        keep_dirty = cache.new_page(LEAF)
        clean = cache.new_page(LEAF)
        cache.flush_page(clean.pgno)
        cache.new_page(LEAF)
        cache.maybe_evict()  # over capacity: the clean page must go first
        assert keep_dirty.pgno in cache.dirty_pgnos()
        assert cache.stats.evictions >= 1

    def test_steal_flushes_dirty_victim(self, tmp_path):
        pager, cache = self.make(tmp_path, capacity=2)
        first = cache.new_page(LEAF)
        first.entries = [make_tuple(key=1)]
        cache.new_page(LEAF)
        cache.new_page(LEAF)
        cache.maybe_evict()  # all dirty: the LRU dirty page is stolen
        on_disk = Page.from_bytes(pager.read_raw(first.pgno))
        assert on_disk.entries == first.entries

    def test_pinned_pages_survive_eviction(self, tmp_path):
        pager, cache = self.make(tmp_path, capacity=2)
        pinned = cache.new_page(LEAF)
        cache.pin(pinned.pgno)
        for _ in range(4):
            cache.new_page(LEAF)
        assert cache.get(pinned.pgno) is pinned
        cache.unpin(pinned.pgno)

    def test_atomic_group_flushes_together(self, tmp_path):
        pager, cache = self.make(tmp_path, capacity=16)
        a, b, c = (cache.new_page(LEAF) for _ in range(3))
        cache.note_group([a.pgno, b.pgno])
        cache.note_group([b.pgno, c.pgno])  # merges into one group
        cache.flush_page(a.pgno)
        assert not a.dirty and not b.dirty and not c.dirty

    def test_before_flush_hook_sees_page(self, tmp_path):
        pager, cache = self.make(tmp_path)
        seen = []
        cache.before_flush = lambda page: seen.append(page.pgno)
        page = cache.new_page(LEAF)
        cache.flush_page(page.pgno)
        assert seen == [page.pgno]

    def test_drop_all_loses_unflushed_data(self, tmp_path):
        pager, cache = self.make(tmp_path)
        page = cache.new_page(LEAF)
        page.entries = [make_tuple()]
        pgno = page.pgno
        cache.drop_all()
        assert Page.from_bytes(pager.read_raw(pgno)).ptype == FREE

    def test_free_page(self, tmp_path):
        pager, cache = self.make(tmp_path)
        page = cache.new_page(LEAF)
        page.entries = [make_tuple()]
        cache.free_page(page.pgno)
        cache.flush_page(page.pgno)
        assert Page.from_bytes(pager.read_raw(page.pgno)).ptype == FREE
