"""Tests for the auditor's targeted tuple spot check and NaN key guard."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock)
from repro.common.codec import encode_key
from repro.common.errors import CodecError
from repro.core import Adversary

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])


@pytest.fixture
def db(tmp_path):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=32),
                        compliance=ComplianceConfig(
                            mode=ComplianceMode.LOG_CONSISTENT)))
    db.create_relation(LEDGER)
    for i in range(12):  # leaves slack on the rightmost leaf
        with db.transaction() as txn:
            db.insert(txn, "ledger", {"entry_id": i, "amount": i})
    with db.transaction() as txn:
        db.update(txn, "ledger", {"entry_id": 5, "amount": 99})
    return db


class TestSpotCheck:
    def test_clean_tuple_verifies(self, db):
        assert Auditor(db).verify_tuple("ledger", (5,)) == []

    def test_altered_version_flagged(self, db):
        mala = Adversary(db)
        mala.settle()
        mala.alter_tuple("ledger", (5,), {"entry_id": 5, "amount": -1},
                         version_index=0)
        findings = Auditor(db).verify_tuple("ledger", (5,))
        assert any(f.code == "spot-altered" for f in findings)

    def test_backdated_version_flagged(self, db):
        mala = Adversary(db)
        mala.settle()
        mala.backdate_insert("ledger", {"entry_id": 5000, "amount": 1},
                             start=db.clock.now() - 1000)
        findings = Auditor(db).verify_tuple("ledger", (5000,))
        assert any(f.code == "spot-unaccounted" for f in findings)

    def test_unrelated_tampering_invisible(self, db):
        # the spot check is targeted: tampering elsewhere is out of scope
        mala = Adversary(db)
        mala.settle()
        mala.alter_tuple("ledger", (9,), {"entry_id": 9, "amount": -1})
        assert Auditor(db).verify_tuple("ledger", (5,)) == []

    def test_works_across_epochs(self, db):
        assert Auditor(db).audit().ok
        with db.transaction() as txn:
            db.update(txn, "ledger", {"entry_id": 5, "amount": 123})
        assert Auditor(db).verify_tuple("ledger", (5,)) == []


class TestNanKeys:
    def test_nan_key_rejected(self):
        with pytest.raises(CodecError):
            encode_key((float("nan"),))

    def test_infinities_still_ordered(self):
        values = [float("-inf"), -1.0, 0.0, 1.0, float("inf")]
        encoded = [encode_key((v,)) for v in values]
        assert encoded == sorted(encoded)
