"""Additional engine query-surface tests: version views, structure
inspection, composite keys, large payloads."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.codec import Field, FieldType, Schema
from repro.common.config import EngineConfig
from repro.common.errors import PageFullError
from repro.temporal import Engine

EVENTS = Schema("events", [
    Field("region", FieldType.STR),
    Field("seq", FieldType.INT),
    Field("data", FieldType.STR),
], key_fields=["region", "seq"])


@pytest.fixture
def engine(tmp_path):
    eng = Engine.create(tmp_path / "db", SimulatedClock(),
                        config=EngineConfig(page_size=1024,
                                            buffer_pages=32))
    eng.create_relation(EVENTS)
    eng.run_stamper()
    return eng


class TestCompositeKeys:
    def test_round_trip(self, engine):
        with engine.transaction() as txn:
            engine.insert(txn, "events",
                          {"region": "eu", "seq": 1, "data": "a"})
            engine.insert(txn, "events",
                          {"region": "us", "seq": 1, "data": "b"})
        assert engine.get("events", ("eu", 1))["data"] == "a"
        assert engine.get("events", ("us", 1))["data"] == "b"
        assert engine.get("events", ("eu", 2)) is None

    def test_prefix_range_scan(self, engine):
        with engine.transaction() as txn:
            for region in ("eu", "us"):
                for seq in range(5):
                    engine.insert(txn, "events", {"region": region,
                                                  "seq": seq,
                                                  "data": "x"})
        eu_rows = engine.scan("events", lo=("eu",), hi=("eu~",))
        assert len(eu_rows) == 5
        assert all(k[0] == "eu" for k, _ in eu_rows)

    def test_scan_key_tuples_decoded(self, engine):
        with engine.transaction() as txn:
            engine.insert(txn, "events",
                          {"region": "eu", "seq": 7, "data": "x"})
        rows = engine.scan("events")
        assert rows[0][0] == ("eu", 7)


class TestVersionViews:
    def test_views_sorted_and_typed(self, engine):
        with engine.transaction() as txn:
            engine.insert(txn, "events",
                          {"region": "eu", "seq": 1, "data": "v0"})
        for v in range(1, 4):
            with engine.transaction() as txn:
                engine.update(txn, "events",
                              {"region": "eu", "seq": 1,
                               "data": f"v{v}"})
        with engine.transaction() as txn:
            engine.delete(txn, "events", ("eu", 1))
        views = engine.versions("events", ("eu", 1))
        assert [v.row["data"] for v in views[:-1]] == \
            ["v0", "v1", "v2", "v3"]
        assert views[-1].eol and views[-1].row is None
        starts = [v.start for v in views]
        assert starts == sorted(starts)

    def test_uncommitted_version_has_no_start(self, engine):
        txn = engine.begin()
        engine.insert(txn, "events",
                      {"region": "eu", "seq": 9, "data": "pending"})
        views = engine.versions("events", ("eu", 9))
        assert len(views) == 1
        assert views[0].start is None
        engine.abort(txn)


class TestStructureInspection:
    def test_height_and_pgnos_grow(self, engine):
        tree = engine.relation("events").tree
        assert tree.height() == 1
        with engine.transaction() as txn:
            for seq in range(200):
                engine.insert(txn, "events", {"region": "r", "seq": seq,
                                              "data": "pad" * 5})
        assert tree.height() >= 2
        all_pgnos = tree.all_pgnos()
        leaves = tree.leaf_pgnos()
        assert set(leaves) <= set(all_pgnos)
        assert len(all_pgnos) == len(set(all_pgnos))
        assert tree.entry_count() == 200

    def test_oversized_tuple_rejected(self, engine):
        with pytest.raises(PageFullError):
            with engine.transaction() as txn:
                engine.insert(txn, "events",
                              {"region": "eu", "seq": 1,
                               "data": "x" * 2000})
