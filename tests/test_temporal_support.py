"""Unit tests for temporal support modules: historical directory, hist
page codec, catalog serialisation, config validation, bench helpers."""

import pytest

from repro.bench.report import format_table
from repro.common.codec import Field, FieldType, Schema, encode_key
from repro.common.config import (ComplianceConfig, ComplianceMode,
                                 DBConfig, EngineConfig)
from repro.common.errors import ConfigError, StorageError
from repro.storage.record import TupleVersion
from repro.temporal.catalog import (CATALOG_SCHEMA, RelationInfo,
                                    schema_from_json, schema_to_json)
from repro.temporal.history import (HistoricalDirectory, HistPageRef,
                                    decode_hist_page, encode_hist_page)


def tv(key, start):
    return TupleVersion(relation_id=3, key=encode_key((key,)), start=start,
                        stamped=True, eol=False, seq=0, payload=b"p")


class TestHistPageCodec:
    def test_round_trip(self):
        entries = [tv(1, 10), tv(1, 20), tv(2, 5)]
        assert decode_hist_page(encode_hist_page(entries)) == entries

    def test_empty_page(self):
        assert decode_hist_page(encode_hist_page([])) == []

    def test_bad_magic(self):
        with pytest.raises(StorageError):
            decode_hist_page(b"XXXX\x00\x00\x00\x00")

    def test_trailing_garbage(self):
        raw = encode_hist_page([tv(1, 10)])
        with pytest.raises(StorageError):
            decode_hist_page(raw + b"junk")


class TestHistoricalDirectory:
    def make_ref(self, ref="hist/r3-000001", lo=1, hi=9):
        return HistPageRef(ref=ref, relation_id=3, leaf_pgno=4,
                           split_time=100, lo_key=encode_key((lo,)).hex(),
                           hi_key=encode_key((hi,)).hex(), count=5)

    def test_add_and_lookup(self, tmp_path):
        directory = HistoricalDirectory(tmp_path / "hist.json")
        directory.add(self.make_ref())
        assert directory.page_count() == 1
        assert directory.page_count(3) == 1
        assert directory.page_count(4) == 0
        hits = directory.lookup(3, encode_key((5,)))
        assert len(hits) == 1
        assert directory.lookup(3, encode_key((50,))) == []
        assert directory.lookup(9, encode_key((5,))) == []

    def test_key_bounds_inclusive(self, tmp_path):
        directory = HistoricalDirectory(tmp_path / "hist.json")
        directory.add(self.make_ref(lo=2, hi=8))
        assert directory.lookup(3, encode_key((2,)))
        assert directory.lookup(3, encode_key((8,)))
        assert not directory.lookup(3, encode_key((1,)))
        assert not directory.lookup(3, encode_key((9,)))

    def test_next_ref_monotone_and_persistent(self, tmp_path):
        directory = HistoricalDirectory(tmp_path / "hist.json")
        first = directory.next_ref(3)
        directory.add(self.make_ref(ref=first))
        reloaded = HistoricalDirectory(tmp_path / "hist.json")
        second = reloaded.next_ref(3)
        assert second != first

    def test_replace_and_remove(self, tmp_path):
        directory = HistoricalDirectory(tmp_path / "hist.json")
        directory.add(self.make_ref(ref="hist/r3-000001"))
        directory.replace("hist/r3-000001",
                          self.make_ref(ref="hist/r3-000002"))
        assert not directory.has_ref("hist/r3-000001")
        assert directory.has_ref("hist/r3-000002")
        directory.replace("hist/r3-000002", None)
        assert directory.page_count() == 0

    def test_persistence_round_trip(self, tmp_path):
        directory = HistoricalDirectory(tmp_path / "hist.json")
        directory.add(self.make_ref())
        reloaded = HistoricalDirectory(tmp_path / "hist.json")
        assert reloaded.all_entries() == directory.all_entries()


class TestCatalogSerialisation:
    def test_schema_json_round_trip(self):
        schema = Schema("t", [Field("a", FieldType.INT),
                              Field("b", FieldType.STR),
                              Field("c", FieldType.FLOAT),
                              Field("d", FieldType.BYTES)], ["a", "b"])
        restored = schema_from_json(schema_to_json(schema))
        assert restored.name == schema.name
        assert restored.key_fields == schema.key_fields
        assert [(f.name, f.ftype) for f in restored.fields] == \
            [(f.name, f.ftype) for f in schema.fields]

    def test_relation_info_round_trip(self):
        schema = Schema("t", [Field("a", FieldType.INT)], ["a"])
        info = RelationInfo("t", 5, 17, True, schema)
        row = info.catalog_row()
        CATALOG_SCHEMA.encode_payload(row)  # must be encodable
        restored = RelationInfo.from_catalog_row(row)
        assert restored.name == "t"
        assert restored.relation_id == 5
        assert restored.root_pgno == 17
        assert restored.use_tsb is True


class TestConfigValidation:
    def test_defaults_valid(self):
        DBConfig().validate()

    def test_bad_page_size(self):
        with pytest.raises(ConfigError):
            DBConfig(engine=EngineConfig(page_size=64)).validate()

    def test_bad_buffer(self):
        with pytest.raises(ConfigError):
            DBConfig(engine=EngineConfig(buffer_pages=2)).validate()

    def test_bad_regret(self):
        with pytest.raises(ConfigError):
            DBConfig(compliance=ComplianceConfig(
                regret_interval=0)).validate()

    def test_bad_threshold(self):
        with pytest.raises(ConfigError):
            DBConfig(compliance=ComplianceConfig(
                split_threshold=2.0)).validate()

    def test_modes_enumerated(self):
        assert {m.value for m in ComplianceMode} == \
            {"regular", "log-consistent", "hash-on-read"}


class TestBenchReport:
    def test_format_table_alignment(self):
        text = format_table("T", ["col", "x"],
                            [["a", 1], ["long-cell", 2.5]], note="n")
        lines = text.splitlines()
        assert lines[2].startswith("col")  # [0] blank, [1] title
        assert "long-cell" in text
        assert "2.500" in text
        assert "note: n" in text

    def test_format_table_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "== T ==" in text
