"""Known-good fixture: barriers satisfied through helper wrappers.

Both dominators live one call away — the rule must follow the call
graph to see them instead of flagging the call sites.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


class WrappedPager:
    def write_page(self, pgno, data):
        self._drain_barriers(pgno)  # wrapper runs the barrier chain
        self._file.seek(pgno * 4096)
        self._file.write(data)

    def _drain_barriers(self, pgno):
        for barrier in self.pwrite_barriers:
            barrier(pgno)


def flush_batch(pager, pgno, raw):
    _phase_one(pager, pgno, raw)  # wrapper emits the write hooks
    pager.write_page(pgno, raw, hooks_done=True)


def _phase_one(pager, pgno, raw):
    pager.emit_write_hooks(pgno, raw)
