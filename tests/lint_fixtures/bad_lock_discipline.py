"""Known-bad fixture: acquired locks that can escape their release.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def leak_forever(locks, resource):
    locks.acquire(resource, "S")
    return resource  # no release_all anywhere, no owning transaction


def escape_between(locks, resource):
    locks.acquire(resource, "S")
    if resource is None:
        return None  # exits with the lock still held
    locks.release_all(resource)
    return resource
