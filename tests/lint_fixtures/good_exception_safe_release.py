"""Known-good fixture: every acquisition is exception-safe (or escapes).

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""
# repro-lint: strict-release


def commit_or_abort(db, relation, row):
    txn = db.begin()
    try:
        db.insert(txn, relation, row)
        db.commit(txn)
    except Exception:
        db.abort(txn)
        raise


def copy_bytes(src, dst):
    with open(src, "rb") as inp, open(dst, "wb") as out:
        out.write(inp.read())


def open_owned(path):
    handle = open(path, "rb")
    return handle  # ownership escapes to the caller


def helper_cleanup(db, relation, row):
    txn = db.begin()
    try:
        db.insert(txn, relation, row)
    finally:
        _finish(db, txn)  # wrapper release, resolved via the call graph


def _finish(db, txn):
    db.abort(txn)
