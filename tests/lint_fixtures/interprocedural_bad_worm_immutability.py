"""Known-bad fixture: mutation after a helper-wrapped WORM append.

The append happens inside ``_journal``; the caller's later mutation of
the forwarded record must still be flagged.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def journal_then_mutate(clog, record):
    _journal(clog, record)
    record["tampered"] = True  # aliases bytes the WORM store now holds


def _journal(clog, record):
    clog.append(record)
