"""Known-bad fixture: three barrier-dominance violations.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


class BadPager:
    def write_page(self, pgno, data):
        # physical write with no pwrite_barriers run first
        self._file.seek(pgno * 4096)
        self._file.write(data)


def flush_batch(pager, pgno, raw):
    # phase 2 with no phase-1 emit_write_hooks before it
    pager.write_page(pgno, raw, hooks_done=True)


def tamper(pager, pgno, raw):
    # bypasses the hook/barrier seam entirely
    pager.write_raw(pgno, raw)
