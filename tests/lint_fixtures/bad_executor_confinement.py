"""Known-bad fixture: four executor-confinement violations.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

from repro.server.service import SingleWriterExecutor


class BadService:
    def __init__(self, db):
        self.db = db
        self.executor = SingleWriterExecutor(8)

    def status(self):
        # session thread reading engine state while the writer runs
        return self.db.metrics()

    def rollback_all(self, session):
        # session thread mutating txn state the writer owns
        for txn_id in list(session.txns):
            self.db.abort(session.txns.pop(txn_id))
