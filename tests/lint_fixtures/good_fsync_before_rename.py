"""Known-good fixture: renames preceded by a durable fsync.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

import os


def publish_checkpoint(path, tmp, blob):
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def publish_via_helper(path, tmp, blob):
    handle = open(tmp, "wb")
    try:
        handle.write(blob)
        _sync(handle)  # wrapper fsync, resolved via the call graph
    finally:
        handle.close()
    os.replace(tmp, path)


def _sync(handle):
    handle.flush()
    os.fsync(handle.fileno())
