"""Known-good fixture: helper calls that do NOT freeze the argument.

A helper that merely measures the record, or a caller that appends a
copy, leaves the original mutable — the forwarding analysis must not
over-freeze.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def stage_then_mutate(clog, record):
    _measure(clog, record)
    record["size"] = 3  # helper never handed it to the WORM store


def _measure(clog, record):
    return len(record)


def journal_copy(clog, record):
    _journal(clog, dict(record))
    record["free"] = True  # a copy was appended, not this object


def _journal(clog, record):
    clog.append(record)
