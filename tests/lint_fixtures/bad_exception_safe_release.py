"""Known-bad fixture: two exception-safe-release violations.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""
# repro-lint: strict-release


def leak_txn(db, relation, row):
    txn = db.begin()
    db.insert(txn, relation, row)  # a raise here leaks txn's locks
    db.commit(txn)


def leak_handle(path, blob):
    handle = open(path, "wb")
    handle.write(blob)
    handle.close()  # never reached if write() raises
