"""Known-good fixture: logged bytes are never touched after handoff.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def append_and_leave_alone(worm, record):
    blob = bytes(record)
    worm.append("log", blob, durable=False)
    return len(blob)


def mutate_before_append(worm, record):
    buf = bytearray(record)
    buf.extend(b"header")  # mutation strictly before the handoff
    worm.append("log", buf, durable=False)


def rebind_is_fine(clog, frame):
    clog.append(frame)
    frame = b"new object"  # rebinding the name aliases nothing
    return frame
