"""Known-bad fixture: buffers mutated after a WORM append.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def mutate_after_append(worm, record):
    buf = bytearray(record)
    worm.append("log", buf, durable=False)
    buf.extend(b"tampered")  # the group-commit buffer sees this
    return buf


def store_after_append(clog, frame):
    clog.append(frame)
    frame[0] = 0  # subscript store through the logged object


def mutate_through_alias(worm, record):
    buf = bytearray(record)
    alias = buf
    worm.append("log", buf, durable=False)
    alias.append(0)  # same object, different name
