"""Known-good fixture: the replay surface reaches only determinism.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""
# repro-lint: replay-root


def replay_epoch(clock, entries):
    stamp = _stamp_from(clock)  # simulated clock, not the wall clock
    return [(stamp, entry) for entry in sorted(entries)]


def _stamp_from(clock):
    return clock.now()
