"""Known-bad fixture: two fsync-before-rename violations.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

import os


def publish_checkpoint(path, tmp, blob):
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)  # rename can hit disk before the data does


def publish_marker(tmp_path, final_path):
    tmp_path.rename(final_path)  # pathlib spelling, same torn publish
