"""Known-bad fixture: two replay-reachability violations.

The nondeterminism hides one call away from the replay surface — the
per-module replay-determinism bans flag the helpers' bodies, while this
rule flags where the replay roots *reach* them.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""
# repro-lint: replay-root

import time
import uuid


def replay_epoch(entries):
    stamp = _now_stamp()  # wall clock enters the replay surface here
    return [(stamp, entry) for entry in entries]


def replay_report(entries):
    tag = _fresh_tag()  # entropy enters the replay surface here
    return {tag: list(entries)}


def _now_stamp():
    return time.time()  # repro-lint: disable=replay-determinism -- the direct ban is the other rule's fixture; this one tests reachability


def _fresh_tag():
    return uuid.uuid4()  # repro-lint: disable=replay-determinism -- the direct ban is the other rule's fixture; this one tests reachability
