"""Known-bad fixture: helper wrappers that fail barrier dominance.

The pre-call-graph rule only looked for a literal ``barrier`` /
``emit_write_hooks`` attribute at the call site; these wrappers hide
the *absence* of one behind a helper.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


class WrappedPager:
    def write_page(self, pgno, data):
        self._prepare(pgno)  # helper never reaches a barrier
        self._file.seek(pgno * 4096)
        self._file.write(data)

    def _prepare(self, pgno):
        self.stats["writes"] += 1


def flush_batch(pager, pgno, raw):
    _phase_one(pager, pgno, raw)  # forgot emit_write_hooks down there
    pager.write_page(pgno, raw, hooks_done=True)


def _phase_one(pager, pgno, raw):
    pager.log.debug("about to write %d", pgno)
