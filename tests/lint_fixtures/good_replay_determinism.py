"""Known-good fixture: deterministic replay inputs only.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

import random
import time


def stamp_now(clock):
    return clock.now()  # the simulated/compliance clock


def phase_timer():
    return time.perf_counter()  # metrics only, never hashed


def seeded_rng(seed):
    return random.Random(seed)


def page_digest(h, entries):
    return h(sorted(entries.values()))  # order fixed before hashing
