# repro-lint: exhaustive=RecType
"""Known-good fixture: every RecType member has a dispatch arm.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

import enum


class RecType(enum.IntEnum):
    PUT = 1
    DELETE = 2
    CLOSE = 3


def dispatch(record):
    if record.rtype == RecType.PUT:
        return "put"
    if record.rtype == RecType.DELETE:
        return "delete"
    if record.rtype == RecType.CLOSE:
        return "close"
    return None
