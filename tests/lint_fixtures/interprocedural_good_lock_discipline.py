"""Known-good fixture: release_all satisfied through a helper wrapper.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def safe_wrapper(locks, txn_id, resource):
    locks.acquire(txn_id, resource, "X")
    try:
        return resource
    finally:
        _cleanup(locks, txn_id)  # wrapper release via the call graph


def _cleanup(locks, txn_id):
    locks.release_all(txn_id)
