"""Known-good fixture: all database touches confined to the writer.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

from repro.server.service import SingleWriterExecutor


class GoodService:
    def __init__(self, db):
        self.db = db
        self.executor = SingleWriterExecutor(8)

    def execute(self, session, args):
        # marshalled onto the writer thread: the touch is inside the
        # submitted closure, not on this session thread
        future = self.executor.submit(
            lambda: self._op_apply(session, args))
        return future.result()

    def close_session(self, session):
        future = self.executor.submit(
            lambda: self._abort_all(session), force=True)
        return future.result()

    def _op_apply(self, session, args):
        txn = self._fetch(session, args)
        self.db.insert(txn, args["relation"], args["row"])
        return {}

    def _fetch(self, session, args):
        # reachable from _op_apply via the call graph: writer context
        return session.txns[args["txn"]]

    def _abort_all(self, session):
        # reachable from a submit(...) closure: writer context
        for txn_id in sorted(session.txns):
            self.db.abort(session.txns.pop(txn_id))
