"""Known-bad fixture: nondeterminism feeding the audit replay.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

import random
import time


def stamp_now():
    return int(time.time() * 1_000_000)  # wall clock, not the sim clock


def jitter():
    return random.random()  # shared unseeded generator


def fresh_rng():
    return random.Random()  # Random() without a seed


def page_digest(h, entries):
    return h(entries.values())  # dict-order feed into a hash
