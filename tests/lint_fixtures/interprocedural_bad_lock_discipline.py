"""Known-bad fixture: a finally block whose helper never releases.

The cleanup call *looks* like a release wrapper but only logs — the
rule must resolve it through the call graph to notice nothing in its
transitive closure reaches ``release_all``.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def broken_wrapper(locks, txn_id, resource):
    locks.acquire(txn_id, resource, "X")
    try:
        return resource
    finally:
        _log_release(locks, txn_id)  # logs, never releases


def _log_release(locks, txn_id):
    print("released", txn_id)
