"""Known-good fixture: every acquire has an owned or guaranteed release.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


def txn_scoped(locks, txn, resource):
    # strict 2PL: the transaction owns the lock; the manager's
    # commit/abort releases it
    locks.acquire(txn, resource, "X")


def finally_guarded(locks, resource):
    locks.acquire(resource, "S")
    try:
        return resource
    finally:
        locks.release_all(resource)


def straight_line(locks, resource):
    locks.acquire(resource, "S")
    value = resource
    locks.release_all(resource)
    return value
