# repro-lint: exhaustive=RecType
"""Known-bad fixture: a dispatcher with no arm for RecType.CLOSE.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""

import enum


class RecType(enum.IntEnum):
    PUT = 1
    DELETE = 2
    CLOSE = 3


def dispatch(record):
    if record.rtype == RecType.PUT:
        return "put"
    if record.rtype == RecType.DELETE:
        return "delete"
    return None  # CLOSE silently falls through
