"""Known-good fixture: write-backs dominated by barriers/hook emission.

Never imported — parsed by repro-lint in tests/test_repro_lint.py.
"""


class GoodPager:
    def write_page(self, pgno, data, hooks_done=False):
        if not hooks_done:
            self.emit_write_hooks(pgno, data)
        for barrier in self.pwrite_barriers:
            barrier(pgno)
        self._file.seek(pgno * 4096)
        self._file.write(data)


def flush_batch(pager, pgno, raw):
    pager.emit_write_hooks(pgno, raw)
    pager.write_page(pgno, raw, hooks_done=True)
