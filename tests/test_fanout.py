"""Concurrent shard fan-out + pipelined server connections (PR 10).

Four layers under test:

* :class:`~repro.server.client.ServerClient` — the new per-request
  receive timeout (a hung server no longer blocks the caller forever);
* :class:`~repro.server.pipeline.PipelinedClient` — id-correlated
  multiplexing over one socket: out-of-order completion, timeouts that
  keep the connection usable, clean failure of all in-flight requests
  on connection death;
* :class:`~repro.shard.fanout.FanoutExecutor` — submission-order
  outcomes, collected (never raced) errors, the serial inline path, the
  same-shard confinement guard, and the clock-hazard worker resolution;
* the coordinator + auditor on top — concurrent 2PC interleavings
  (mid-prepare failure aborts everything, phase-two partial failure
  raises ``ShardCommitError`` with the full failures map) and the crash
  matrix re-run concurrently, gated on byte-identical merged audit
  attestations vs the serial path.
"""

import socket
import threading
import time

import pytest

from repro.common.clock import SimulatedClock
from repro.common.codec import Field, FieldType, Schema
from repro.common.errors import (ConfigError, ServerProtocolError,
                                 ServerTimeoutError, ShardCommitError,
                                 ShardError)
from repro.core import Adversary, CompliantDB
from repro.crypto import AuditorKey
from repro.server import (ComplianceServer, PipelinedClient, ServerClient,
                          ServerConfig)
from repro.server.protocol import recv_frame, send_frame
from repro.shard import (DistributedAuditor, FanoutExecutor, HashRouter,
                         ShardedDB, resolve_workers)

T = Schema("t", [Field("a", FieldType.INT), Field("b", FieldType.INT)],
           key_fields=["a"])


# --------------------------------------------------------------------------
# scripted wire peers
# --------------------------------------------------------------------------


class ScriptedServer:
    """One-connection fake server; ``script(conn)`` runs on its thread."""

    def __init__(self, script):
        self._script = script
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self.error = None
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        try:
            self._script(conn)
        except Exception as exc:  # surfaced by close()
            self.error = exc
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._thread.join(timeout=5)
        self._listener.close()
        if self.error is not None:
            raise self.error


def ok_response(frame, **result):
    return {"ok": True, "id": frame["id"], "result": result}


# --------------------------------------------------------------------------
# ServerClient per-request timeout (satellite regression)
# --------------------------------------------------------------------------


class TestServerClientTimeout:
    def test_hung_server_raises_timeout_instead_of_blocking(self):
        hold = threading.Event()

        def script(conn):
            recv_frame(conn)   # swallow the request, never answer
            hold.wait(5)

        server = ScriptedServer(script)
        client = ServerClient(*server.address)
        started = time.monotonic()
        with pytest.raises(ServerTimeoutError) as exc:
            client.request("ping", _timeout=0.2)
        assert time.monotonic() - started < 2
        assert exc.value.op == "ping"
        assert exc.value.timeout == pytest.approx(0.2)
        # the byte stream is desynchronised: the connection is closed
        # and unusable, by design (contrast PipelinedClient below)
        with pytest.raises((OSError, ServerProtocolError)):
            client.request("ping")
        hold.set()
        server.close()

    def test_default_request_timeout_is_a_constructor_knob(self):
        hold = threading.Event()

        def script(conn):
            recv_frame(conn)
            hold.wait(5)

        server = ScriptedServer(script)
        client = ServerClient(*server.address, request_timeout=0.2)
        with pytest.raises(ServerTimeoutError):
            client.ping()
        hold.set()
        server.close()


# --------------------------------------------------------------------------
# PipelinedClient
# --------------------------------------------------------------------------


class TestPipelinedClient:
    def test_multiplexes_and_resolves_out_of_order(self):
        def script(conn):
            first = recv_frame(conn)
            second = recv_frame(conn)
            # answer in reverse arrival order: correlation is by id,
            # not by position in the stream
            send_frame(conn, ok_response(second, tag=second["args"]["n"]))
            send_frame(conn, ok_response(first, tag=first["args"]["n"]))

        server = ScriptedServer(script)
        client = PipelinedClient(*server.address)
        results = {}
        barrier = threading.Barrier(2)

        def issue(n):
            barrier.wait()
            results[n] = client.request("echo", n=n)["tag"]

        threads = [threading.Thread(target=issue, args=(n,))
                   for n in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert results == {1: 1, 2: 2}
        client.close()
        server.close()

    def test_timeout_keeps_connection_usable(self):
        release = threading.Event()

        def script(conn):
            starved = recv_frame(conn)     # never answered in time
            follow_up = recv_frame(conn)
            send_frame(conn, ok_response(follow_up, tag="fresh"))
            release.wait(5)
            # the late answer to the starved request must be dropped
            send_frame(conn, ok_response(starved, tag="stale"))
            final = recv_frame(conn)
            send_frame(conn, ok_response(final, tag="after-late"))

        server = ScriptedServer(script)
        client = PipelinedClient(*server.address)
        with pytest.raises(ServerTimeoutError):
            client.request("slow", _timeout=0.2)
        # unlike ServerClient, the connection survives the timeout
        assert client.request("next")["tag"] == "fresh"
        release.set()
        assert client.request("again")["tag"] == "after-late"
        assert client.inflight == 0
        client.close()
        server.close()

    def test_connection_death_fails_all_inflight(self):
        def script(conn):
            recv_frame(conn)
            recv_frame(conn)
            # die with two requests in flight

        server = ScriptedServer(script)
        client = PipelinedClient(*server.address)
        errors = []
        barrier = threading.Barrier(3)

        def issue():
            barrier.wait()
            try:
                client.request("doomed")
            except ServerProtocolError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=issue) for _ in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait()
        for thread in threads:
            thread.join(timeout=5)
        assert len(errors) == 2
        # the client is poisoned: later requests fail fast, not hang
        with pytest.raises(ServerProtocolError):
            client.request("too-late")
        client.close()
        server.close()

    def test_concurrent_ops_against_a_real_server(self, tmp_path):
        db = CompliantDB.create(tmp_path / "db")
        server = ComplianceServer(db, ServerConfig()).start()
        client = PipelinedClient(*server.address)
        try:
            pongs = []

            def hammer():
                for _ in range(5):
                    assert client.ping()
                pongs.append(client.now())

            threads = [threading.Thread(target=hammer)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert len(pongs) == 8
        finally:
            client.close()
            server.shutdown()
            db.close()


# --------------------------------------------------------------------------
# FanoutExecutor
# --------------------------------------------------------------------------


class TestFanoutExecutor:
    def test_outcomes_come_back_in_submission_order(self):
        with FanoutExecutor(4) as pool:
            delays = [0.08, 0.0, 0.04, 0.0]

            def task(i):
                time.sleep(delays[i])
                return i * 10

            outcomes = pool.map("t", [
                (i, lambda i=i: task(i)) for i in range(4)])
        assert [o.value for o in outcomes] == [0, 10, 20, 30]
        assert [o.key for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)

    def test_errors_are_collected_not_raised(self):
        with FanoutExecutor(2) as pool:
            def boom():
                raise OSError("shard down")

            outcomes = pool.map("t", [(0, lambda: "fine"), (1, boom)])
        assert outcomes[0].unwrap() == "fine"
        assert isinstance(outcomes[1].error, OSError)
        with pytest.raises(OSError):
            outcomes[1].unwrap()

    def test_single_worker_runs_inline_on_the_caller(self):
        with FanoutExecutor(1) as pool:
            seen = pool.map("t", [
                (i, threading.get_ident) for i in range(3)])
        assert {o.value for o in seen} == {threading.get_ident()}

    def test_same_shard_twice_in_one_round_is_refused(self):
        from repro.analysis import sanitizer

        with FanoutExecutor(2) as pool:
            before = len(sanitizer.current().violations) \
                if sanitizer.current() else 0
            with pytest.raises(ShardError, match="single-caller"):
                pool.map("t", [(0, lambda: 1), (1, lambda: 2),
                               (0, lambda: 3)])
        active = sanitizer.current()
        if active is not None:
            # the guard reports through the sanitizer too; remove the
            # deliberate violation so the conftest gate stays green
            added = active.violations[before:]
            assert [v.kind for v in added] == ["confinement"]
            del active.violations[before:]

    def test_fanout_metrics_are_emitted_on_the_caller(self):
        from repro.obs import Observability

        obs = Observability()
        with FanoutExecutor(2, obs=obs) as pool:
            pool.map("probe", [(0, lambda: 1), (1, lambda: 2)])
        registry = obs.registry
        assert registry.value("shard_fanout_rounds_total",
                              op="probe") == 1
        assert registry.value("shard_fanout_tasks_total",
                              op="probe") == 2
        assert registry.value("shard_fanout_inflight") == 0

    def test_closed_executor_refuses_work(self):
        pool = FanoutExecutor(2)
        pool.close()
        with pytest.raises(ShardError, match="closed"):
            pool.map("t", [(0, lambda: 1)])


class TestWorkerResolution:
    class Remote:
        """Backend shape of a ServerClient: no .engine attribute."""

    class Local:
        def __init__(self, clock):
            self.engine = object()
            self.clock = clock

    def test_remote_backends_get_full_auto_concurrency(self):
        backends = [self.Remote() for _ in range(4)]
        assert resolve_workers(None, backends, False) == 4

    def test_shared_clock_auto_resolves_serial(self):
        clock = SimulatedClock()
        backends = [self.Local(clock), self.Local(clock)]
        assert resolve_workers(None, backends, False) == 1

    def test_independent_clocks_stay_concurrent(self):
        backends = [self.Local(SimulatedClock()),
                    self.Local(SimulatedClock())]
        assert resolve_workers(None, backends, False) == 2

    def test_explicit_workers_with_shared_clock_is_refused(self):
        clock = SimulatedClock()
        backends = [self.Local(clock), self.Local(clock)]
        with pytest.raises(ConfigError, match="SimulatedClock"):
            resolve_workers(2, backends, False)

    def test_created_shard_set_is_serial_and_loud(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        assert db.fanout_workers == 1
        db.close()
        with pytest.raises(ConfigError):
            ShardedDB.open(tmp_path / "s", fanout_workers=4)

    def test_zero_workers_is_an_error(self):
        with pytest.raises(ShardError):
            resolve_workers(0, [], False)


# --------------------------------------------------------------------------
# concurrent 2PC over independent-clock shards
# --------------------------------------------------------------------------


def make_independent(tmp_path, name, key, fanout_workers=None):
    """Two in-process shards, each with its OWN clock (so fan-out may
    run concurrently), sharing one auditor key for the merged audit."""
    backends = [
        CompliantDB.create(tmp_path / f"{name}-s{i}",
                           clock=SimulatedClock(), auditor_key=key)
        for i in range(2)]
    return ShardedDB(backends, HashRouter(2),
                     journal_path=tmp_path / f"{name}.jsonl",
                     auditor_key=key, fanout_workers=fanout_workers)


def fill(db, lo=1, hi=9):
    with db.transaction() as txn:
        for i in range(lo, hi):
            db.insert(txn, "t", {"a": i, "b": i * 10})


class TestConcurrent2PC:
    def test_independent_clocks_enable_concurrency(self, tmp_path):
        db = make_independent(tmp_path, "c", AuditorKey.generate())
        assert db.fanout_workers == 2
        db.create_relation(T)
        fill(db)
        assert db.journal.committed_gids()  # real 2PC ran
        assert [k for k, _ in db.scan("t")] == [(i,) for i in range(1, 9)]
        report = DistributedAuditor(db).audit()
        assert report.ok, report.summary()
        db.close()

    def test_slow_failing_prepare_aborts_everything(self, tmp_path,
                                                    monkeypatch):
        db = make_independent(tmp_path, "p1", AuditorKey.generate())
        db.create_relation(T)

        def slow_dying_prepare(handle, gid):
            time.sleep(0.1)  # the other shard prepares first, and wins
            raise OSError("shard 0 lost mid-prepare")

        monkeypatch.setattr(db.backends[0], "prepare",
                            slow_dying_prepare)
        txn = db.begin()
        for i in range(1, 5):
            db.insert(txn, "t", {"a": i, "b": i})
        assert len(txn.writes) == 2
        with pytest.raises(OSError, match="mid-prepare"):
            db.commit(txn)
        # presumed abort: nothing journaled, nothing visible anywhere
        assert txn.state == "aborted"
        assert not db.journal.committed_gids()
        assert db.scan("t") == []
        report = DistributedAuditor(db).audit()
        assert report.ok, report.summary()
        db.close()

    def test_phase_two_partial_failure_full_failures_map(
            self, tmp_path, monkeypatch):
        db = make_independent(tmp_path, "p2", AuditorKey.generate())
        db.create_relation(T)
        txn = db.begin()
        for i in range(1, 5):
            db.insert(txn, "t", {"a": i, "b": i})
        real = {s: db.backends[s].commit for s in (0, 1)}

        def die(handle):
            raise OSError("unreachable in phase two")

        for shard in (0, 1):
            monkeypatch.setattr(db.backends[shard], "commit", die)
        with pytest.raises(ShardCommitError) as exc:
            db.commit(txn)
        # BOTH failing shards appear — failures collect, never race
        assert sorted(exc.value.failures) == [0, 1]
        assert exc.value.gid == txn.gid
        assert txn.gid in db.journal.committed_gids()

        # both shards catch up deterministically through the journal
        for shard in (0, 1):
            monkeypatch.setattr(db.backends[shard], "commit",
                                real[shard])
        db.crash_recover()
        assert [k for k, _ in db.scan("t")] == [(i,) for i in range(1, 5)]
        report = DistributedAuditor(db).audit()
        assert report.ok, report.summary()
        db.close()


# --------------------------------------------------------------------------
# crash matrix: concurrent fan-out must reproduce the serial bytes
# --------------------------------------------------------------------------


def run_crash_scenario(tmp_path, name, key, scenario, fanout_workers):
    """One crash-matrix scenario end to end; returns the evidence that
    must be byte-identical between serial and concurrent runs."""
    db = make_independent(tmp_path, name, key,
                          fanout_workers=fanout_workers)
    db.create_relation(T)
    fill(db, 1, 9)
    if scenario == "mid_prepare_abort":
        original = db.backends[1].prepare

        def dying(handle, gid):
            raise OSError("lost")

        db.backends[1].prepare = dying
        txn = db.begin()
        for i in range(20, 24):
            db.insert(txn, "t", {"a": i, "b": i})
        with pytest.raises(OSError):
            db.commit(txn)
        db.backends[1].prepare = original
        fill(db, 30, 34)
    elif scenario == "phase_two_failure":
        original = db.backends[1].commit

        def dying(handle):
            raise OSError("lost")

        db.backends[1].commit = dying
        txn = db.begin()
        for i in range(20, 24):
            db.insert(txn, "t", {"a": i, "b": i})
        with pytest.raises(ShardCommitError):
            db.commit(txn)
        db.backends[1].commit = original
        db.crash_recover()
    elif scenario == "crash_after_workload":
        db.crash_recover()
    else:
        assert scenario == "clean"
    report = DistributedAuditor(db, key).audit(rotate=False)
    assert report.ok, report.summary()
    contents = db.scan("t")
    db.close()
    return contents, report.message, report.attestation


CRASH_SCENARIOS = ["clean", "mid_prepare_abort", "phase_two_failure",
                   "crash_after_workload"]


class TestCrashMatrixParity:
    @pytest.mark.parametrize("scenario", CRASH_SCENARIOS)
    def test_concurrent_run_is_byte_identical_to_serial(
            self, tmp_path, scenario):
        key = AuditorKey.generate()
        serial = run_crash_scenario(tmp_path, f"{scenario}-serial", key,
                                    scenario, fanout_workers=1)
        concurrent = run_crash_scenario(tmp_path, f"{scenario}-conc",
                                        key, scenario,
                                        fanout_workers=None)
        assert serial[0] == concurrent[0]          # table contents
        assert serial[1] == concurrent[1]          # canonical message
        assert serial[2] == concurrent[2]          # HMAC attestation


# --------------------------------------------------------------------------
# distributed auditor concurrency
# --------------------------------------------------------------------------


class TestConcurrentAudit:
    def test_concurrent_audit_matches_serial_bytes(self, tmp_path):
        key = AuditorKey.generate()
        db = make_independent(tmp_path, "a", key)
        db.create_relation(T)
        fill(db)
        serial = DistributedAuditor(db, key, fanout_workers=1)
        assert serial.fanout_workers == 1
        one = serial.audit(rotate=False)
        conc = DistributedAuditor(db, key)
        assert conc.fanout_workers == 2
        two = conc.audit(rotate=False)
        assert one.message == two.message
        assert one.attestation == two.attestation
        assert len(two.shard_seconds) == 2
        assert all(s >= 0 for s in two.shard_seconds)
        db.close()

    def test_tamper_attribution_survives_concurrency(self, tmp_path):
        key = AuditorKey.generate()
        db = make_independent(tmp_path, "m", key)
        db.create_relation(T)
        fill(db)
        victim = db.router.shard_of("t", (2,))
        mala = Adversary(db.backends[victim])
        mala.settle()
        mala.alter_tuple("t", (2,), {"a": 2, "b": 31337})
        report = DistributedAuditor(db, key).audit(rotate=False)
        assert not report.ok
        assert report.tampered_shards() == [victim]
        assert report.verify(key)
        db.close()

    def test_shared_clock_shards_audit_serially(self, tmp_path):
        db = ShardedDB.create(tmp_path / "s", shards=2)
        auditor = DistributedAuditor(db)
        assert auditor.fanout_workers == 1
        with pytest.raises(ConfigError):
            DistributedAuditor(db, fanout_workers=2)
        db.close()


# --------------------------------------------------------------------------
# wire shards driven by pipelined connections
# --------------------------------------------------------------------------


class TestWireFanout:
    @pytest.fixture
    def pipelined_sharded(self, tmp_path):
        key = AuditorKey.generate()
        dbs, servers, clients = [], [], []
        for i in range(2):
            db = CompliantDB.create(tmp_path / f"db{i}",
                                    clock=SimulatedClock(),
                                    auditor_key=key)
            server = ComplianceServer(
                db, ServerConfig(allow_crash_ops=True)).start()
            dbs.append(db)
            servers.append(server)
            clients.append(PipelinedClient(*server.address))
        sharded = ShardedDB(clients, HashRouter(2),
                            journal_path=tmp_path / "journal.jsonl",
                            auditor_key=key)
        yield sharded
        for client in clients:
            client.close()
        for server in servers:
            server.shutdown()
        for db in dbs:
            db.close()
        sharded.fanout.close()
        sharded.journal.close()

    def test_concurrent_2pc_over_pipelined_wire_shards(
            self, pipelined_sharded):
        db = pipelined_sharded
        assert db.fanout_workers == 2  # remote shards: full concurrency
        db.create_relation(T)
        fill(db, 1, 13)
        assert db.journal.committed_gids()
        assert [k for k, _ in db.scan("t")] == \
            [(i,) for i in range(1, 13)]
        db.crash_recover()
        assert [k for k, _ in db.scan("t")] == \
            [(i,) for i in range(1, 13)]
        report = DistributedAuditor(db).audit()
        assert report.ok, report.summary()
        assert report.verify(db.auditor_key)
