"""Conformance suite for the :class:`repro.api.ComplianceBackend` protocol.

One typed interface, three implementations — the in-process
:class:`CompliantDB`, the wire :class:`ServerClient`, and the
:class:`ShardedDB` coordinator — exercised by the *same* parametrized
tests.  Anything a loader or driver may call must behave identically
against all three, because that interchangeability is what lets the
shard coordinator mix local and remote shards freely.
"""

import warnings

import pytest

from repro.api import ComplianceBackend, coerce_relation_args
from repro.common.clock import SimulatedClock
from repro.common.codec import Field, FieldType, Schema
from repro.common.config import ComplianceMode, DBConfig
from repro.common.errors import ConfigError, ServerRequestError
from repro.core import CompliantDB
from repro.crypto import AuditorKey
from repro.server import ComplianceServer, ServerClient, ServerConfig
from repro.server.protocol import BUSY, CONFLICT
from repro.shard import HashRouter, ShardedDB

ACCT = Schema("acct",
              [Field("id", FieldType.INT), Field("bal", FieldType.INT)],
              key_fields=["id"])

BACKENDS = ["inproc", "wire", "sharded"]


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """A live backend of each kind, torn down afterwards."""
    kind = request.param
    if kind == "inproc":
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
            clock=SimulatedClock(), auditor_key=AuditorKey.generate())
        yield db
        db.close()
    elif kind == "wire":
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
            clock=SimulatedClock(), auditor_key=AuditorKey.generate())
        server = ComplianceServer(db, ServerConfig()).start()
        client = ServerClient(*server.address)
        yield client
        client.close()
        server.shutdown()
        db.close()
    else:
        sharded = ShardedDB.create(tmp_path / "s", shards=2,
                                   router=HashRouter.name)
        yield sharded
        sharded.close()


class TestProtocolConformance:
    def test_backend_satisfies_protocol(self, backend):
        # runtime_checkable verifies the full method surface exists
        assert isinstance(backend, ComplianceBackend)

    def test_crud_round_trip(self, backend):
        backend.create_relation(ACCT)
        txn = backend.begin()
        backend.insert(txn, "acct", {"id": 1, "bal": 100})
        backend.insert_many(txn, "acct", [{"id": 2, "bal": 200},
                                          {"id": 3, "bal": 300}])
        backend.commit(txn)

        assert backend.get("acct", (2,))["bal"] == 200
        assert [k for k, _ in backend.scan("acct")] == [(1,), (2,), (3,)]

        with backend.transaction() as txn:
            backend.update(txn, "acct", {"id": 1, "bal": 150})
            backend.delete(txn, "acct", (3,))
        assert backend.get("acct", (1,))["bal"] == 150
        assert backend.get("acct", (3,)) is None

    def test_transaction_context_aborts_on_exception(self, backend):
        backend.create_relation(ACCT)
        with pytest.raises(RuntimeError):
            with backend.transaction() as txn:
                backend.insert(txn, "acct", {"id": 9, "bal": 9})
                raise RuntimeError("boom")
        assert backend.get("acct", (9,)) is None

    def test_reads_see_own_writes(self, backend):
        backend.create_relation(ACCT)
        with backend.transaction() as txn:
            backend.insert(txn, "acct", {"id": 5, "bal": 50})
            assert backend.get("acct", (5,), txn=txn)["bal"] == 50
            # not yet visible outside the transaction
            assert backend.get("acct", (5,)) is None
        assert backend.get("acct", (5,))["bal"] == 50

    def test_lifecycle_surface(self, backend):
        backend.create_relation(ACCT)
        assert backend.halted is False
        before = backend.now()
        assert isinstance(before, int)
        backend.checkpoint()
        assert isinstance(backend.maintenance(force=True), bool)
        report = backend.metrics()
        assert isinstance(report, dict) and report

    def test_as_of_reads(self, backend):
        backend.create_relation(ACCT)
        with backend.transaction() as ctx:
            backend.insert(ctx, "acct", {"id": 7, "bal": 70})
        backend.checkpoint()  # apply lazy stamps so `at` is meaningful
        stamped = backend.now()
        with backend.transaction() as ctx:
            backend.update(ctx, "acct", {"id": 7, "bal": 71})
        backend.checkpoint()
        assert backend.get("acct", (7,))["bal"] == 71
        assert backend.get("acct", (7,), at=stamped)["bal"] == 70


class TestLegacyCreateRelation:
    """The historical ``create_relation(name, fields, key)`` spelling
    still works against every backend — with a deprecation warning."""

    def test_legacy_positional_spelling(self, backend):
        with pytest.warns(DeprecationWarning):
            backend.create_relation(
                "legacy", [("id", "int"), ("v", "str")], ["id"])
        with backend.transaction() as txn:
            backend.insert(txn, "legacy", {"id": 1, "v": "x"})
        assert backend.get("legacy", (1,))["v"] == "x"

    def test_legacy_keyword_spelling(self, backend):
        with pytest.warns(DeprecationWarning):
            backend.create_relation("legacy2",
                                    fields=[("id", "int")], key=["id"])
        with backend.transaction() as txn:
            backend.insert(txn, "legacy2", {"id": 4})
        assert backend.get("legacy2", (4,)) == {"id": 4}


class TestCoerceRelationArgs:
    def test_canonical_schema_passthrough(self):
        schema, use_tsb = coerce_relation_args(ACCT, (), None, None, True)
        assert schema is ACCT and use_tsb is True

    def test_legacy_args_build_equivalent_schema(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            schema, _ = coerce_relation_args(
                "acct", ([("id", "int"), ("bal", "int")], ["id"]),
                None, None, None)
        assert schema.name == "acct"
        assert [f.name for f in schema.fields] == ["id", "bal"]
        assert list(schema.key_fields) == ["id"]

    def test_schema_plus_fields_rejected(self):
        with pytest.raises(ConfigError):
            coerce_relation_args(ACCT, (), [("id", "int")], None, None)

    def test_name_without_fields_rejected(self):
        with pytest.raises(ConfigError):
            coerce_relation_args("bare", (), None, None, None)


class TestClientRetryErgonomics:
    """Satellite: ``ServerRequestError.retryable`` is consistent with
    the protocol's code set, and ``request_with_retry`` is bounded."""

    class _FakeClient(ServerClient):
        """ServerClient with a scripted request() — no socket."""

        def __init__(self, script):
            # deliberately skip ServerClient.__init__ (no connection)
            self._script = list(script)
            self.calls = 0

        def request(self, op, **args):
            self.calls += 1
            action = self._script.pop(0)
            if isinstance(action, Exception):
                raise action
            return action

    def test_busy_is_retried_then_succeeds(self, monkeypatch):
        monkeypatch.setattr("repro.server.client.time",
                            _NoSleepTime())
        client = self._FakeClient([
            ServerRequestError(BUSY, "full", retryable=True),
            ServerRequestError(BUSY, "full", retryable=True),
            {"txn": 7},
        ])
        assert client.request_with_retry("begin")["txn"] == 7
        assert client.calls == 3

    def test_conflict_not_retried_by_default(self, monkeypatch):
        monkeypatch.setattr("repro.server.client.time",
                            _NoSleepTime())
        client = self._FakeClient([
            ServerRequestError(CONFLICT, "aborted", retryable=True),
        ])
        with pytest.raises(ServerRequestError) as exc:
            client.request_with_retry("insert")
        assert exc.value.code == CONFLICT
        assert client.calls == 1

    def test_conflict_retried_when_opted_in(self, monkeypatch):
        monkeypatch.setattr("repro.server.client.time",
                            _NoSleepTime())
        client = self._FakeClient([
            ServerRequestError(CONFLICT, "aborted", retryable=True),
            {"txn": 9},
        ])
        result = client.request_with_retry("begin",
                                           retry_conflicts=True)
        assert result["txn"] == 9 and client.calls == 2

    def test_attempts_are_bounded(self, monkeypatch):
        monkeypatch.setattr("repro.server.client.time",
                            _NoSleepTime())
        client = self._FakeClient([
            ServerRequestError(BUSY, "full", retryable=True)
            for _ in range(10)])
        with pytest.raises(ServerRequestError):
            client.request_with_retry("begin", attempts=4)
        assert client.calls == 4

    def test_fatal_errors_propagate_immediately(self, monkeypatch):
        monkeypatch.setattr("repro.server.client.time",
                            _NoSleepTime())
        client = self._FakeClient([
            ServerRequestError("HALTED", "stop", retryable=False),
        ])
        with pytest.raises(ServerRequestError):
            client.request_with_retry("begin")
        assert client.calls == 1

    def test_wire_retryable_flag_matches_server_verdict(self, tmp_path):
        """End-to-end: a real conflict surfaces retryable=True on the
        client exactly as the server judged it."""
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
            clock=SimulatedClock(), auditor_key=AuditorKey.generate())
        db.create_relation(ACCT)
        server = ComplianceServer(db, ServerConfig()).start()
        try:
            with ServerClient(*server.address) as one, \
                    ServerClient(*server.address) as two:
                t1 = one.begin()
                one.insert(t1, "acct", {"id": 1, "bal": 1})
                t2 = two.begin()
                with pytest.raises(ServerRequestError) as exc:
                    two.insert(t2, "acct", {"id": 1, "bal": 2})
                assert exc.value.code == CONFLICT
                assert exc.value.retryable is True
                one.commit(t1)
        finally:
            server.shutdown()
            db.close()


class _NoSleepTime:
    """time-module stand-in: retries must not slow the suite down."""

    @staticmethod
    def sleep(_seconds):
        pass
