"""Unit tests for compliance-log records, framing, and the aux index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.clock import years
from repro.common.errors import ComplianceHaltError, ComplianceLogError
from repro.core.compliance_log import ComplianceLog, aux_name, log_name
from repro.core.records import (AuxStampEntry, CLogRecord, CLogType,
                                iter_aux, iter_records)


def full_record():
    return CLogRecord(
        CLogType.PAGE_SPLIT, txn_id=42, commit_time=99, relation_id=3,
        pgno=7, timestamp=12345, heartbeat=True, is_index=True,
        sep_key=b"\x01key", sep_start=-8, left_pgno=10, right_pgno=11,
        parent_pgno=9, tuple_bytes=b"tuple-bytes", key=b"\x02k", start=55,
        page_hash=b"\xaa" * 64, hist_ref="hist/r3-000001", split_time=777,
        left_content=[b"a", b"bb"], right_content=[b"", b"ccc"])


class TestRecordCodec:
    def test_full_round_trip(self):
        record = full_record()
        parsed, end = CLogRecord.from_bytes(record.to_bytes(), 0)
        assert parsed == record
        assert end == len(record.to_bytes())

    def test_minimal_round_trip(self):
        record = CLogRecord(CLogType.ABORT, txn_id=5)
        parsed, _ = CLogRecord.from_bytes(record.to_bytes(), 0)
        assert parsed == record

    @given(st.sampled_from(list(CLogType)), st.binary(max_size=64),
           st.integers(min_value=-2**62, max_value=2**62))
    def test_round_trip_property(self, rtype, blob, number):
        record = CLogRecord(rtype, txn_id=number, tuple_bytes=blob,
                            key=blob[:16], commit_time=abs(number))
        parsed, _ = CLogRecord.from_bytes(record.to_bytes(), 0)
        assert parsed == record

    def test_iter_records_sequence(self):
        records = [CLogRecord(CLogType.ABORT, txn_id=i) for i in range(5)]
        blob = b"".join(r.to_bytes() for r in records)
        parsed = list(iter_records(blob))
        assert [r.txn_id for _, r in parsed] == [0, 1, 2, 3, 4]
        # offsets are the true byte positions
        for offset, record in parsed:
            reparsed, _ = CLogRecord.from_bytes(blob, offset)
            assert reparsed == record

    def test_truncated_frame_rejected(self):
        blob = full_record().to_bytes()
        with pytest.raises(ComplianceLogError):
            list(iter_records(blob[:-1]))

    def test_aux_round_trip(self):
        entries = [AuxStampEntry(1, 0, 100, False),
                   AuxStampEntry(0, 64, 200, True)]
        blob = b"".join(e.to_bytes() for e in entries)
        assert list(iter_aux(blob)) == entries

    def test_aux_bad_length_rejected(self):
        with pytest.raises(ComplianceLogError):
            list(iter_aux(b"\x00" * 7))


class TestComplianceLog:
    def test_names(self):
        assert log_name(3) == "clog/epoch-000003.log"
        assert aux_name(3) == "clog/epoch-000003.aux"

    def test_append_and_read_back(self, worm):
        clog = ComplianceLog(worm, epoch=1, retention=years(1))
        first = clog.append(CLogRecord(CLogType.ABORT, txn_id=1))
        second = clog.append(CLogRecord(CLogType.ABORT, txn_id=2))
        assert first == 0 and second > 0
        records = [r for _, r in clog.records()]
        assert [r.txn_id for r in records] == [1, 2]

    def test_stamp_trans_indexed_in_aux(self, worm):
        clog = ComplianceLog(worm, epoch=1, retention=years(1))
        clog.append(CLogRecord(CLogType.ABORT, txn_id=1))
        offset = clog.append(CLogRecord(CLogType.STAMP_TRANS, txn_id=9,
                                        commit_time=500))
        entries = clog.aux_entries()
        assert len(entries) == 1
        assert entries[0].txn_id == 9
        assert entries[0].offset == offset
        assert entries[0].commit_time == 500

    def test_sealed_log_halts_processing(self, worm):
        clog = ComplianceLog(worm, epoch=1, retention=years(1))
        clog.seal()
        with pytest.raises(ComplianceHaltError):
            clog.append(CLogRecord(CLogType.ABORT, txn_id=1))

    def test_record_counts(self, worm):
        clog = ComplianceLog(worm, epoch=1, retention=years(1))
        for _ in range(3):
            clog.append(CLogRecord(CLogType.ABORT, txn_id=1))
        clog.append(CLogRecord(CLogType.STAMP_TRANS, txn_id=2,
                               commit_time=1))
        assert clog.record_counts() == {"ABORT": 3, "STAMP_TRANS": 1}

    def test_reattach_same_epoch(self, worm):
        clog = ComplianceLog(worm, epoch=1, retention=years(1))
        clog.append(CLogRecord(CLogType.ABORT, txn_id=1))
        again = ComplianceLog(worm, epoch=1, retention=years(1))
        assert len(list(again.records())) == 1
