"""Unit tests for the ``repro.obs`` observability subsystem.

Covers registry semantics (identity, idempotence, conflicts), histogram
bucketing, deterministic tracing, exporters, the null variants, the
``Observability`` bundle, ``ObsConfig`` validation, and the deprecated
``*Stats`` constructor shims.
"""

import json

import pytest

from repro.common.config import ObsConfig
from repro.common.errors import ConfigError, ObsError
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Observability,
    Tracer,
    metrics_report,
    prometheus_text,
)
from repro.obs.registry import NullCounter, NullGauge, NullHistogram
from repro.obs.views import PluginStatsView, WormStatsView


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("requests_total") == 5

    def test_counter_negative_inc_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        with pytest.raises(ObsError):
            c.inc(-1)
        assert c.value == 0

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_identity_is_name_plus_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", kind="read")
        b = reg.counter("ops_total", kind="write")
        same = reg.counter("ops_total", kind="read")
        assert a is same
        assert a is not b
        a.inc(3)
        b.inc(1)
        assert reg.value("ops_total", kind="read") == 3
        assert reg.value("ops_total", kind="write") == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ObsError):
            reg.gauge("x_total")
        with pytest.raises(ObsError):
            reg.histogram("x_total", buckets=(1.0,))

    def test_histogram_boundary_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        # same boundaries: fine (idempotent)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ObsError):
            reg.histogram("lat_seconds", buckets=(0.5, 1.0))

    def test_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError):
            reg.histogram("h", buckets=())
        with pytest.raises(ObsError):
            reg.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ObsError):
            reg.histogram("h", buckets=(1.0, 1.0))

    def test_labelled_values(self):
        reg = MetricsRegistry()
        reg.counter("rec_total", type="NEW_TUPLE").inc(7)
        reg.counter("rec_total", type="ABORT").inc(2)
        assert reg.labelled_values("rec_total", "type") == {
            "NEW_TUPLE": 7, "ABORT": 2}
        assert reg.labelled_values("missing", "type") == {}

    def test_value_of_unknown_metric_is_zero(self):
        reg = MetricsRegistry()
        assert reg.value("never_registered") == 0

    def test_snapshot_is_detached(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("h_seconds", buckets=(1.0,))
        c.inc()
        h.observe(0.5)
        snap = reg.snapshot()
        c.inc(10)
        h.observe(0.5)
        assert snap["counters"]["n_total"] == 1
        assert snap["histograms"]["h_seconds"]["count"] == 1
        # and it is plain JSON-able data
        json.dumps(snap)

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        assert reg.counter("n_total") is c


class TestHistogram:
    def test_le_is_inclusive_with_inf_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 5.0))
        h.observe(1.0)    # lands in le=1.0 (inclusive upper bound)
        h.observe(1.5)    # le=5.0
        h.observe(99.0)   # +Inf
        cum = dict(h.cumulative())
        assert cum["1.0"] == 1
        assert cum["5.0"] == 2
        assert cum["+Inf"] == 3
        assert h.total == 3
        assert h.sum == pytest.approx(101.5)


class TestTracer:
    def test_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = {s["name"]: s for s in tracer.finished()}
        assert spans["outer"]["parent_id"] == 0
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]

    def test_two_identical_runs_produce_identical_traces(self):
        def run():
            tracer = Tracer()
            with tracer.span("a", n=1):
                with tracer.span("b"):
                    pass
                tracer.event("mark", ok=True)
            return tracer.finished()

        assert run() == run()

    def test_injected_clock_stamps_spans(self):
        ticks = iter([100, 200, 300, 400])
        tracer = Tracer(now=lambda: next(ticks))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s["name"]: s for s in tracer.finished()}
        assert spans["outer"]["start"] == 100
        assert spans["inner"]["start"] == 200
        assert spans["inner"]["end"] == 300
        assert spans["outer"]["end"] == 400

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=2)
        for name in ("a", "b", "c"):
            tracer.event(name)
        assert tracer.dropped == 1
        assert [s["name"] for s in tracer.finished()] == ["b", "c"]

    def test_span_counts_sorted(self):
        tracer = Tracer()
        tracer.event("z")
        tracer.event("a")
        tracer.event("a")
        assert list(tracer.span_counts().items()) == [("a", 2), ("z", 1)]

    def test_set_attributes_and_reset(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(rows=3, ok=True)
        (finished,) = tracer.finished()
        assert finished["attrs"] == {"rows": 3, "ok": True}
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.dropped == 0
        assert tracer.span("fresh").span_id == 1


class TestExport:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("n_total", help="things", kind="a").inc(2)
        reg.gauge("depth").set(4)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = prometheus_text(reg)
        assert "# HELP n_total things" in text
        assert "# TYPE n_total counter" in text
        assert 'n_total{kind="a"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 4" in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.5" in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_text_is_byte_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total").inc()
            reg.counter("a_total", x="2").inc()
            reg.counter("a_total", x="1").inc()
            return prometheus_text(reg)

        text = build()
        assert text == build()
        # families and children sorted
        assert text.index("a_total") < text.index("b_total")
        assert text.index('x="1"') < text.index('x="2"')

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_metrics_report_includes_spans(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc()
        tracer = Tracer(capacity=1)
        tracer.event("a")
        tracer.event("a")
        report = metrics_report(reg, tracer)
        assert report["counters"] == {"n_total": 1}
        assert report["spans"] == {"a": 1}
        assert report["spans_dropped"] == 1
        assert "spans" not in metrics_report(reg)


class TestNullVariants:
    def test_null_registry_children_are_noops(self):
        reg = NullRegistry()
        c = reg.counter("n_total")
        c.inc(100)
        assert isinstance(c, NullCounter)
        assert c.value == 0
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec()
        assert isinstance(g, NullGauge)
        assert g.value == 0
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        assert isinstance(h, NullHistogram)
        assert h.total == 0
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a") as span:
            span.set(x=1)
            tracer.event("b")
        assert tracer.finished() == []
        assert tracer.span_counts() == {}


class TestObservability:
    def test_default_bundle_is_live(self):
        obs = Observability()
        assert obs.enabled
        obs.registry.counter("n_total").inc()
        assert obs.registry.value("n_total") == 1

    def test_disabled_bundle(self):
        obs = Observability.disabled()
        assert not obs.enabled
        obs.registry.counter("n_total").inc()
        assert obs.registry.snapshot()["counters"] == {}
        assert obs.tracer.span("x") is obs.tracer.span("y")

    def test_from_config_enabled_uses_injected_now(self):
        config = ObsConfig(trace_capacity=7)
        obs = Observability.from_config(config, now=lambda: 42)
        assert obs.enabled
        assert obs.tracer.capacity == 7
        obs.tracer.event("tick")
        assert obs.tracer.finished()[0]["start"] == 42

    def test_from_config_disabled(self):
        obs = Observability.from_config(ObsConfig(enabled=False))
        assert not obs.enabled
        assert isinstance(obs.registry, NullRegistry)
        assert isinstance(obs.tracer, NullTracer)


class TestObsConfig:
    def test_defaults_validate(self):
        ObsConfig().validate()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ObsConfig(trace_capacity=-1).validate()

    def test_bucket_errors(self):
        with pytest.raises(ConfigError):
            ObsConfig(latency_buckets=[]).validate()
        with pytest.raises(ConfigError):
            ObsConfig(latency_buckets=[2.0, 1.0]).validate()
        with pytest.raises(ConfigError):
            ObsConfig(latency_buckets=[1.0, 1.0]).validate()


class TestDeprecatedStatsShims:
    def test_worm_stats_constructor_warns_but_works(self):
        from repro.worm.server import WormStats
        with pytest.warns(DeprecationWarning):
            stats = WormStats()
        assert isinstance(stats, WormStatsView)
        assert stats.appends == 0
        assert stats.flushes == 0
        stats.reset()

    def test_plugin_stats_constructor_warns_but_works(self):
        from repro.core.plugin import PluginStats
        from repro.core.records import CLogType
        with pytest.warns(DeprecationWarning):
            stats = PluginStats()
        assert isinstance(stats, PluginStatsView)
        stats.bump(CLogType.NEW_TUPLE)
        assert stats.records == {"NEW_TUPLE": 1}
        assert stats.extra_disk_reads == 0

    def test_pager_stats_constructor_warns_but_works(self):
        from repro.storage.pager import PagerStats
        with pytest.warns(DeprecationWarning):
            stats = PagerStats()
        assert stats.reads == 0 and stats.writes == 0

    def test_buffer_stats_constructor_warns_but_works(self):
        from repro.storage.buffer import BufferStats
        with pytest.warns(DeprecationWarning):
            stats = BufferStats()
        assert stats.hit_ratio == 0.0
