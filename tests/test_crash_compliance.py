"""Crash recovery under the compliance protocol: the Section IV-B window.

These tests crash the DBMS at adversarial moments and verify that the
compliance machinery (START_RECOVERY, replayed outcomes, PAGE_RESETs, the
WORM WAL mirror) keeps the *audit* sound — not just the data.
"""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.core.records import CLogType

ROWS = Schema("rows", [
    Field("k", FieldType.INT),
    Field("v", FieldType.INT),
], key_fields=["k"])


def make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=16),
                        compliance=ComplianceConfig(
                            mode=mode,
                            regret_interval=minutes(5))))
    db.create_relation(ROWS)
    return db


def put(db, k, v):
    with db.transaction() as txn:
        row = {"k": k, "v": v}
        if db.get("rows", (k,), txn=txn) is None:
            db.insert(txn, "rows", row)
        else:
            db.update(txn, "rows", row)


@pytest.mark.parametrize("mode", [ComplianceMode.LOG_CONSISTENT,
                                  ComplianceMode.HASH_ON_READ])
class TestCrashThenAudit:
    def test_crash_before_any_flush(self, tmp_path, mode):
        db = make_db(tmp_path, mode)
        for k in range(15):
            put(db, k, k)
        db.crash()
        db.recover()
        assert len(db.scan("rows")) == 15
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_crash_with_stolen_uncommitted_pages(self, tmp_path, mode):
        db = make_db(tmp_path, mode)
        for k in range(10):
            put(db, k, k)
        loser = db.begin()
        db.insert(loser, "rows", {"k": 777, "v": 7})
        db.engine.wal.flush()
        db.engine.checkpoint()  # the uncommitted tuple reaches disk
        db.crash()
        db.recover()
        assert db.get("rows", (777,)) is None
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_repeated_crash_cycles(self, tmp_path, mode):
        db = make_db(tmp_path, mode)
        for cycle in range(4):
            for k in range(cycle * 5, cycle * 5 + 5):
                put(db, k, cycle)
            db.crash()
            db.recover()
        assert len(db.scan("rows")) == 20
        counts = db.clog.record_counts()
        assert counts.get("START_RECOVERY", 0) == 4
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_crash_between_audits(self, tmp_path, mode):
        db = make_db(tmp_path, mode)
        auditor = Auditor(db)
        for k in range(8):
            put(db, k, 1)
        assert auditor.audit().ok
        for k in range(8):
            put(db, k, 2)
        db.crash()
        db.recover()
        report = auditor.audit()
        assert report.ok, report.summary()
        assert db.epoch == 3

    def test_reads_after_recovery_verify(self, tmp_path, mode):
        # post-crash reads must verify against the PAGE_RESET-re-based
        # replay (hash-on-read), and data must be intact in both modes
        db = make_db(tmp_path, mode)
        for k in range(30):
            put(db, k, k)
        db.crash()
        db.recover()
        db.engine.buffer.drop_all()
        for k in range(0, 30, 3):
            assert db.get("rows", (k,))["v"] == k  # disk reads: READs log
        report = Auditor(db).audit()
        assert report.ok, report.summary()


class TestCrossProcessCrash:
    def test_reopen_after_crash_in_new_process(self, tmp_path):
        # simulate a process crash by abandoning the instance entirely
        clock = SimulatedClock()
        db = CompliantDB.create(
            tmp_path / "db", clock=clock,
            config=DBConfig(engine=EngineConfig(page_size=1024,
                                                buffer_pages=16),
                            compliance=ComplianceConfig(
                                mode=ComplianceMode.HASH_ON_READ)))
        db.create_relation(ROWS)
        for k in range(12):
            with db.transaction() as txn:
                db.insert(txn, "rows", {"k": k, "v": k})
        db.engine.wal.flush()
        # no close(): the process "dies"; file handles leak like a crash
        reopened = CompliantDB.open(tmp_path / "db", clock)
        report = reopened.recover()
        assert len(report.committed) >= 12
        assert len(reopened.scan("rows")) == 12
        audit = Auditor(reopened).audit()
        assert audit.ok, audit.summary()

    def test_page_resets_emitted_for_hash_on_read_only(self, tmp_path):
        for mode, expected in [(ComplianceMode.LOG_CONSISTENT, 0),
                               (ComplianceMode.HASH_ON_READ, 1)]:
            db = make_db(tmp_path / mode.value, mode)
            put(db, 1, 1)
            db.engine.checkpoint()
            db.crash()
            db.recover()
            resets = db.clog.record_counts().get("PAGE_RESET", 0)
            if expected:
                assert resets > 0
            else:
                assert resets == 0

    def test_recovery_outcomes_fill_missing_stamp(self, tmp_path):
        # crash between the WAL COMMIT flush and the STAMP_TRANS append:
        # recovery must supply the missing record exactly once
        db = make_db(tmp_path)
        put(db, 1, 1)
        txn = db.begin()
        db.insert(txn, "rows", {"k": 2, "v": 2})
        # commit at the WAL level only: bypass the plugin's on_commit
        from repro.wal import WalRecord, WalRecordType
        commit_time = db.clock.tick()
        db.engine.wal.append(WalRecord(WalRecordType.COMMIT,
                                       txn_id=txn.txn_id,
                                       commit_time=commit_time))
        db.engine.wal.flush()
        db.crash()
        db.recover()
        stamps = [r for _, r in db.clog.records()
                  if r.rtype == CLogType.STAMP_TRANS and
                  r.txn_id == txn.txn_id]
        assert len(stamps) == 1
        assert stamps[0].commit_time == commit_time
        assert db.get("rows", (2,))["v"] == 2
        report = Auditor(db).audit()
        assert report.ok, report.summary()
