"""Self-tests for the repro-lint static analyzer.

Each rule has a known-bad and a known-good fixture in
``tests/lint_fixtures/``; the bad one must trip exactly its rule and the
good one must be fully clean.  The suite also covers the suppression
machinery (line/file scope, mandatory justifications), the CLI surface
(text/JSON output, exit codes), and — the acceptance criterion — that
the real source tree lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import RULE_REGISTRY, run_lint
from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

RULES = [
    "barrier-dominance",
    "worm-immutability",
    "record-exhaustiveness",
    "replay-determinism",
    "lock-discipline",
]

#: violations deliberately planted in each bad fixture
EXPECTED_BAD = {
    "barrier-dominance": 3,
    "worm-immutability": 3,
    "record-exhaustiveness": 1,
    "replay-determinism": 4,
    "lock-discipline": 2,
}


def fixture(kind: str, rule: str) -> str:
    return str(FIXTURES / f"{kind}_{rule.replace('-', '_')}.py")


class TestRuleFixtures:
    def test_all_rules_registered(self):
        assert set(RULES) <= set(RULE_REGISTRY)

    @pytest.mark.parametrize("rule", RULES)
    def test_bad_fixture_is_flagged(self, rule):
        findings = run_lint([fixture("bad", rule)], select=[rule])
        assert len(findings) == EXPECTED_BAD[rule], \
            "\n".join(str(f) for f in findings)
        assert all(f.rule == rule for f in findings)

    @pytest.mark.parametrize("rule", RULES)
    def test_good_fixture_is_clean_under_every_rule(self, rule):
        assert run_lint([fixture("good", rule)]) == []

    def test_findings_carry_locations(self):
        findings = run_lint([fixture("bad", "lock-discipline")],
                            select=["lock-discipline"])
        for finding in findings:
            assert finding.line > 0
            assert finding.path.endswith("bad_lock_discipline.py")
            assert "[lock-discipline]" in str(finding)

    def test_exhaustiveness_needs_enum_in_file_set(self, tmp_path):
        # a marker whose enum is outside the linted set is itself an error
        mod = tmp_path / "orphan.py"
        mod.write_text("# repro-lint: exhaustive=ElsewhereType\n")
        findings = run_lint([str(mod)], select=["record-exhaustiveness"])
        assert len(findings) == 1
        assert "not in the linted file set" in findings[0].message


class TestSuppressions:
    BAD_LINE = ("def tamper(pager, pgno, raw):\n"
                "    pager.write_raw(pgno, raw)")

    def test_justified_line_suppression_silences(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            self.BAD_LINE + "  # repro-lint: "
            "disable=barrier-dominance -- exercising the seam\n")
        assert run_lint([str(mod)]) == []

    def test_unjustified_suppression_is_reported(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            self.BAD_LINE + "  # repro-lint: disable=barrier-dominance\n")
        findings = run_lint([str(mod)])
        assert [f.rule for f in findings] == ["suppression-justification"]

    def test_file_scope_suppression(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "# repro-lint: disable-file=barrier-dominance -- test file\n"
            "def one(pager):\n"
            "    pager.write_raw(1, b'')\n"
            "def two(pager):\n"
            "    pager.write_raw(2, b'')\n")
        assert run_lint([str(mod)]) == []

    def test_suppression_of_other_rule_does_not_silence(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            self.BAD_LINE + "  # repro-lint: "
            "disable=lock-discipline -- wrong rule\n")
        findings = run_lint([str(mod)])
        assert [f.rule for f in findings] == ["barrier-dominance"]

    def test_suppression_only_covers_its_line(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def one(pager):\n"
            "    pager.write_raw(1, b'')  # repro-lint: "
            "disable=barrier-dominance -- first only\n"
            "def two(pager):\n"
            "    pager.write_raw(2, b'')\n")
        findings = run_lint([str(mod)])
        assert len(findings) == 1
        assert findings[0].line == 4


class TestCli:
    def test_text_output_and_exit_one(self, capsys):
        code = main([fixture("bad", "barrier-dominance")])
        out = capsys.readouterr().out
        assert code == 1
        assert "[barrier-dominance]" in out
        assert "finding(s)" in out

    def test_clean_exit_zero(self, capsys):
        code = main([fixture("good", "barrier-dominance")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main(["--format", "json",
                     fixture("bad", "replay-determinism")])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert len(data) == EXPECTED_BAD["replay-determinism"]
        assert {"rule", "path", "line", "col", "message"} <= set(data[0])

    def test_select_restricts_rules(self, capsys):
        code = main(["--select", "lock-discipline",
                     fixture("bad", "barrier-dominance")])
        assert code == 0  # barrier violations invisible to this rule

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "no-such-rule",
                     fixture("good", "lock-discipline")]) == 2

    def test_unparseable_file_is_usage_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert main([str(broken)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out


class TestSourceTree:
    def test_src_lints_clean(self):
        # the acceptance criterion: repro-lint src/ exits 0
        findings = run_lint([str(SRC)])
        assert findings == [], "\n".join(str(f) for f in findings)
