"""Self-tests for the repro-lint static analyzer.

Each rule has a known-bad and a known-good fixture in
``tests/lint_fixtures/``; the bad one must trip exactly its rule and the
good one must be fully clean.  The suite also covers the suppression
machinery (line/file scope, mandatory justifications), the CLI surface
(text/JSON output, exit codes), and — the acceptance criterion — that
the real source tree lints clean.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import RULE_REGISTRY, run_lint
from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

RULES = [
    "barrier-dominance",
    "worm-immutability",
    "record-exhaustiveness",
    "replay-determinism",
    "lock-discipline",
    "exception-safe-release",
    "fsync-before-rename",
    "executor-confinement",
    "replay-reachability",
]

#: violations deliberately planted in each bad fixture
EXPECTED_BAD = {
    "barrier-dominance": 3,
    "worm-immutability": 3,
    "record-exhaustiveness": 1,
    "replay-determinism": 4,
    "lock-discipline": 2,
    "exception-safe-release": 2,
    "fsync-before-rename": 2,
    "executor-confinement": 4,
    "replay-reachability": 2,
}

#: violations the pre-call-graph rules could not see: the barrier /
#: release / append hides behind a helper wrapper
EXPECTED_INTERPROCEDURAL = {
    "barrier-dominance": 2,
    "lock-discipline": 1,
    "worm-immutability": 1,
}


def fixture(kind: str, rule: str) -> str:
    return str(FIXTURES / f"{kind}_{rule.replace('-', '_')}.py")


class TestRuleFixtures:
    def test_all_rules_registered(self):
        assert set(RULES) <= set(RULE_REGISTRY)

    @pytest.mark.parametrize("rule", RULES)
    def test_bad_fixture_is_flagged(self, rule):
        findings = run_lint([fixture("bad", rule)], select=[rule])
        assert len(findings) == EXPECTED_BAD[rule], \
            "\n".join(str(f) for f in findings)
        assert all(f.rule == rule for f in findings)

    @pytest.mark.parametrize("rule", RULES)
    def test_good_fixture_is_clean_under_every_rule(self, rule):
        assert run_lint([fixture("good", rule)]) == []

    def test_findings_carry_locations(self):
        findings = run_lint([fixture("bad", "lock-discipline")],
                            select=["lock-discipline"])
        for finding in findings:
            assert finding.line > 0
            assert finding.path.endswith("bad_lock_discipline.py")
            assert "[lock-discipline]" in str(finding)

    @pytest.mark.parametrize("rule", sorted(EXPECTED_INTERPROCEDURAL))
    def test_interprocedural_bad_fixture_is_flagged(self, rule):
        path = fixture("interprocedural_bad", rule)
        findings = run_lint([path], select=[rule])
        assert len(findings) == EXPECTED_INTERPROCEDURAL[rule], \
            "\n".join(str(f) for f in findings)
        assert all(f.rule == rule for f in findings)

    @pytest.mark.parametrize("rule", sorted(EXPECTED_INTERPROCEDURAL))
    def test_interprocedural_good_fixture_is_clean(self, rule):
        # the wrapper genuinely barriers/releases/measures: following
        # the call graph must SILENCE these, not just find more bugs
        assert run_lint([fixture("interprocedural_good", rule)]) == []

    def test_exhaustiveness_needs_enum_in_file_set(self, tmp_path):
        # a marker whose enum is outside the linted set is itself an error
        mod = tmp_path / "orphan.py"
        mod.write_text("# repro-lint: exhaustive=ElsewhereType\n")
        findings = run_lint([str(mod)], select=["record-exhaustiveness"])
        assert len(findings) == 1
        assert "not in the linted file set" in findings[0].message


class TestSuppressions:
    BAD_LINE = ("def tamper(pager, pgno, raw):\n"
                "    pager.write_raw(pgno, raw)")

    def test_justified_line_suppression_silences(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            self.BAD_LINE + "  # repro-lint: "
            "disable=barrier-dominance -- exercising the seam\n")
        assert run_lint([str(mod)]) == []

    def test_unjustified_suppression_is_reported(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            self.BAD_LINE + "  # repro-lint: disable=barrier-dominance\n")
        findings = run_lint([str(mod)])
        assert [f.rule for f in findings] == ["suppression-justification"]

    def test_file_scope_suppression(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "# repro-lint: disable-file=barrier-dominance -- test file\n"
            "def one(pager):\n"
            "    pager.write_raw(1, b'')\n"
            "def two(pager):\n"
            "    pager.write_raw(2, b'')\n")
        assert run_lint([str(mod)]) == []

    def test_suppression_of_other_rule_does_not_silence(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            self.BAD_LINE + "  # repro-lint: "
            "disable=lock-discipline -- wrong rule\n")
        findings = run_lint([str(mod)])
        assert [f.rule for f in findings] == ["barrier-dominance"]

    def test_suppression_only_covers_its_line(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def one(pager):\n"
            "    pager.write_raw(1, b'')  # repro-lint: "
            "disable=barrier-dominance -- first only\n"
            "def two(pager):\n"
            "    pager.write_raw(2, b'')\n")
        findings = run_lint([str(mod)])
        assert len(findings) == 1
        assert findings[0].line == 4


class TestCli:
    def test_text_output_and_exit_one(self, capsys):
        code = main([fixture("bad", "barrier-dominance")])
        out = capsys.readouterr().out
        assert code == 1
        assert "[barrier-dominance]" in out
        assert "finding(s)" in out

    def test_clean_exit_zero(self, capsys):
        code = main([fixture("good", "barrier-dominance")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main(["--format", "json",
                     fixture("bad", "replay-determinism")])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert len(data) == EXPECTED_BAD["replay-determinism"]
        assert {"rule", "path", "line", "col", "message"} <= set(data[0])

    def test_select_restricts_rules(self, capsys):
        code = main(["--select", "lock-discipline",
                     fixture("bad", "barrier-dominance")])
        assert code == 0  # barrier violations invisible to this rule

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "no-such-rule",
                     fixture("good", "lock-discipline")]) == 2

    def test_unparseable_file_is_usage_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert main([str(broken)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_gh_format_matches_problem_matcher(self, capsys):
        # one line per finding, parseable by the CI problem matcher
        code = main(["--format", "gh", fixture("bad", "lock-discipline")])
        assert code == 1
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == EXPECTED_BAD["lock-discipline"]
        pattern = re.compile(
            r"^(.+?):(\d+):(\d+): ([a-z0-9-]+): (.+)$")
        for line in lines:
            match = pattern.match(line)
            assert match, line
            assert match.group(4) == "lock-discipline"

    def test_exclude_pattern_skips_files(self, capsys):
        # every bad fixture masked out: the sweep over the whole
        # fixture directory comes back clean
        code = main(["--exclude", "*bad_*", str(FIXTURES)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_output_is_deterministic(self, capsys):
        runs = []
        for _ in range(2):
            main(["--format", "json", str(FIXTURES)])
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]
        data = json.loads(runs[0])
        keys = [(d["path"], d["line"], d["col"], d["rule"]) for d in data]
        assert keys == sorted(keys)


class TestBaseline:
    def test_update_then_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        bad = fixture("bad", "lock-discipline")
        code = main(["--baseline", str(baseline),
                     "--update-baseline", bad])
        assert code == 0
        assert "baseline updated" in capsys.readouterr().out
        recorded = json.loads(baseline.read_text())
        assert len(recorded) == EXPECTED_BAD["lock-discipline"]

        # the ratchet: known findings no longer fail the run
        code = main(["--baseline", str(baseline), bad])
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out

    def test_new_findings_still_fail(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        old = fixture("bad", "lock-discipline")
        main(["--baseline", str(baseline), "--update-baseline", old])
        capsys.readouterr()

        # a file the baseline has never seen introduces fresh findings
        fresh = fixture("bad", "worm-immutability")
        code = main(["--baseline", str(baseline), old, fresh])
        out = capsys.readouterr().out
        assert code == 1
        assert "worm-immutability" in out
        assert "lock-discipline" not in out  # baselined away

    def test_update_baseline_requires_baseline_path(self, capsys):
        assert main(["--update-baseline",
                     fixture("good", "lock-discipline")]) == 2

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        assert main(["--baseline", str(baseline),
                     fixture("good", "lock-discipline")]) == 2

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        assert main(["--baseline", str(tmp_path / "absent.json"),
                     fixture("good", "lock-discipline")]) == 2


class TestSourceTree:
    def test_src_lints_clean(self):
        # the acceptance criterion: repro-lint src/ exits 0
        findings = run_lint([str(SRC)])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_tests_benchmarks_examples_lint_clean(self):
        # satellite acceptance: the whole working tree is covered, with
        # the deliberately-broken fixtures masked out exactly as in CI
        root = SRC.parent.parent
        paths = [root / "tests", root / "benchmarks", root / "examples"]
        findings = run_lint([str(p) for p in paths if p.is_dir()],
                            exclude=["*lint_fixtures*"])
        assert findings == [], "\n".join(str(f) for f in findings)
