"""Integration tests: the observability subsystem wired into CompliantDB.

Every instrumented layer must emit at least one metric and one span into
the database's single registry/tracer; ``CompliantDB.metrics()`` and the
``repro-admin metrics`` exporter expose them; traces are deterministic
across identical replays; and the redesigned construction API keeps its
deprecation shims and marker back-compat working.
"""

import json

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.common.config import ObsConfig
from repro.obs import Observability
from repro.tools.admin import main as admin_main

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("account", FieldType.STR),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT, obs=None,
            obs_config=None):
    clock = SimulatedClock()
    config = DBConfig(engine=EngineConfig(page_size=1024, buffer_pages=16),
                      compliance=ComplianceConfig(
                          mode=mode, regret_interval=minutes(5)),
                      obs=obs_config or ObsConfig())
    db = CompliantDB.create(tmp_path / "db", config, clock=clock, obs=obs)
    db.create_relation(LEDGER)
    return db


def add_entries(db, start, count, account="ops"):
    for i in range(start, start + count):
        with db.transaction() as txn:
            db.insert(txn, "ledger",
                      {"entry_id": i, "account": account, "amount": i * 10})


class TestEveryLayerEmits:
    def test_metrics_and_spans_cover_all_layers(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        add_entries(db, 0, 120)       # enough rows to split leaves
        with db.transaction() as txn:
            db.update(txn, "ledger", {"entry_id": 3, "account": "ops",
                                      "amount": 999})
        txn = db.begin()
        db.insert(txn, "ledger", {"entry_id": 900, "account": "x",
                                  "amount": 1})
        db.abort(txn)
        db.engine.checkpoint()
        db.vacuum()
        report = Auditor(db).audit()
        assert report.ok

        metrics = db.metrics()
        counters = metrics["counters"]
        # WORM server
        assert counters["worm_appends_total"] > 0
        assert counters["worm_flushes_total"] > 0
        # pager + buffer pool
        assert counters["pager_writes_total"] > 0
        assert counters["buffer_hits_total"] > 0
        assert counters["buffer_misses_total"] > 0
        # B-tree
        assert counters['btree_splits_total{kind="leaf"}'] > 0
        # transactions
        assert counters["txn_begin_total"] >= 122
        assert counters["txn_commit_total"] >= 121
        assert counters["txn_abort_total"] >= 1
        # compliance log
        assert counters['clog_records_total{type="NEW_TUPLE"}'] >= 120
        assert counters["clog_barrier_flushes_total"] > 0
        # retention / shredding maintenance
        assert counters["vacuum_runs_total"] == 1
        # audit + epoch rotation
        assert counters['audits_total{outcome="pass"}'] == 1
        assert counters["epoch_rotations_total"] == 1
        assert metrics["gauges"]["db_epoch"] == 2

        phases = [key for key in metrics["histograms"]
                  if key.startswith("audit_phase_seconds")]
        assert 'audit_phase_seconds{phase="log"}' in phases
        assert 'audit_phase_seconds{phase="rotate"}' in phases

        spans = metrics["spans"]
        for name in ("worm.flush", "buffer.flush_batch", "btree.split",
                     "txn.commit", "txn.abort", "engine.checkpoint",
                     "vacuum", "audit", "audit.log", "audit.rotate",
                     "epoch.rotate", "clog.seal"):
            assert spans.get(name, 0) > 0, f"missing span {name}"
        assert metrics["spans_dropped"] == 0
        db.close()

    def test_metrics_survive_crash_and_recover(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 10)
        before = db.metrics()["counters"]["txn_commit_total"]
        db.crash()
        db.recover()
        counters = db.metrics()["counters"]
        # process-lifetime semantics: the simulated crash resets the
        # database's volatile state, not the process's metrics
        assert counters["txn_commit_total"] == before
        assert counters["db_crashes_total"] == 1
        assert counters["db_recoveries_total"] == 1
        assert db.metrics()["spans"].get("db.recover", 0) == 1
        add_entries(db, 100, 3)
        assert db.metrics()["counters"]["txn_commit_total"] == before + 3
        db.close()


class TestTraceDeterminism:
    def _trace(self, root):
        db = make_db(root)
        add_entries(db, 0, 30)
        db.engine.checkpoint()
        trace = db.obs.tracer.finished()
        db.close()
        return trace

    def test_identical_workloads_identical_traces(self, tmp_path):
        first = self._trace(tmp_path / "a")
        second = self._trace(tmp_path / "b")
        assert first == second
        assert len(first) > 0


class TestObsWiring:
    def test_disabled_obs_produces_empty_metrics(self, tmp_path):
        db = make_db(tmp_path, obs_config=ObsConfig(enabled=False))
        add_entries(db, 0, 5)
        assert not db.obs.enabled
        metrics = db.metrics()
        assert metrics["counters"] == {}
        assert metrics["spans"] == {}
        db.close()

    def test_injected_bundle_receives_metrics(self, tmp_path):
        shared = Observability()
        db = make_db(tmp_path, obs=shared)
        add_entries(db, 0, 5)
        assert db.obs is shared
        assert shared.registry.value("txn_commit_total") >= 5
        db.close()

    def test_trace_capacity_flows_from_config(self, tmp_path):
        db = make_db(tmp_path, obs_config=ObsConfig(trace_capacity=8))
        add_entries(db, 0, 20)
        assert db.obs.tracer.capacity == 8
        assert len(db.obs.tracer.finished()) == 8
        assert db.metrics()["spans_dropped"] > 0
        db.close()


class TestConstructionAPI:
    def test_mode_kwarg_shim_warns_but_works(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="for_mode"):
            db = CompliantDB.create(tmp_path / "db",
                                    clock=SimulatedClock(),
                                    mode=ComplianceMode.HASH_ON_READ)
        assert db.mode is ComplianceMode.HASH_ON_READ
        assert db.config.compliance.mode is ComplianceMode.HASH_ON_READ
        db.close()

    def test_for_mode_is_the_replacement(self, tmp_path):
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.REGULAR),
            clock=SimulatedClock())
        assert db.mode is ComplianceMode.REGULAR
        db.close()

    def test_open_marker_without_obs_section(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 3)
        db.close()
        marker_path = tmp_path / "db" / "mode.json"
        marker = json.loads(marker_path.read_text())
        del marker["obs"]     # markers from before the obs redesign
        marker_path.write_text(json.dumps(marker))
        reopened = CompliantDB.open(tmp_path / "db", SimulatedClock())
        reopened.recover()
        assert reopened.obs.enabled
        assert reopened.get("ledger", (1,))["amount"] == 10
        reopened.close()

    def test_open_top_level_mode_is_authoritative(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        add_entries(db, 0, 3)
        db.close()
        marker_path = tmp_path / "db" / "mode.json"
        marker = json.loads(marker_path.read_text())
        # simulate a pre-redesign marker whose compliance section kept
        # the dataclass default instead of the real mode
        marker["compliance"]["mode"] = ComplianceMode.LOG_CONSISTENT.value
        marker_path.write_text(json.dumps(marker))
        reopened = CompliantDB.open(tmp_path / "db", SimulatedClock())
        reopened.recover()
        assert reopened.mode is ComplianceMode.HASH_ON_READ
        reopened.close()

    def test_obs_config_round_trips_through_marker(self, tmp_path):
        db = make_db(tmp_path, obs_config=ObsConfig(trace_capacity=123))
        db.close()
        reopened = CompliantDB.open(tmp_path / "db", SimulatedClock())
        assert reopened.config.obs.trace_capacity == 123
        assert reopened.obs.tracer.capacity == 123
        reopened.close()


class TestAdminMetricsCommand:
    @pytest.fixture
    def db_path(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 5)
        db.close()
        return str(tmp_path / "db")

    def test_prometheus_output(self, db_path, capsys):
        assert admin_main(["metrics", db_path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE worm_appends_total counter" in out
        assert "# TYPE db_epoch gauge" in out
        assert "pager_reads_total" in out

    def test_json_output(self, db_path, capsys):
        assert admin_main(["metrics", db_path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) >= {"counters", "gauges", "histograms",
                               "spans", "spans_dropped"}
        assert report["gauges"]["db_epoch"] == 1
