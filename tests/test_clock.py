"""Tests for the simulated clock."""

import pytest

from repro.common.clock import (MICROS_PER_MINUTE, SimulatedClock, days,
                                minutes, seconds, years)
from repro.common.errors import ConfigError


def test_now_does_not_advance():
    clock = SimulatedClock(start=500)
    assert clock.now() == 500
    assert clock.now() == 500


def test_tick_strictly_increases():
    clock = SimulatedClock()
    stamps = [clock.tick() for _ in range(100)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 100


def test_tick_size_configurable():
    clock = SimulatedClock(start=0, tick_micros=10)
    assert clock.tick() == 10
    assert clock.tick() == 20


def test_advance_jumps_forward():
    clock = SimulatedClock(start=0)
    clock.advance(minutes(5))
    assert clock.now() == 5 * MICROS_PER_MINUTE


def test_advance_rejects_negative():
    clock = SimulatedClock()
    with pytest.raises(ConfigError):
        clock.advance(-1)


def test_advance_to_is_monotone():
    clock = SimulatedClock(start=100)
    clock.advance_to(500)
    assert clock.now() == 500
    clock.advance_to(50)  # no-op: never goes backwards
    assert clock.now() == 500


def test_invalid_construction():
    with pytest.raises(ConfigError):
        SimulatedClock(start=-1)
    with pytest.raises(ConfigError):
        SimulatedClock(tick_micros=0)


def test_duration_helpers_compose():
    assert seconds(60) == minutes(1)
    assert minutes(60 * 24) == days(1)
    assert days(365) == years(1)
    assert seconds(0.5) == 500_000
