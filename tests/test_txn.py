"""Tests for the lock table and transaction manager."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import LockConflictError, TransactionStateError
from repro.txn import LockMode, LockTable, TransactionManager, TxnState
from repro.wal import TransactionLog, WalRecordType


class TestLockTable:
    def test_exclusive_blocks_others(self):
        table = LockTable()
        table.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            table.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            table.acquire(2, "r", LockMode.EXCLUSIVE)

    def test_shared_is_compatible(self):
        table = LockTable()
        table.acquire(1, "r", LockMode.SHARED)
        table.acquire(2, "r", LockMode.SHARED)
        assert table.holders("r") == {1, 2}

    def test_reacquire_is_noop(self):
        table = LockTable()
        table.acquire(1, "r", LockMode.EXCLUSIVE)
        table.acquire(1, "r", LockMode.EXCLUSIVE)
        table.acquire(1, "r", LockMode.SHARED)  # weaker request: still held
        assert table.holders("r") == {1}

    def test_sole_holder_upgrade(self):
        table = LockTable()
        table.acquire(1, "r", LockMode.SHARED)
        table.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            table.acquire(2, "r", LockMode.SHARED)

    def test_upgrade_blocked_by_other_reader(self):
        table = LockTable()
        table.acquire(1, "r", LockMode.SHARED)
        table.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(LockConflictError):
            table.acquire(1, "r", LockMode.EXCLUSIVE)

    def test_release_all_frees_resources(self):
        table = LockTable()
        table.acquire(1, "a", LockMode.EXCLUSIVE)
        table.acquire(1, "b", LockMode.SHARED)
        table.release_all(1)
        assert table.holders("a") == set()
        table.acquire(2, "a", LockMode.EXCLUSIVE)

    def test_shared_release_keeps_other_holders(self):
        table = LockTable()
        table.acquire(1, "r", LockMode.SHARED)
        table.acquire(2, "r", LockMode.SHARED)
        table.release_all(1)
        assert table.holders("r") == {2}
        assert table.held_by(2) == {"r"}


@pytest.fixture
def manager(tmp_path, clock):
    wal = TransactionLog(tmp_path / "wal.log")
    return TransactionManager(clock, wal), wal


class TestTransactionManager:
    def test_begin_assigns_increasing_ids(self, manager):
        mgr, _ = manager
        first, second = mgr.begin(), mgr.begin()
        assert second.txn_id > first.txn_id
        assert mgr.active_count == 2

    def test_commit_is_durable_and_ordered(self, manager):
        mgr, wal = manager
        txn = mgr.begin()
        commit_time = mgr.commit(txn)
        assert commit_time > txn.txn_id
        records = list(wal.iter_records())
        assert [r.rtype for r in records] == \
            [WalRecordType.BEGIN, WalRecordType.COMMIT]
        assert records[-1].commit_time == commit_time
        assert txn.state is TxnState.COMMITTED
        assert mgr.active_count == 0

    def test_commit_listener_fires_after_commit(self, manager):
        mgr, wal = manager
        events = []
        mgr.on_commit.append(
            lambda txn, ct: events.append((txn.txn_id, ct,
                                           wal.flushed_lsn)))
        txn = mgr.begin()
        commit_time = mgr.commit(txn)
        assert events == [(txn.txn_id, commit_time, wal.flushed_lsn)]

    def test_abort_runs_undo_then_logs(self, manager):
        mgr, wal = manager
        order = []
        mgr.undo_callback = lambda txn: order.append("undo")
        mgr.on_abort.append(lambda txn: order.append("listener"))
        txn = mgr.begin()
        mgr.abort(txn)
        assert order == ["undo", "listener"]
        assert txn.state is TxnState.ABORTED
        types = [r.rtype for r in wal.iter_records()]
        assert types == [WalRecordType.BEGIN, WalRecordType.ABORT]

    def test_double_commit_rejected(self, manager):
        mgr, _ = manager
        txn = mgr.begin()
        mgr.commit(txn)
        with pytest.raises(TransactionStateError):
            mgr.commit(txn)
        with pytest.raises(TransactionStateError):
            mgr.abort(txn)

    def test_locks_released_on_commit(self, manager):
        mgr, _ = manager
        txn = mgr.begin()
        mgr.locks.acquire(txn.txn_id, "row", LockMode.EXCLUSIVE)  # repro-lint: disable=lock-discipline -- unit test drives the LockTable directly; commit's release_all is the behaviour under test
        mgr.commit(txn)
        other = mgr.begin()
        mgr.locks.acquire(other.txn_id, "row", LockMode.EXCLUSIVE)

    def test_resolve_start(self, manager):
        mgr, _ = manager
        txn = mgr.begin()
        assert mgr.resolve_start(txn.txn_id, stamped=False) is None
        commit_time = mgr.commit(txn)
        assert mgr.resolve_start(txn.txn_id, stamped=False) == commit_time
        assert mgr.resolve_start(12345, stamped=True) == 12345

    def test_crash_reset_clears_state(self, manager):
        mgr, _ = manager
        txn = mgr.begin()
        mgr.locks.acquire(txn.txn_id, "row", LockMode.EXCLUSIVE)  # repro-lint: disable=lock-discipline -- unit test drives the LockTable directly; crash_reset clearing locks is the behaviour under test
        mgr.crash_reset()
        assert mgr.active_count == 0
        assert mgr.locks.holders("row") == set()

    def test_commit_times_strictly_increasing(self, manager):
        mgr, _ = manager
        times = [mgr.commit(mgr.begin()) for _ in range(10)]
        assert times == sorted(times)
        assert len(set(times)) == 10
