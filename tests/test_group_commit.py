"""Group-commit buffering: crash ordering, caches, and flush reduction.

The PR-1 batching layer lets compliance-log appends sit in a WORM-side
buffer until an explicit durability barrier.  These tests inject crashes
between the buffered append, the barrier, and the data-page write-back,
and verify the Section IV ordering invariant survives: every reachable
crash state is a legal history (the audit passes), tampering is still
flagged, and the caches really do eliminate redundant hashing work.
"""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.core import Adversary
from repro.crypto import HASH_STATS

ROWS = Schema("rows", [
    Field("k", FieldType.INT),
    Field("v", FieldType.INT),
], key_fields=["k"])

MODES = [ComplianceMode.LOG_CONSISTENT, ComplianceMode.HASH_ON_READ]


def make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ, buffer_pages=16):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=buffer_pages),
                        compliance=ComplianceConfig(
                            mode=mode,
                            regret_interval=minutes(5))))
    db.create_relation(ROWS)
    return db


def put(db, k, v):
    with db.transaction() as txn:
        row = {"k": k, "v": v}
        if db.get("rows", (k,), txn=txn) is None:
            db.insert(txn, "rows", row)
        else:
            db.update(txn, "rows", row)


class TestCrashOrdering:
    """Crash injection at each point of the append → barrier → write-back
    chain; the audit must accept every legal history."""

    def test_crash_with_buffered_read_hashes(self, tmp_path):
        # READ_HASH records are the one kind that sits buffered across an
        # API boundary (reads carry no durability obligation of their
        # own).  A crash drops them — and must drop them *atomically with
        # the reads' effects*, which is trivially true: reads have none.
        db = make_db(tmp_path, ComplianceMode.HASH_ON_READ)
        for k in range(12):
            put(db, k, k)
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        for k in range(0, 12, 2):
            assert db.get("rows", (k,))["v"] == k
        assert db.clog.pending_bytes() > 0  # READ_HASHes still buffered
        db.crash()
        assert db.clog.pending_bytes() == 0  # the crash ate the buffer
        db.recover()
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    @pytest.mark.parametrize("mode", MODES)
    def test_crash_immediately_after_barrier(self, tmp_path, mode):
        db = make_db(tmp_path, mode)
        for k in range(10):
            put(db, k, k)
        db.plugin.barrier()
        assert db.clog.pending_bytes() == 0
        db.crash()
        db.recover()
        assert len(db.scan("rows")) == 10
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    @pytest.mark.parametrize("mode", MODES)
    def test_crash_right_after_page_writeback(self, tmp_path, mode):
        # the checkpoint writes data pages; each write fires the pending-
        # page barrier first, so the crash arrives with L strictly ahead
        # of the data file — the invariant recovery depends on
        db = make_db(tmp_path, mode)
        for k in range(20):
            put(db, k, k)
        db.engine.checkpoint()
        db.crash()
        db.recover()
        assert len(db.scan("rows")) == 20
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    @pytest.mark.parametrize("mode", MODES)
    def test_crash_with_stolen_uncommitted_page(self, tmp_path, mode):
        # steal an uncommitted tuple onto disk (its NEW_TUPLE record is
        # barriered by the write-back), then crash before the outcome
        db = make_db(tmp_path, mode)
        for k in range(8):
            put(db, k, k)
        loser = db.begin()
        db.insert(loser, "rows", {"k": 404, "v": 4})
        db.engine.wal.flush()
        db.engine.checkpoint()
        db.crash()
        db.recover()
        assert db.get("rows", (404,)) is None
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    @pytest.mark.parametrize("mode", MODES)
    def test_tampering_after_crash_recovery_is_flagged(self, tmp_path,
                                                       mode):
        # an illegal history must still fail the audit with buffering on
        db = make_db(tmp_path, mode)
        for k in range(15):
            put(db, k, k)
        db.crash()
        db.recover()
        mala = Adversary(db)
        mala.settle()
        mala.alter_tuple("rows", (3,), {"k": 3, "v": 10**9})
        db.engine.buffer.drop_all()
        report = Auditor(db).audit()
        assert not report.ok

    @pytest.mark.parametrize("mode", MODES)
    def test_no_pending_records_at_physical_write(self, tmp_path, mode):
        # white-box check of the paper's rule: by the time a data page's
        # bytes go to disk, its compliance records must have left the
        # buffer.  Our probe barrier runs *after* the plugin's, i.e. at
        # the moment of the physical write.
        db = make_db(tmp_path, mode, buffer_pages=12)
        writes = []

        def probe(pgno):
            writes.append((pgno, pgno in db.plugin._pending_pages))

        db.engine.pager.pwrite_barriers.append(probe)
        for k in range(60):
            put(db, k, k)
        db.engine.checkpoint()
        assert writes  # pages actually went to disk
        violations = [pgno for pgno, pending in writes if pending]
        assert violations == []


class TestFlushReduction:
    """Acceptance criterion: >= 2x fewer WORM flush round-trips than
    appends (the pre-change baseline flushed once per append)."""

    @pytest.mark.parametrize("mode", MODES)
    def test_flushes_at_most_half_of_appends(self, tmp_path, mode):
        # multi-row transactions against a small cache: evicted leaves
        # carry several fresh tuples, so their NEW_TUPLE (and, on re-read,
        # READ_HASH) bursts share one barrier flush
        db = make_db(tmp_path, mode, buffer_pages=12)
        for batch in range(40):
            with db.transaction() as txn:
                for i in range(8):
                    db.insert(txn, "rows",
                              {"k": batch * 8 + i, "v": batch})
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        for k in range(0, 320, 4):
            assert db.get("rows", (k,))["v"] == k // 8
        stats = db.worm.stats
        assert stats.appends > 0
        # before this PR every append was its own write+flush round-trip
        assert stats.flushes * 2 <= stats.appends, \
            (stats.flushes, stats.appends)


class TestHashCaching:
    def test_repeated_read_of_unchanged_page_hashes_nothing(
            self, tmp_path):
        db = make_db(tmp_path, ComplianceMode.HASH_ON_READ)
        for k in range(10):
            put(db, k, k)
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        for k in range(10):
            db.get("rows", (k,))  # first cold read: hashes + caches
        db.engine.buffer.drop_all()
        before_sha = HASH_STATS.sha512_calls
        before_hits = db.plugin.stats.hash_cache_hits
        for k in range(10):
            assert db.get("rows", (k,))["v"] == k  # second cold read
        assert HASH_STATS.sha512_calls == before_sha  # zero new SHA-512
        assert db.plugin.stats.hash_cache_hits > before_hits

    def test_cache_invalidated_when_page_changes(self, tmp_path):
        # a changed page must be re-hashed, not served from the cache
        db = make_db(tmp_path, ComplianceMode.HASH_ON_READ)
        put(db, 1, 1)
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        db.get("rows", (1,))
        put(db, 1, 2)
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        before = HASH_STATS.sha512_calls
        assert db.get("rows", (1,))["v"] == 2
        assert HASH_STATS.sha512_calls > before
        report = Auditor(db).audit()
        assert report.ok, report.summary()


class TestPluginCounters:
    def test_group_commit_counters_move(self, tmp_path):
        db = make_db(tmp_path, ComplianceMode.LOG_CONSISTENT)
        put(db, 1, 1)
        db.engine.checkpoint()
        put(db, 1, 2)
        db.engine.checkpoint()  # same leaf rewritten: diff served from cache
        stats = db.plugin.stats
        assert stats.buffered_appends > 0
        assert stats.barrier_flushes > 0
        assert stats.diff_cache_hits >= 1
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_unchanged_page_rewrite_is_free(self, tmp_path):
        # flushing a page whose bytes did not change must not re-diff it
        db = make_db(tmp_path, ComplianceMode.LOG_CONSISTENT)
        put(db, 1, 1)
        db.engine.checkpoint()
        before = db.plugin.stats.diff_cache_hits
        info = db.engine.relation("rows")
        pgno = info.tree.leaf_pgnos()[0]
        raw = db.engine.pager.read_raw(pgno)
        db.engine.pager.write_page(pgno, raw)  # byte-identical rewrite
        assert db.plugin.stats.diff_cache_hits == before + 1
