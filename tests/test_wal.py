"""Tests for WAL records, the transaction log, and recovery analysis."""

import pytest

from repro.common.clock import years
from repro.common.errors import WalError
from repro.wal import (RecoveryPlan, TransactionLog, WalRecord,
                       WalRecordType, analyse)


def make_log(tmp_path, **kwargs):
    return TransactionLog(tmp_path / "wal.log", **kwargs)


class TestWalRecord:
    def test_round_trip_all_fields(self):
        record = WalRecord(WalRecordType.INSERT, txn_id=42, lsn=7,
                           commit_time=99, tuple_bytes=b"tuple",
                           relation_id=3, key=b"\x01k", start=-5,
                           pgno=12, hist_ref="migrated/p12-0",
                           split_time=1000)
        parsed, offset = WalRecord.from_bytes(record.to_bytes(), 0)
        assert parsed == record
        assert offset == len(record.to_bytes())

    def test_corrupt_crc_rejected(self):
        raw = bytearray(WalRecord(WalRecordType.BEGIN, txn_id=1).to_bytes())
        raw[-1] ^= 0xFF
        with pytest.raises(WalError):
            WalRecord.from_bytes(bytes(raw), 0)

    def test_truncated_rejected(self):
        raw = WalRecord(WalRecordType.BEGIN, txn_id=1).to_bytes()
        with pytest.raises(WalError):
            WalRecord.from_bytes(raw[: len(raw) - 3], 0)


class TestTransactionLog:
    def test_append_assigns_increasing_lsns(self, tmp_path):
        log = make_log(tmp_path)
        lsns = [log.append(WalRecord(WalRecordType.BEGIN, txn_id=i))
                for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]

    def test_unflushed_records_not_durable(self, tmp_path):
        log = make_log(tmp_path)
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        assert list(log.iter_records()) == []
        log.flush()
        assert [r.txn_id for r in log.iter_records()] == [1]

    def test_drop_buffer_simulates_crash(self, tmp_path):
        log = make_log(tmp_path)
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        log.flush()
        log.append(WalRecord(WalRecordType.COMMIT, txn_id=1))
        log.drop_buffer()
        log.flush()
        types = [r.rtype for r in log.iter_records()]
        assert types == [WalRecordType.BEGIN]

    def test_flush_to_only_when_needed(self, tmp_path):
        log = make_log(tmp_path)
        lsn = log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        log.flush_to(lsn - 1)
        assert log.flushed_lsn == lsn - 1
        log.flush_to(lsn)
        assert log.flushed_lsn == lsn

    def test_lsn_continues_after_reopen(self, tmp_path):
        log = make_log(tmp_path)
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        log.flush()
        log.close()
        log2 = make_log(tmp_path)
        assert log2.append(WalRecord(WalRecordType.BEGIN, txn_id=2)) == 2

    def test_torn_tail_ignored(self, tmp_path):
        log = make_log(tmp_path)
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        log.flush()
        log.close()
        with open(tmp_path / "wal.log", "ab") as handle:
            handle.write(b"\x40\x00\x00\x00garbage")  # torn frame
        log2 = make_log(tmp_path)
        assert [r.txn_id for r in log2.iter_records()] == [1]

    def test_worm_mirror_receives_flushed_bytes(self, tmp_path, worm):
        log = make_log(tmp_path)
        log.set_worm_mirror(worm, "txnlog/epoch-1", retention=years(1))
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=9))
        log.flush()
        mirrored = worm.read("txnlog/epoch-1")
        record, _ = WalRecord.from_bytes(mirrored, 0)
        assert record.txn_id == 9

    def test_truncate_resets_file_not_worm(self, tmp_path, worm):
        log = make_log(tmp_path)
        log.set_worm_mirror(worm, "txnlog/epoch-1", retention=years(1))
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        log.flush()
        log.truncate()
        assert list(log.iter_records()) == []
        assert worm.size("txnlog/epoch-1") > 0

    def test_truncate_with_buffer_rejected(self, tmp_path):
        log = make_log(tmp_path)
        log.append(WalRecord(WalRecordType.BEGIN, txn_id=1))
        with pytest.raises(WalError):
            log.truncate()


class TestRecoveryAnalysis:
    def test_classification(self):
        records = [
            WalRecord(WalRecordType.BEGIN, txn_id=1),
            WalRecord(WalRecordType.BEGIN, txn_id=2),
            WalRecord(WalRecordType.BEGIN, txn_id=3),
            WalRecord(WalRecordType.INSERT, txn_id=1, tuple_bytes=b"t"),
            WalRecord(WalRecordType.COMMIT, txn_id=1, commit_time=500),
            WalRecord(WalRecordType.ABORT, txn_id=2),
        ]
        plan = analyse(records)
        assert plan.committed == {1: 500}
        assert plan.aborted == {2}
        assert plan.losers == {3}
        assert plan.outcome_of(1) == "committed"
        assert plan.outcome_of(2) == "aborted"
        assert plan.outcome_of(3) == "loser"

    def test_checkpoint_and_time_split_ignored_for_outcomes(self):
        records = [
            WalRecord(WalRecordType.CHECKPOINT),
            WalRecord(WalRecordType.TIME_SPLIT, pgno=4, hist_ref="h"),
        ]
        plan = analyse(records)
        assert plan.losers == set()
        assert len(plan.records) == 2

    def test_empty_log(self):
        plan = analyse([])
        assert isinstance(plan, RecoveryPlan)
        assert not plan.committed and not plan.aborted and not plan.losers
