"""Detection tests: every threat-model attack must be caught by the audit.

Each test mounts one attack from Section II / Fig. 2 / Section V and
asserts the next audit reports tampering — and, where the paper
distinguishes them, that the *weaker* architecture misses what the
*stronger* one catches (the state-reversion attack).
"""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.core import Adversary, AttackFailed

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("account", FieldType.STR),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT):
    clock = SimulatedClock()
    config = DBConfig(engine=EngineConfig(page_size=1024, buffer_pages=32),
                      compliance=ComplianceConfig(mode=mode))
    db = CompliantDB.create(tmp_path / "db", config, clock=clock)
    db.create_relation(LEDGER)
    return db


def populate(db, count=40):
    for i in range(count):
        with db.transaction() as txn:
            db.insert(txn, "ledger",
                      {"entry_id": i, "account": "ops", "amount": i * 10})
    for i in range(0, count, 4):
        with db.transaction() as txn:
            db.update(txn, "ledger",
                      {"entry_id": i, "account": "ops", "amount": -1})


@pytest.fixture(params=[ComplianceMode.LOG_CONSISTENT,
                        ComplianceMode.HASH_ON_READ])
def rigged(tmp_path, request):
    """A populated database plus its adversary, in both architectures."""
    db = make_db(tmp_path, mode=request.param)
    populate(db)
    mala = Adversary(db)
    mala.settle()
    return db, mala


class TestShredAndAlter:
    def test_shredding_a_tuple_is_detected(self, rigged):
        db, mala = rigged
        mala.shred_tuple("ledger", (7,))
        report = Auditor(db).audit()
        assert not report.ok
        assert "completeness" in report.codes()

    def test_shredding_one_old_version_is_detected(self, rigged):
        db, mala = rigged
        # erase only the superseded version of a multi-version tuple
        mala.shred_tuple("ledger", (4,), version_index=0)
        report = Auditor(db).audit()
        assert not report.ok
        assert "completeness" in report.codes()

    def test_altering_payload_is_detected(self, rigged):
        db, mala = rigged
        mala.alter_tuple("ledger", (3,),
                         {"entry_id": 3, "account": "ops",
                          "amount": 999999})
        report = Auditor(db).audit()
        assert not report.ok
        assert "completeness" in report.codes()

    def test_audit_names_the_altered_version(self, rigged):
        db, mala = rigged
        mala.alter_tuple("ledger", (3,),
                         {"entry_id": 3, "account": "ops", "amount": 1})
        report = Auditor(db).audit()
        detail = next(f for f in report.findings
                      if f.code == "completeness").detail
        assert "altered" in detail


class TestPostHocInsertion:
    def test_backdated_insert_is_detected(self, rigged):
        db, mala = rigged
        past = db.clock.now() - minutes(60)
        mala.backdate_insert("ledger", {"entry_id": 5000,
                                        "account": "ghost",
                                        "amount": 123}, start=past)
        report = Auditor(db).audit()
        assert not report.ok
        assert "completeness" in report.codes()

    def test_backdated_insert_with_forged_log_records(self, rigged):
        # Mala also appends NEW_TUPLE-legitimising STAMP_TRANS to L; the
        # WAL-mirror cross-check still catches her
        db, mala = rigged
        past = db.clock.now() - minutes(60)
        mala.backdate_insert("ledger", {"entry_id": 5000,
                                        "account": "ghost",
                                        "amount": 123}, start=past)
        mala.append_spurious_stamp(txn_id=999999, commit_time=past)
        report = Auditor(db).audit()
        assert not report.ok
        assert report.codes() & {"recovery-inconsistent", "stamp-order",
                                 "completeness"}


class TestIndexAttacks:
    def test_swapped_leaf_entries_detected(self, rigged):
        db, mala = rigged
        mala.swap_leaf_entries("ledger")
        report = Auditor(db).audit()
        assert not report.ok
        assert report.codes() & {"slot-order", "version-threading",
                                 "key-bound", "cross-page-order"}

    def test_tampered_separator_detected(self, rigged):
        db, mala = rigged
        mala.tamper_separator("ledger")
        report = Auditor(db).audit()
        assert not report.ok


class TestStateReversion:
    def test_log_consistent_alone_misses_reversion(self, tmp_path):
        # the attack the paper uses to motivate hash-page-on-read
        db = make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT)
        populate(db)
        mala = Adversary(db)
        mala.settle()
        handle = mala.begin_state_reversion(
            "ledger", (3,), {"entry_id": 3, "account": "ops",
                             "amount": 31337})
        # victims query the tampered state
        assert db.get("ledger", (3,))["amount"] == 31337
        handle.revert()
        db.engine.buffer.drop_all()
        report = Auditor(db).audit()
        assert report.ok, ("log-consistent cannot see reverted tampering: "
                           "query verification interval is infinite")

    def test_hash_on_read_catches_reversion(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        populate(db)
        mala = Adversary(db)
        mala.settle()
        handle = mala.begin_state_reversion(
            "ledger", (3,), {"entry_id": 3, "account": "ops",
                             "amount": 31337})
        assert db.get("ledger", (3,))["amount"] == 31337  # READ logged
        handle.revert()
        db.engine.buffer.drop_all()
        report = Auditor(db).audit()
        assert not report.ok
        assert "read-hash-mismatch" in report.codes()

    def test_unread_reversion_is_invisible_even_to_hash_on_read(
            self, tmp_path):
        # if no transaction read the tampered page, there is no READ
        # record to contradict — matching the paper's guarantee, which is
        # about pages transactions actually read
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        populate(db)
        mala = Adversary(db)
        mala.settle()
        handle = mala.begin_state_reversion(
            "ledger", (3,), {"entry_id": 3, "account": "ops",
                             "amount": 31337})
        handle.revert()
        report = Auditor(db).audit()
        assert report.ok


class TestLogForgery:
    def test_spurious_abort_fails_audit(self, rigged):
        # "Mala may append spurious ABORT records to L to try to hide the
        # existence of tuples that she regrets"
        db, mala = rigged
        stamped = [txn for txn in db.plugin.commit_map][5]
        mala.append_spurious_abort(stamped)
        report = Auditor(db).audit()
        assert not report.ok
        assert "abort-and-commit" in report.codes()

    def test_spurious_shredded_cover_up_fails_audit(self, rigged):
        # shredding an unexpired tuple under cover of a SHREDDED record
        db, mala = rigged
        mala.append_spurious_shredded("ledger", (9,))
        report = Auditor(db).audit()
        assert not report.ok
        assert report.codes() & {"shred-without-policy", "premature-shred"}


class TestCrashAttacks:
    def test_silent_recovery_detected(self, rigged):
        db, mala = rigged
        db.clock.advance(minutes(30))  # crash downtime, no witnesses
        mala.crash_and_silent_recovery()
        populate_more = [(1000, 1)]
        for entry_id, amount in populate_more:
            with db.transaction() as txn:
                db.insert(txn, "ledger", {"entry_id": entry_id,
                                          "account": "x",
                                          "amount": amount})
        report = Auditor(db).audit()
        assert not report.ok
        assert "liveness-gap" in report.codes()

    def test_honest_recovery_after_downtime_passes(self, tmp_path):
        db = make_db(tmp_path)
        populate(db)
        db.clock.advance(minutes(30))
        db.crash()
        db.recover()  # START_RECOVERY bridges the gap
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_wal_truncation_before_recovery_detected(self, rigged):
        db, mala = rigged
        # a committed txn whose pages were never flushed
        with db.transaction() as txn:
            db.insert(txn, "ledger", {"entry_id": 777, "account": "hot",
                                      "amount": 7})
        mala.truncate_wal()  # destroy its WAL record, then "crash"
        db.crash()
        db.recover()
        assert db.get("ledger", (777,)) is None  # the tuple is gone…
        report = Auditor(db).audit()
        assert not report.ok  # …but the WORM tail/L tell on her
        assert report.codes() & {"recovery-inconsistent", "completeness",
                                 "log-wal-divergence"}


class TestAttackPreconditions:
    def test_attacks_require_existing_targets(self, tmp_path):
        db = make_db(tmp_path)
        mala = Adversary(db)
        with pytest.raises(AttackFailed):
            mala.shred_tuple("ledger", (1,))
        with pytest.raises(AttackFailed):
            mala.tamper_separator("ledger")
