"""Tests for the TPC-C workload: loader invariants, transaction semantics,
mix, and a full compliant run ending in a clean audit."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, SimulatedClock, minutes)
from repro.tpcc import (ALL_SCHEMAS, DriverResult, TPCCDriver, TPCCLoader,
                        TPCCScale, TPCCTransactions, last_name)


def make_db(tmp_path, mode=ComplianceMode.REGULAR, buffer_pages=128):
    clock = SimulatedClock()
    config = DBConfig(engine=EngineConfig(page_size=2048,
                                          buffer_pages=buffer_pages),
                      compliance=ComplianceConfig(
                          mode=mode,
                          regret_interval=minutes(5)))
    return CompliantDB.create(tmp_path / "db", config, clock=clock)


@pytest.fixture(scope="module")
def loaded(tmp_path_factory):
    """One tiny loaded database shared by the read-only checks."""
    db = make_db(tmp_path_factory.mktemp("tpcc"))
    scale = TPCCScale.tiny()
    TPCCLoader(db, scale, seed=1).load()
    return db, scale


class TestLoader:
    def test_cardinalities(self, loaded):
        db, scale = loaded
        counts = {s.name: db.engine.count_rows(s.name)
                  for s in ALL_SCHEMAS}
        assert counts["warehouse"] == scale.warehouses
        assert counts["district"] == (scale.warehouses *
                                      scale.districts_per_warehouse)
        assert counts["customer"] == (scale.warehouses *
                                      scale.districts_per_warehouse *
                                      scale.customers_per_district)
        assert counts["item"] == scale.items
        assert counts["stock"] == scale.warehouses * scale.items
        assert counts["orders"] == (scale.warehouses *
                                    scale.districts_per_warehouse *
                                    scale.initial_orders_per_district)
        assert counts["history"] == counts["customer"]
        assert counts["order_line"] > counts["orders"] * 4

    def test_undelivered_backlog(self, loaded):
        db, scale = loaded
        pending = db.engine.count_rows("new_order")
        per_district = scale.initial_orders_per_district - \
            scale.initial_orders_per_district * 2 // 3
        assert pending == (scale.warehouses *
                           scale.districts_per_warehouse * per_district)

    def test_district_next_o_id(self, loaded):
        db, scale = loaded
        district = db.get("district", (1, 1))
        assert district["d_next_o_id"] == \
            scale.initial_orders_per_district + 1

    def test_deterministic(self, tmp_path):
        first = make_db(tmp_path / "a")
        second = make_db(tmp_path / "b")
        TPCCLoader(first, TPCCScale.tiny(), seed=9).load()
        TPCCLoader(second, TPCCScale.tiny(), seed=9).load()
        assert first.get("customer", (1, 1, 3)) == \
            second.get("customer", (1, 1, 3))
        assert first.get("item", (7,)) == second.get("item", (7,))

    def test_last_name_rule(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EINGEINGEING"


class TestTransactions:
    @pytest.fixture
    def fresh(self, tmp_path):
        db = make_db(tmp_path)
        scale = TPCCScale.tiny()
        TPCCLoader(db, scale, seed=2).load()
        return db, scale, TPCCTransactions(db, scale, seed=3)

    def test_new_order_creates_rows(self, fresh):
        db, scale, txns = fresh
        before = db.engine.count_rows("orders")
        outcomes = [txns.new_order() for _ in range(10)]
        committed = sum(1 for o in outcomes if o.committed)
        assert db.engine.count_rows("orders") == before + committed
        assert committed >= 8  # ~1% rollback rate

    def test_new_order_advances_district_counter(self, fresh):
        db, scale, txns = fresh
        before = {d: db.get("district", (1, d))["d_next_o_id"]
                  for d in range(1, scale.districts_per_warehouse + 1)}
        committed = sum(1 for _ in range(10) if txns.new_order().committed)
        after = {d: db.get("district", (1, d))["d_next_o_id"]
                 for d in range(1, scale.districts_per_warehouse + 1)}
        assert sum(after.values()) - sum(before.values()) == committed

    def test_new_order_updates_stock(self, fresh):
        db, scale, txns = fresh
        total_before = sum(
            row["s_ytd"] for _, row in db.scan("stock"))
        for _ in range(5):
            txns.new_order()
        total_after = sum(
            row["s_ytd"] for _, row in db.scan("stock"))
        assert total_after > total_before

    def test_rollback_leaves_no_trace(self, fresh):
        db, scale, txns = fresh
        txns._rng.random = lambda: 0.0  # force the 1% rollback branch
        before_orders = db.engine.count_rows("orders")
        before_no = db.engine.count_rows("new_order")
        outcome = txns.new_order()
        assert not outcome.committed
        assert db.engine.count_rows("orders") == before_orders
        assert db.engine.count_rows("new_order") == before_no

    def test_payment_moves_money(self, fresh):
        db, scale, txns = fresh
        ytd_before = db.get("warehouse", (1,))["w_ytd"]
        outcome = txns.payment()
        assert outcome.committed
        assert db.get("warehouse", (1,))["w_ytd"] > ytd_before

    def test_payment_history_grows(self, fresh):
        db, scale, txns = fresh
        before = db.engine.count_rows("history")
        for _ in range(5):
            assert txns.payment().committed
        assert db.engine.count_rows("history") == before + 5

    def test_order_status_read_only(self, fresh):
        db, scale, txns = fresh
        counts = {s.name: db.engine.count_rows(s.name)
                  for s in ALL_SCHEMAS}
        assert txns.order_status().committed
        assert counts == {s.name: db.engine.count_rows(s.name)
                          for s in ALL_SCHEMAS}

    def test_delivery_clears_backlog(self, fresh):
        db, scale, txns = fresh
        pending_before = db.engine.count_rows("new_order")
        assert pending_before > 0
        assert txns.delivery().committed
        pending_after = db.engine.count_rows("new_order")
        assert pending_after == pending_before - \
            scale.districts_per_warehouse

    def test_delivery_pays_customer(self, fresh):
        db, scale, txns = fresh
        # place fresh orders (with real line amounts), then deliver them
        for _ in range(6):
            txns.new_order()
        deliveries_before = sum(row["c_delivery_cnt"]
                                for _, row in db.scan("customer"))
        balances_before = sum(row["c_balance"]
                              for _, row in db.scan("customer"))
        while db.engine.count_rows("new_order"):
            assert txns.delivery().committed
        deliveries_after = sum(row["c_delivery_cnt"]
                               for _, row in db.scan("customer"))
        balances_after = sum(row["c_balance"]
                             for _, row in db.scan("customer"))
        assert deliveries_after > deliveries_before
        assert balances_after > balances_before

    def test_stock_level_runs(self, fresh):
        db, scale, txns = fresh
        outcome = txns.stock_level()
        assert outcome.committed
        assert outcome.detail.startswith("low=")


class TestDriver:
    def test_mix_roughly_standard(self, tmp_path):
        db = make_db(tmp_path)
        scale = TPCCScale.tiny()
        TPCCLoader(db, scale, seed=4).load()
        driver = TPCCDriver(db, scale, seed=5)
        result = driver.run(200)
        assert result.transactions == 200
        assert result.committed + result.rolled_back == 200
        share = result.by_kind.get("new_order", 0) / 200
        assert 0.35 < share < 0.55
        assert result.by_kind.get("payment", 0) > 50

    def test_full_compliant_run_audits_clean(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ,
                     buffer_pages=48)
        scale = TPCCScale.tiny()
        TPCCLoader(db, scale, seed=6).load()
        from repro import seconds
        driver = TPCCDriver(db, scale, seed=6,
                            simulated_txn_gap=seconds(3))
        result = driver.run(150)
        assert result.maintenance_runs > 0  # regret intervals elapsed
        report = Auditor(db).audit()
        assert report.ok, report.summary()
        assert report.final_tuples > 500

    def test_log_consistent_run_audits_clean(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT,
                     buffer_pages=48)
        scale = TPCCScale.tiny()
        TPCCLoader(db, scale, seed=8).load()
        TPCCDriver(db, scale, seed=8).run(150)
        report = Auditor(db).audit()
        assert report.ok, report.summary()
