"""Tests for the schema payload codec and order-preserving key codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import (Field, FieldType, Schema, decode_key,
                                encode_key)
from repro.common.errors import CodecError


def make_schema():
    return Schema("account", [
        Field("acct_id", FieldType.INT),
        Field("owner", FieldType.STR),
        Field("balance", FieldType.FLOAT),
        Field("blob", FieldType.BYTES),
    ], key_fields=["acct_id"])


class TestSchema:
    def test_payload_round_trip(self):
        schema = make_schema()
        row = {"acct_id": 42, "owner": "alice", "balance": 10.5,
               "blob": b"\x00\x01"}
        assert schema.decode_payload(schema.encode_payload(row)) == row

    def test_unicode_round_trip(self):
        schema = make_schema()
        row = {"acct_id": 1, "owner": "ålice ☃", "balance": 0.0, "blob": b""}
        assert schema.decode_payload(schema.encode_payload(row)) == row

    def test_missing_field_rejected(self):
        schema = make_schema()
        with pytest.raises(CodecError):
            schema.encode_payload({"acct_id": 1})

    def test_wrong_type_rejected(self):
        schema = make_schema()
        row = {"acct_id": "not an int", "owner": "x", "balance": 1.0,
               "blob": b""}
        with pytest.raises(CodecError):
            schema.encode_payload(row)

    def test_bool_is_not_an_int(self):
        schema = make_schema()
        row = {"acct_id": True, "owner": "x", "balance": 1.0, "blob": b""}
        with pytest.raises(CodecError):
            schema.encode_payload(row)

    def test_trailing_bytes_rejected(self):
        schema = make_schema()
        row = {"acct_id": 1, "owner": "x", "balance": 1.0, "blob": b""}
        raw = schema.encode_payload(row)
        with pytest.raises(CodecError):
            schema.decode_payload(raw + b"\x00")

    def test_truncated_payload_rejected(self):
        schema = make_schema()
        row = {"acct_id": 1, "owner": "xyz", "balance": 1.0, "blob": b"abc"}
        raw = schema.encode_payload(row)
        with pytest.raises(CodecError):
            schema.decode_payload(raw[:-1])

    def test_key_of_and_encode(self):
        schema = make_schema()
        row = {"acct_id": 7, "owner": "x", "balance": 1.0, "blob": b""}
        assert schema.key_of(row) == (7,)
        assert schema.encode_key_from_row(row) == encode_key((7,))

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(CodecError):
            Schema("bad", [Field("a", FieldType.INT),
                           Field("a", FieldType.INT)], ["a"])

    def test_key_field_must_exist(self):
        with pytest.raises(CodecError):
            Schema("bad", [Field("a", FieldType.INT)], ["b"])

    def test_empty_key_rejected(self):
        with pytest.raises(CodecError):
            Schema("bad", [Field("a", FieldType.INT)], [])


row_strategy = st.fixed_dictionaries({
    "acct_id": st.integers(min_value=-2**63, max_value=2**63 - 1),
    "owner": st.text(max_size=20),
    "balance": st.floats(allow_nan=False, allow_infinity=False),
    "blob": st.binary(max_size=16),
})


def make_fixed_schema():
    """All fixed-width columns: the decode_batch single-unpack lane."""
    return Schema("ledger", [
        Field("entry_id", FieldType.INT),
        Field("amount", FieldType.FLOAT),
        Field("epoch", FieldType.INT),
    ], key_fields=["entry_id"])


class TestBatchCodec:
    @given(st.lists(row_strategy, max_size=20))
    def test_encode_batch_matches_per_row(self, rows):
        schema = make_schema()
        assert schema.encode_batch(rows) == \
            [schema.encode_payload(row) for row in rows]

    @given(st.lists(row_strategy, max_size=20))
    def test_decode_batch_round_trips(self, rows):
        schema = make_schema()
        payloads = schema.encode_batch(rows)
        assert schema.decode_batch(payloads) == rows
        assert schema.decode_batch(payloads) == \
            [schema.decode_payload(p) for p in payloads]

    @given(st.lists(st.fixed_dictionaries({
        "entry_id": st.integers(min_value=-2**63, max_value=2**63 - 1),
        "amount": st.floats(allow_nan=False, allow_infinity=False),
        "epoch": st.integers(min_value=-2**63, max_value=2**63 - 1),
    }), max_size=20))
    def test_all_fixed_fast_lane_round_trips(self, rows):
        schema = make_fixed_schema()
        payloads = schema.encode_batch(rows)
        assert schema.decode_batch(payloads) == rows
        assert schema.decode_batch(payloads) == \
            [schema.decode_payload(p) for p in payloads]

    def test_batch_trailing_bytes_rejected(self):
        for schema, row in (
                (make_schema(), {"acct_id": 1, "owner": "x",
                                 "balance": 1.0, "blob": b""}),
                (make_fixed_schema(), {"entry_id": 1, "amount": 1.0,
                                       "epoch": 2})):
            raw = schema.encode_payload(row)
            with pytest.raises(CodecError):
                schema.decode_batch([raw, raw + b"\x00"])

    def test_batch_truncated_rejected(self):
        for schema, row in (
                (make_schema(), {"acct_id": 1, "owner": "xyz",
                                 "balance": 1.0, "blob": b"abc"}),
                (make_fixed_schema(), {"entry_id": 1, "amount": 1.0,
                                       "epoch": 2})):
            raw = schema.encode_payload(row)
            with pytest.raises(CodecError):
                schema.decode_batch([raw, raw[:-1]])

    def test_encode_batch_missing_field_rejected(self):
        schema = make_schema()
        good = {"acct_id": 1, "owner": "x", "balance": 1.0, "blob": b""}
        with pytest.raises(CodecError):
            schema.encode_batch([good, {"acct_id": 2}])

    def test_encode_batch_bool_rejected_for_int(self):
        schema = make_fixed_schema()
        with pytest.raises(CodecError):
            schema.encode_batch([{"entry_id": True, "amount": 1.0,
                                  "epoch": 0}])

    def test_empty_batch(self):
        schema = make_schema()
        assert schema.encode_batch([]) == []
        assert schema.decode_batch([]) == []


class TestKeyCodec:
    def test_round_trip_mixed(self):
        key = (5, "hello", b"\x00world", -3, 2.5)
        assert decode_key(encode_key(key)) == key

    def test_int_order(self):
        values = [-(2**63), -1000, -1, 0, 1, 7, 2**63 - 1]
        encoded = [encode_key((v,)) for v in values]
        assert encoded == sorted(encoded)

    def test_string_prefix_order(self):
        values = ["", "a", "aa", "ab", "b"]
        encoded = [encode_key((v,)) for v in values]
        assert encoded == sorted(encoded)

    def test_string_with_embedded_zero_bytes(self):
        key = (b"a\x00b\x00\x00c",)
        assert decode_key(encode_key(key)) == key

    def test_composite_order(self):
        values = [(1, "a"), (1, "b"), (2, "a"), (2, "a", 0), (2, "b")]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_float_order(self):
        values = [-100.0, -0.5, 0.0, 0.25, 1.0, 1e10]
        encoded = [encode_key((v,)) for v in values]
        assert encoded == sorted(encoded)

    def test_bool_rejected(self):
        with pytest.raises(CodecError):
            encode_key((True,))

    def test_unsupported_type_rejected(self):
        with pytest.raises(CodecError):
            encode_key(([1, 2],))

    def test_truncated_key_rejected(self):
        raw = encode_key((12345,))
        with pytest.raises(CodecError):
            decode_key(raw[:-2])

    @given(st.lists(st.integers(min_value=-2**63, max_value=2**63 - 1),
                    min_size=1, max_size=4))
    def test_int_tuples_round_trip(self, values):
        key = tuple(values)
        assert decode_key(encode_key(key)) == key

    @settings(max_examples=200)
    @given(st.tuples(st.integers(min_value=-2**40, max_value=2**40),
                     st.text(max_size=20)),
           st.tuples(st.integers(min_value=-2**40, max_value=2**40),
                     st.text(max_size=20)))
    def test_encoding_preserves_order(self, a, b):
        ea, eb = encode_key(a), encode_key(b)
        if a < b:
            assert ea < eb
        elif a > b:
            assert ea > eb
        else:
            assert ea == eb

    @given(st.lists(st.binary(max_size=16), min_size=2, max_size=2))
    def test_bytes_order_preserved(self, pair):
        a, b = pair
        ea, eb = encode_key((a,)), encode_key((b,))
        assert (ea < eb) == (a < b)
        assert (ea == eb) == (a == b)
