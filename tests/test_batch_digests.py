"""Property tests for the batched digest path.

The fast lanes added for the hash-page-on-read hot path — ``add_many``
batched folds, the zero-copy page extent walk, and the ``DigestPool`` —
must be *byte-identical* to the per-item reference paths at every
setting: pooled or inline, stamped or lazily timestamped, empty or
full.  These tests pin that invariant down, because a single divergent
digest turns into a false audit failure.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (ComplianceConfig, ComplianceMode, CompliantDB, DBConfig,
                   EngineConfig, Field, FieldType, Schema, SimulatedClock,
                   minutes)
from repro.common.errors import PageFormatError
from repro.core import Auditor
from repro.crypto import (GIL_RELEASE_MIN, HASH_STATS, AddHash, DigestPool,
                          SeqHash, h, seq_hash_page)
from repro.crypto.batch import page_items, seq_hash_page_resumed
from repro.obs import MetricsRegistry
from repro.storage.page import INTERNAL, LEAF, Page, leaf_tuple_extents
from repro.storage.record import TupleVersion

# -- strategies ---------------------------------------------------------------

buffers = st.binary(max_size=48)

tuple_versions = st.builds(
    TupleVersion,
    relation_id=st.integers(min_value=0, max_value=500),
    key=st.binary(min_size=1, max_size=8),
    start=st.integers(min_value=1, max_value=2**40),
    stamped=st.booleans(),
    eol=st.booleans(),
    seq=st.integers(min_value=0, max_value=10_000),
    payload=st.binary(max_size=24),
)


def make_leaf(entries, pgno=1, page_size=4096, hist_refs=()):
    page = Page(pgno, LEAF)
    page.entries = list(entries)
    page.hist_refs = list(hist_refs)
    return page.to_bytes(page_size)


def reference_page_digest(raw, resolve=None):
    """The slow per-tuple path seq_hash_page must match byte-for-byte."""
    page = Page.from_bytes(raw)
    items = []
    unresolved = set()
    for version in sorted(page.entries, key=lambda e: e.seq):
        if not version.stamped:
            commit_time = resolve(version.start) if resolve else None
            if commit_time is None:
                unresolved.add(version.start)
            else:
                version = version.stamp(commit_time)
        items.append(version.to_bytes())
    return SeqHash(items).digest(), frozenset(unresolved)


# -- batched folds ------------------------------------------------------------

class TestAddMany:
    @given(st.lists(buffers, max_size=30))
    def test_seq_hash_add_many_matches_loop(self, items):
        loop = SeqHash()
        for item in items:
            loop.add(item)
        assert SeqHash().add_many(items).digest() == loop.digest()

    @given(st.lists(buffers, max_size=30))
    def test_add_hash_add_many_matches_loop(self, items):
        loop = AddHash()
        for item in items:
            loop.add(item)
        batched = AddHash().add_many(items)
        assert batched == loop
        assert batched.count == len(items)

    def test_add_many_accepts_memoryviews(self):
        items = [b"alpha", b"beta"]
        views = [memoryview(item) for item in items]
        assert SeqHash().add_many(views).digest() == \
            SeqHash(items).digest()
        assert AddHash().add_many(views) == AddHash(items)

    def test_add_many_chains(self):
        assert SeqHash().add_many([b"a"]).add_many([b"b"]).digest() == \
            SeqHash([b"a", b"b"]).digest()


# -- zero-copy page walk ------------------------------------------------------

class TestSeqHashPage:
    def test_empty_page(self):
        digest, unresolved = seq_hash_page(make_leaf([]))
        assert digest == SeqHash().digest()
        assert unresolved == frozenset()

    @settings(max_examples=50)
    @given(st.lists(tuple_versions, max_size=8))
    def test_matches_per_tuple_reference(self, entries):
        raw = make_leaf(entries)
        assert seq_hash_page(raw) == reference_page_digest(raw)

    @settings(max_examples=50)
    @given(st.lists(tuple_versions, max_size=8),
           st.dictionaries(st.integers(min_value=1, max_value=2**40),
                           st.integers(min_value=1, max_value=2**40),
                           max_size=8))
    def test_commit_time_substitution_matches(self, entries, commit_map):
        # stamp some of the unstamped tuples through the resolver, leave
        # the rest unresolved — both lanes of the substitution logic
        raw = make_leaf(entries)
        assert seq_hash_page(raw, commit_map.get) == \
            reference_page_digest(raw, commit_map.get)

    def test_unresolved_reports_unknown_txns_only(self):
        entries = [
            TupleVersion(1, b"a", 100, True, False, 1, b"x"),
            TupleVersion(1, b"b", 7, False, False, 2, b"y"),
            TupleVersion(1, b"c", 8, False, False, 3, b"z"),
        ]
        raw = make_leaf(entries)
        _, unresolved = seq_hash_page(raw, {7: 555}.get)
        assert unresolved == frozenset({8})

    def test_hist_refs_are_skipped_not_hashed(self):
        # a time-split leaf carries WORM refs before its tuples; the
        # extent walk must skip them and hash the same tuple bytes
        entries = [TupleVersion(1, b"a", 100, True, False, 1, b"x")]
        plain = make_leaf(entries)
        split = make_leaf(entries, hist_refs=["rel1-p1-0.worm"])
        assert seq_hash_page(plain) == seq_hash_page(split)

    def test_extents_are_canonical_bytes(self):
        entries = [TupleVersion(3, b"k1", 10, True, False, 2, b"pay"),
                   TupleVersion(3, b"k2", 11, False, True, 1, b"")]
        raw = make_leaf(entries)
        extents = leaf_tuple_extents(raw)
        assert [bytes(e.raw) for e in extents] == \
            [e.to_bytes() for e in entries]
        assert all(isinstance(e.raw, memoryview) for e in extents)

    def test_non_leaf_rejected(self):
        page = Page(2, INTERNAL)
        page.children = [1]
        with pytest.raises(PageFormatError):
            seq_hash_page(page.to_bytes(1024))

    def test_truncated_page_rejected(self):
        raw = make_leaf([TupleVersion(1, b"a", 1, True, False, 1, b"x")])
        with pytest.raises(PageFormatError):
            seq_hash_page(raw[:40])


def _with_seqs(entries, start_seq):
    """Copies of ``entries`` renumbered with consecutive order numbers."""
    return [TupleVersion(v.relation_id, v.key, v.start, v.stamped,
                         v.eol, start_seq + i, v.payload)
            for i, v in enumerate(entries)]


class TestSeqHashPageResumed:
    """The chain-resume fast lane must equal the full fold, always."""

    @settings(max_examples=50)
    @given(st.lists(tuple_versions, max_size=6),
           st.lists(tuple_versions, min_size=1, max_size=6))
    def test_grown_page_resumes_to_identical_digest(self, base, extra):
        # seqs only ever grow, so a grown page is old items + suffix
        old = _with_seqs(base, 0)
        grown = old + _with_seqs(extra, len(old))
        prev_digest, _, prev_items = seq_hash_page_resumed(
            make_leaf(old), None, None, None)
        raw = make_leaf(grown)
        digest, unresolved, items = seq_hash_page_resumed(
            raw, None, prev_items, prev_digest)
        assert (digest, unresolved) == seq_hash_page(raw)
        assert items == page_items(raw)[0]

    def test_unchanged_page_returns_previous_digest(self):
        raw = make_leaf(_with_seqs(
            [TupleVersion(1, b"a", 9, True, False, 0, b"x"),
             TupleVersion(1, b"b", 9, True, False, 0, b"y")], 0))
        prev_digest, _, prev_items = seq_hash_page_resumed(
            raw, None, None, None)
        digest, _, _ = seq_hash_page_resumed(
            raw, None, prev_items, prev_digest)
        assert digest == prev_digest

    @settings(max_examples=50)
    @given(st.lists(tuple_versions, min_size=1, max_size=6),
           st.binary(min_size=1, max_size=8))
    def test_mutated_prefix_falls_back_to_full_fold(self, base, tweak):
        old = _with_seqs(base, 0)
        prev_digest, _, prev_items = seq_hash_page_resumed(
            make_leaf(old), None, None, None)
        head = old[0]
        mutated = [TupleVersion(head.relation_id, head.key + tweak,
                                head.start, head.stamped, head.eol,
                                head.seq, head.payload)] + old[1:]
        raw = make_leaf(mutated)
        digest, unresolved, _ = seq_hash_page_resumed(
            raw, None, prev_items, prev_digest)
        assert (digest, unresolved) == seq_hash_page(raw)

    def test_shrunk_page_falls_back_to_full_fold(self):
        old = _with_seqs(
            [TupleVersion(1, b"a", 9, True, False, 0, b"x"),
             TupleVersion(1, b"b", 9, True, False, 0, b"y")], 0)
        prev_digest, _, prev_items = seq_hash_page_resumed(
            make_leaf(old), None, None, None)
        raw = make_leaf(old[:1])
        digest, unresolved, _ = seq_hash_page_resumed(
            raw, None, prev_items, prev_digest)
        assert (digest, unresolved) == seq_hash_page(raw)

    def test_resolved_substitution_falls_back_to_full_fold(self):
        # the last fold hashed txn 7's tuple unstamped; once the commit
        # map learns its time the freshly substituted prefix no longer
        # byte-matches, so the resume must not reuse the stale chain
        old = _with_seqs(
            [TupleVersion(1, b"a", 7, False, False, 0, b"x"),
             TupleVersion(1, b"b", 9, True, False, 0, b"y")], 0)
        raw = make_leaf(old)
        prev_digest, prev_unresolved, prev_items = seq_hash_page_resumed(
            raw, None, None, None)
        assert prev_unresolved == frozenset({7})
        grown = old + _with_seqs(
            [TupleVersion(1, b"c", 9, True, False, 0, b"z")], len(old))
        grown_raw = make_leaf(grown)
        resolve = {7: 555}.get
        digest, unresolved, _ = seq_hash_page_resumed(
            grown_raw, resolve, prev_items, prev_digest)
        assert (digest, unresolved) == seq_hash_page(grown_raw, resolve)
        assert (digest, unresolved) == \
            reference_page_digest(grown_raw, resolve)
        assert unresolved == frozenset()

    def test_resume_skips_already_chained_work(self):
        # the point of the lane: folding a grown page re-hashes only the
        # suffix, observable as fewer sha512 compressions
        old = _with_seqs(
            [TupleVersion(1, bytes([i]), 9, True, False, 0, b"p" * 16)
             for i in range(64)], 0)
        prev_digest, _, prev_items = seq_hash_page_resumed(
            make_leaf(old), None, None, None)
        grown_raw = make_leaf(old + _with_seqs(
            [TupleVersion(1, b"new", 9, True, False, 0, b"q")], len(old)))
        before = HASH_STATS.snapshot()["sha512_calls"]
        seq_hash_page_resumed(grown_raw, None, prev_items, prev_digest)
        resumed_calls = HASH_STATS.snapshot()["sha512_calls"] - before
        before = HASH_STATS.snapshot()["sha512_calls"]
        seq_hash_page(grown_raw)
        full_calls = HASH_STATS.snapshot()["sha512_calls"] - before
        assert resumed_calls < full_calls


# -- the digest pool ----------------------------------------------------------

class TestDigestPool:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            DigestPool(-1)

    def test_close_is_idempotent(self):
        pool = DigestPool(2)
        pool.close()
        pool.close()

    def test_h_matches_module_h(self):
        with DigestPool(2) as pool:
            assert pool.h(b"abc") == h(b"abc")

    def test_h_many_pooled_matches_inline(self):
        # mix of buffers above and below the GIL-release threshold
        bufs = [b"small", b"x" * GIL_RELEASE_MIN, b"",
                b"y" * (GIL_RELEASE_MIN * 2), b"mid" * 100]
        expected = [h(b) for b in bufs]
        with DigestPool(2) as pool:
            assert pool.h_many(bufs) == expected
        assert DigestPool(0).h_many(bufs) == expected

    def test_seq_hash_pages_pooled_matches_inline(self):
        pages = [make_leaf([TupleVersion(1, bytes([i]), 10 + i, True,
                                         False, i, b"p" * i)], pgno=i)
                 for i in range(1, 6)]
        pages.append(b"\x00" * 512)  # malformed: must come back as None
        inline = DigestPool(0).seq_hash_pages(pages)
        with DigestPool(3) as pool:
            assert pool.seq_hash_pages(pages) == inline
        assert inline[-1] is None
        assert inline[:-1] == [seq_hash_page(p) for p in pages[:-1]]

    @settings(max_examples=20)
    @given(st.lists(buffers, min_size=64, max_size=200))
    def test_add_hash_many_pooled_matches_inline(self, items):
        with DigestPool(3) as pool:
            assert pool.add_hash_many(items) == AddHash(items)

    def test_add_hash_many_accepts_iterables(self):
        items = {i: bytes([i]) * 3 for i in range(100)}
        with DigestPool(2) as pool:
            assert pool.add_hash_many(items.values()) == \
                AddHash(items.values())  # repro-lint: disable=replay-determinism -- ADD-HASH is commutative; the test asserts pool == direct on the same view

    def test_counters_inline_only_without_workers(self):
        registry = MetricsRegistry()
        pool = DigestPool(0, registry=registry)
        pool.h(b"a")
        pool.h_many([b"x" * GIL_RELEASE_MIN] * 3)
        pool.add_hash_many([b"i"] * 100)
        counters = registry.snapshot()["counters"]
        assert counters["digest_pool_submitted_total"] == 0
        assert counters["digest_pool_completed_total"] == 0
        assert counters["digest_pool_inline_total"] == 104

    def test_counters_move_when_pooled(self):
        registry = MetricsRegistry()
        with DigestPool(2, registry=registry) as pool:
            pool.h_many([b"x" * GIL_RELEASE_MIN, b"tiny"])
            pool.add_hash_many([b"i"] * 100)
        counters = registry.snapshot()["counters"]
        # one large buffer + two ADD-HASH chunks went to workers
        assert counters["digest_pool_submitted_total"] == 3
        assert counters["digest_pool_completed_total"] == 3
        assert counters["digest_pool_inline_total"] == 1


# -- hash accounting under threads --------------------------------------------

class TestHashStatsThreadSafety:
    def test_concurrent_hashing_is_counted_and_crash_free(self):
        before = HASH_STATS.snapshot()["sha512_calls"]
        per_thread = 200

        def worker(base):
            for i in range(per_thread):
                h(b"%d:%d" % (base, i))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        after = HASH_STATS.snapshot()["sha512_calls"]
        assert after - before >= 4 * per_thread

    def test_h_accepts_memoryview_and_large_buffers(self):
        import hashlib
        assert h(memoryview(b"abc")) == hashlib.sha512(b"abc").digest()
        big = b"z" * 4096
        assert h(memoryview(big)) == hashlib.sha512(big).digest()


# -- end-to-end: prefetch batches and pooled engines --------------------------

ROWS = Schema("rows", [
    Field("k", FieldType.INT),
    Field("v", FieldType.STR),
], key_fields=["k"])


def make_db(path, hash_workers=0):
    config = DBConfig(engine=EngineConfig(page_size=1024, buffer_pages=64,
                                          hash_workers=hash_workers),
                      compliance=ComplianceConfig(
                          mode=ComplianceMode.HASH_ON_READ,
                          regret_interval=minutes(5)))
    db = CompliantDB.create(path, config, clock=SimulatedClock())
    db.create_relation(ROWS)
    return db


class TestEngineIntegration:
    def test_prefetch_warms_cache_and_hashes_once(self, tmp_path):
        db = make_db(tmp_path / "db")
        for k in range(40):
            with db.transaction() as txn:
                db.insert(txn, "rows", {"k": k, "v": "pad" * 4})
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        loaded = db.engine.buffer.prefetch(
            range(1, db.engine.pager.page_count))
        assert loaded > 0
        hashed = db.clog.record_counts().get("READ_HASH", 0)
        assert hashed > 0
        for k in range(40):            # warm: no further pread, no records
            db.get("rows", (k,))
        assert db.clog.record_counts().get("READ_HASH", 0) == hashed
        db.close()

    def test_pooled_engine_produces_identical_audit(self, tmp_path):
        outcomes = {}
        for tag, workers in (("inline", 0), ("pooled", 2)):
            db = make_db(tmp_path / tag, hash_workers=workers)
            for k in range(40):
                with db.transaction() as txn:
                    db.insert(txn, "rows", {"k": k, "v": "pad" * 4})
            db.engine.run_stamper()
            db.engine.checkpoint()
            db.engine.buffer.drop_all()
            db.engine.buffer.prefetch(
                range(1, db.engine.pager.page_count))
            for k in range(40):
                db.get("rows", (k,))
            report = Auditor(db).audit(rotate=False)
            assert report.ok, report.summary()
            outcomes[tag] = (report.comparable(), report.expected_digest,
                             report.final_digest)
            db.close()
        assert outcomes["inline"] == outcomes["pooled"]

    def test_insert_many_matches_per_row_inserts(self, tmp_path):
        loop_db = make_db(tmp_path / "loop")
        batch_db = make_db(tmp_path / "batch")
        rows = [{"k": k, "v": f"v{k}"} for k in range(25)]
        with loop_db.transaction() as txn:
            for row in rows:
                loop_db.insert(txn, "rows", row)
        with batch_db.transaction() as txn:
            batch_db.insert_many(txn, "rows", rows)
        for db in (loop_db, batch_db):
            db.engine.run_stamper()
            db.engine.checkpoint()
        loop_pages = loop_db.engine.pager.page_count
        assert batch_db.engine.pager.page_count == loop_pages
        for k in range(25):
            assert batch_db.get("rows", (k,)) == loop_db.get("rows", (k,))
        loop_db.close()
        batch_db.close()

    def test_marker_without_hash_workers_still_opens(self, tmp_path):
        # forward compatibility: markers written before the knob existed
        import json
        db = make_db(tmp_path / "db", hash_workers=2)
        db.close()
        marker_path = tmp_path / "db" / "mode.json"
        marker = json.loads(marker_path.read_text())
        del marker["engine"]["hash_workers"]
        marker_path.write_text(json.dumps(marker))
        reopened = CompliantDB.open(tmp_path / "db", SimulatedClock())
        assert reopened.config.engine.hash_workers == 0
        assert reopened.get("rows", (0,)) is None
        reopened.close()
