"""Property-based tests on core structures beyond the B+-tree model test:
WAL record codec, TSB partitioning, ADD-HASH completeness algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import encode_key
from repro.crypto import AddHash
from repro.storage.record import TupleVersion
from repro.wal import WalRecord, WalRecordType


wal_records = st.builds(
    WalRecord,
    rtype=st.sampled_from(list(WalRecordType)),
    txn_id=st.integers(min_value=0, max_value=2**62),
    commit_time=st.integers(min_value=0, max_value=2**62),
    tuple_bytes=st.binary(max_size=100),
    relation_id=st.integers(min_value=0, max_value=2**16 - 1),
    key=st.binary(max_size=40),
    start=st.integers(min_value=-2**62, max_value=2**62),
    pgno=st.integers(min_value=-1, max_value=2**31 - 1),
    hist_ref=st.text(alphabet="abc/123-", max_size=30),
    split_time=st.integers(min_value=0, max_value=2**62),
)


class TestWalCodecProperties:
    @given(wal_records)
    def test_round_trip(self, record):
        parsed, end = WalRecord.from_bytes(record.to_bytes(), 0)
        assert parsed == record
        assert end == len(record.to_bytes())

    @given(st.lists(wal_records, min_size=1, max_size=8))
    def test_concatenated_stream(self, records):
        for i, record in enumerate(records):
            record.lsn = i + 1
        blob = b"".join(r.to_bytes() for r in records)
        offset, out = 0, []
        while offset < len(blob):
            record, offset = WalRecord.from_bytes(blob, offset)
            out.append(record)
        assert out == records


def make_group(key, starts_and_stamped):
    return [TupleVersion(relation_id=1, key=encode_key((key,)),
                         start=start, stamped=stamped, eol=False, seq=0,
                         payload=b"p")
            for start, stamped in starts_and_stamped]


class TestTSBPartitionProperties:
    @settings(max_examples=100)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.booleans()),
        min_size=1, max_size=30))
    def test_partition_invariants(self, raw):
        from repro.btree.tsb import TSBTree
        # build sorted groups: per key, ascending distinct starts
        by_key = {}
        for key, stamped in raw:
            start = len(by_key.get(key, [])) * 10 + 10
            by_key.setdefault(key, []).append((start, stamped))
        entries = []
        for key in sorted(by_key):
            entries.extend(make_group(key, by_key[key]))

        hist, live = TSBTree._partition(None, entries)
        # nothing lost, nothing duplicated
        assert sorted([h.sort_key() for h in hist] +
                      [l.sort_key() for l in live]) == \
            sorted(e.sort_key() for e in entries)
        assert len(hist) + len(live) == len(entries)
        # unstamped entries never migrate
        assert all(h.stamped for h in hist)
        # for every key, the newest stamped version stays live
        for key, versions in by_key.items():
            stamped_starts = [s for s, stamped in versions if stamped]
            if not stamped_starts:
                continue
            newest = max(stamped_starts)
            key_bytes = encode_key((key,))
            assert any(l.key == key_bytes and l.start == newest
                       for l in live)


class TestCompletenessAlgebra:
    @settings(max_examples=60)
    @given(st.lists(st.binary(min_size=1, max_size=24), max_size=15),
           st.lists(st.binary(min_size=1, max_size=24), max_size=15),
           st.lists(st.binary(min_size=1, max_size=24), max_size=6))
    def test_union_minus_shredded(self, snapshot, log, shredded_pool):
        # shred only items actually present, at most once each
        combined = list(snapshot) + list(log)
        shredded = []
        pool = list(combined)
        for item in shredded_pool:
            if item in pool:
                pool.remove(item)
                shredded.append(item)
        expected = AddHash(snapshot).union(AddHash(log))
        for item in shredded:
            expected.remove(item)
        final = list(combined)
        for item in shredded:
            final.remove(item)
        assert expected == AddHash(final)

    @settings(max_examples=60)
    @given(st.lists(st.binary(min_size=1, max_size=24), min_size=1,
                    max_size=20),
           st.binary(min_size=1, max_size=24))
    def test_any_single_alteration_detected(self, items, replacement):
        original = AddHash(items)
        tampered = list(items)
        if tampered[0] == replacement:
            replacement = replacement + b"x"
        tampered[0] = replacement
        assert AddHash(tampered) != original
