"""Tests for the transaction-time engine: DML, temporal reads, stamping,
catalog, crash recovery."""

import pytest

from repro.common.clock import SimulatedClock, years
from repro.common.codec import Field, FieldType, Schema, encode_key
from repro.common.config import EngineConfig
from repro.common.errors import (ConfigError, DuplicateKeyError,
                                 KeyNotFoundError, RelationNotFoundError,
                                 TransactionAborted, TransactionError,
                                 TransactionStateError)
from repro.temporal import Engine
from repro.worm import WormServer

ACCOUNTS = Schema("accounts", [
    Field("acct_id", FieldType.INT),
    Field("owner", FieldType.STR),
    Field("balance", FieldType.INT),
], key_fields=["acct_id"])


@pytest.fixture
def engine(tmp_path, clock):
    eng = Engine.create(tmp_path / "db", clock,
                        config=EngineConfig(page_size=1024,
                                            buffer_pages=32))
    eng.create_relation(ACCOUNTS)
    eng.run_stamper()  # clear the catalog tuple's pending stamp
    return eng


def put(engine, acct_id, balance, owner="alice", op="insert"):
    with engine.transaction() as txn:
        row = {"acct_id": acct_id, "owner": owner, "balance": balance}
        getattr(engine, op)(txn, "accounts", row)


class TestDML:
    def test_insert_and_get(self, engine):
        put(engine, 1, 100)
        row = engine.get("accounts", (1,))
        assert row == {"acct_id": 1, "owner": "alice", "balance": 100}

    def test_get_missing_returns_none(self, engine):
        assert engine.get("accounts", (404,)) is None

    def test_duplicate_insert_rejected(self, engine):
        put(engine, 1, 100)
        with pytest.raises(DuplicateKeyError):
            put(engine, 1, 200)

    def test_update_creates_new_version(self, engine):
        put(engine, 1, 100)
        put(engine, 1, 150, op="update")
        assert engine.get("accounts", (1,))["balance"] == 150
        engine.run_stamper()
        history = engine.versions("accounts", (1,))
        assert [v.row["balance"] for v in history] == [100, 150]
        assert history[0].start < history[1].start

    def test_update_requires_existing(self, engine):
        with pytest.raises(KeyNotFoundError):
            put(engine, 1, 100, op="update")

    def test_delete_writes_end_of_life(self, engine):
        put(engine, 1, 100)
        with engine.transaction() as txn:
            engine.delete(txn, "accounts", (1,))
        assert engine.get("accounts", (1,)) is None
        history = engine.versions("accounts", (1,))
        assert [v.eol for v in history] == [False, True]

    def test_delete_requires_existing(self, engine):
        with pytest.raises(KeyNotFoundError):
            with engine.transaction() as txn:
                engine.delete(txn, "accounts", (1,))

    def test_reinsert_after_delete(self, engine):
        put(engine, 1, 100)
        with engine.transaction() as txn:
            engine.delete(txn, "accounts", (1,))
        put(engine, 1, 300)
        assert engine.get("accounts", (1,))["balance"] == 300
        assert len(engine.versions("accounts", (1,))) == 3

    def test_double_write_same_txn_rejected(self, engine):
        with pytest.raises(TransactionError):
            with engine.transaction() as txn:
                engine.insert(txn, "accounts",
                              {"acct_id": 1, "owner": "a", "balance": 1})
                engine.update(txn, "accounts",
                              {"acct_id": 1, "owner": "a", "balance": 2})

    def test_unknown_relation(self, engine):
        with pytest.raises(RelationNotFoundError):
            engine.get("nope", (1,))

    def test_scan_returns_current_rows(self, engine):
        for acct in range(10):
            put(engine, acct, acct * 10)
        put(engine, 3, 999, op="update")
        with engine.transaction() as txn:
            engine.delete(txn, "accounts", (7,))
        rows = engine.scan("accounts")
        assert len(rows) == 9
        by_key = {k[0]: row for k, row in rows}
        assert by_key[3]["balance"] == 999
        assert 7 not in by_key

    def test_scan_range(self, engine):
        for acct in range(10):
            put(engine, acct, acct)
        rows = engine.scan("accounts", lo=(3,), hi=(6,))
        assert [k[0] for k, _ in rows] == [3, 4, 5]

    def test_count_rows(self, engine):
        for acct in range(5):
            put(engine, acct, 0)
        assert engine.count_rows("accounts") == 5


class TestTransactions:
    def test_abort_rolls_back(self, engine):
        txn = engine.begin()
        engine.insert(txn, "accounts",
                      {"acct_id": 1, "owner": "a", "balance": 1})
        engine.abort(txn)
        assert engine.get("accounts", (1,)) is None
        assert engine.versions("accounts", (1,)) == []

    def test_context_manager_aborts_on_exception(self, engine):
        with pytest.raises(RuntimeError):
            with engine.transaction() as txn:
                engine.insert(txn, "accounts",
                              {"acct_id": 1, "owner": "a", "balance": 1})
                raise RuntimeError("boom")
        assert engine.get("accounts", (1,)) is None

    def test_own_writes_visible_before_commit(self, engine):
        with engine.transaction() as txn:
            engine.insert(txn, "accounts",
                          {"acct_id": 1, "owner": "a", "balance": 5})
            assert engine.get("accounts", (1,), txn=txn)["balance"] == 5

    def test_uncommitted_invisible_to_others(self, engine):
        txn = engine.begin()
        engine.insert(txn, "accounts",
                      {"acct_id": 1, "owner": "a", "balance": 5})
        assert engine.get("accounts", (1,)) is None
        engine.commit(txn)
        assert engine.get("accounts", (1,))["balance"] == 5

    def test_write_write_conflict_detected(self, engine):
        put(engine, 1, 100)
        early = engine.begin()          # begins now…
        put(engine, 1, 200, op="update")  # …another txn commits the key
        with pytest.raises(TransactionAborted):
            engine.update(early, "accounts",
                          {"acct_id": 1, "owner": "a", "balance": 300})
        engine.abort(early)
        assert engine.get("accounts", (1,))["balance"] == 200

    def test_lock_conflict_between_open_txns(self, engine):
        from repro.common.errors import LockConflictError
        first = engine.begin()
        engine.insert(first, "accounts",
                      {"acct_id": 1, "owner": "a", "balance": 1})
        second = engine.begin()
        with pytest.raises(LockConflictError):
            engine.insert(second, "accounts",
                          {"acct_id": 1, "owner": "b", "balance": 2})
        engine.abort(first)
        engine.insert(second, "accounts",
                      {"acct_id": 1, "owner": "b", "balance": 2})
        engine.commit(second)
        assert engine.get("accounts", (1,))["owner"] == "b"


class TestLazyTimestamping:
    def test_tuples_start_unstamped(self, engine):
        put(engine, 1, 100)
        raw = engine.relation("accounts").tree.versions(encode_key((1,)))
        assert not raw[0].stamped

    def test_stamper_applies_commit_times(self, engine):
        put(engine, 1, 100)
        assert engine.pending_stamp_count == 1
        assert engine.run_stamper() == 1
        raw = engine.relation("accounts").tree.versions(encode_key((1,)))
        assert raw[0].stamped
        assert raw[0].start == engine.last_commit_time

    def test_eager_mode_stamps_at_commit(self, tmp_path, clock):
        eng = Engine.create(tmp_path / "db", clock,
                            config=EngineConfig(eager_timestamping=True))
        eng.create_relation(ACCOUNTS)
        put(eng, 1, 100)
        raw = eng.relation("accounts").tree.versions(encode_key((1,)))
        assert raw[0].stamped
        assert eng.pending_stamp_count == 0

    def test_reads_work_before_stamping(self, engine):
        put(engine, 1, 100)
        put(engine, 1, 200, op="update")
        assert engine.get("accounts", (1,))["balance"] == 200
        history = engine.versions("accounts", (1,))
        assert all(v.start is not None for v in history)  # resolved via map


class TestTemporalQueries:
    def test_as_of_reads(self, engine, clock):
        put(engine, 1, 100)
        t1 = clock.now()
        clock.advance(1000)
        put(engine, 1, 200, op="update")
        t2 = clock.now()
        clock.advance(1000)
        with engine.transaction() as txn:
            engine.delete(txn, "accounts", (1,))
        t3 = clock.now()
        assert engine.get("accounts", (1,), at=t1)["balance"] == 100
        assert engine.get("accounts", (1,), at=t2)["balance"] == 200
        assert engine.get("accounts", (1,), at=t3) is None
        assert engine.get("accounts", (1,), at=t1 - 5000) is None

    def test_as_of_scan(self, engine, clock):
        put(engine, 1, 100)
        put(engine, 2, 200)
        t1 = clock.now()
        clock.advance(1000)
        put(engine, 2, 999, op="update")
        put(engine, 3, 300)
        rows = engine.scan("accounts", at=t1)
        assert {k[0]: r["balance"] for k, r in rows} == {1: 100, 2: 200}


class TestCatalog:
    def test_create_relation_transactional(self, engine):
        names = engine.relation_names()
        assert names == ["accounts"]

    def test_duplicate_relation_rejected(self, engine):
        with pytest.raises(DuplicateKeyError):
            engine.create_relation(ACCOUNTS)

    def test_drop_relation_is_end_of_life(self, engine):
        engine.drop_relation("accounts")
        assert engine.relation_names() == []
        with pytest.raises(RelationNotFoundError):
            engine.get("accounts", (1,))

    def test_recreate_after_drop(self, engine):
        put(engine, 1, 100)
        engine.drop_relation("accounts")
        engine.create_relation(ACCOUNTS)
        assert engine.get("accounts", (1,)) is None  # fresh tree

    def test_survives_clean_restart(self, tmp_path, clock):
        eng = Engine.create(tmp_path / "db", clock)
        eng.create_relation(ACCOUNTS)
        put(eng, 1, 100)
        eng.close()
        reopened = Engine.open(tmp_path / "db", clock)
        reopened.recover()
        assert reopened.relation_names() == ["accounts"]
        assert reopened.get("accounts", (1,))["balance"] == 100

    def test_create_requires_fresh_dir(self, tmp_path, clock):
        Engine.create(tmp_path / "db", clock).close()
        with pytest.raises(ConfigError):
            Engine.create(tmp_path / "db", clock)
        with pytest.raises(ConfigError):
            Engine.open(tmp_path / "other", clock)


class TestCrashRecovery:
    def make(self, tmp_path, clock, **kwargs):
        eng = Engine.create(tmp_path / "db", clock,
                            config=EngineConfig(page_size=1024,
                                                buffer_pages=16), **kwargs)
        eng.create_relation(ACCOUNTS)
        eng.checkpoint()
        return eng

    def test_committed_work_survives_crash(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        for acct in range(20):
            put(eng, acct, acct)
        eng.crash()
        report = eng.recover()
        assert report.losers == set()
        for acct in range(20):
            assert eng.get("accounts", (acct,))["balance"] == acct

    def test_loser_transaction_rolled_back(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        put(eng, 1, 100)
        txn = eng.begin()
        eng.insert(txn, "accounts",
                   {"acct_id": 2, "owner": "x", "balance": 2})
        eng.wal.flush()          # its INSERT is durable, its COMMIT is not
        eng.checkpoint()         # steal: uncommitted tuple reaches disk
        eng.crash()
        report = eng.recover()
        assert report.losers == {txn.txn_id}
        assert eng.get("accounts", (2,)) is None
        assert eng.get("accounts", (1,))["balance"] == 100

    def test_unflushed_committed_txn_redone(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        put(eng, 1, 100)  # commit flushes the WAL, pages stay dirty
        eng.crash()
        report = eng.recover()
        assert report.redone >= 1
        assert eng.get("accounts", (1,))["balance"] == 100

    def test_recovery_restamps(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        put(eng, 1, 100)
        eng.crash()
        report = eng.recover()
        assert report.restamped >= 1
        raw = eng.relation("accounts").tree.versions(encode_key((1,)))
        assert raw[0].stamped

    def test_recovery_idempotent(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        put(eng, 1, 100)
        eng.crash()
        eng.recover()
        second = eng.recover()
        assert second.redone == 0 and second.undone == 0
        assert eng.get("accounts", (1,))["balance"] == 100

    def test_aborted_txn_stays_aborted_after_crash(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        txn = eng.begin()
        eng.insert(txn, "accounts",
                   {"acct_id": 1, "owner": "x", "balance": 1})
        eng.abort(txn)
        eng.crash()
        report = eng.recover()
        assert txn.txn_id in report.aborted
        assert eng.get("accounts", (1,)) is None

    def test_relation_created_just_before_crash(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        other = Schema("other", [Field("k", FieldType.INT),
                                 Field("v", FieldType.INT)], ["k"])
        eng.create_relation(other)
        with eng.transaction() as txn:
            eng.insert(txn, "other", {"k": 1, "v": 42})
        eng.crash()
        eng.recover()
        assert eng.get("other", (1,))["v"] == 42

    def test_crash_during_many_txns_consistent(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        for acct in range(50):
            put(eng, acct, acct)
            if acct % 7 == 0:
                eng.checkpoint()
        open_txn = eng.begin()
        eng.insert(open_txn, "accounts",
                   {"acct_id": 999, "owner": "loser", "balance": 0})
        eng.wal.flush()
        eng.crash()
        eng.recover()
        assert eng.count_rows("accounts") == 50
        assert eng.get("accounts", (999,)) is None

    def test_close_with_active_txn_rejected(self, tmp_path, clock):
        eng = self.make(tmp_path, clock)
        eng.begin()
        with pytest.raises(TransactionStateError):
            eng.close()
        with pytest.raises(TransactionStateError):
            eng.quiesce()


class TestTSBIntegration:
    def test_migration_and_temporal_read_through_worm(self, tmp_path,
                                                      clock):
        worm = WormServer(tmp_path / "worm", clock,
                          default_retention=years(7))
        eng = Engine.create(tmp_path / "db", clock,
                            config=EngineConfig(page_size=1024,
                                                buffer_pages=32),
                            worm=worm, worm_migration=True,
                            split_threshold=0.6)
        eng.create_relation(ACCOUNTS)
        put(eng, 1, 0)
        times = {}
        for i in range(1, 300):
            clock.advance(1000)
            put(eng, 1, i, op="update")
            times[i] = clock.now()
            eng.run_stamper()
        assert eng.histdir.page_count() > 0
        # history that migrated to WORM is still temporally queryable
        for probe in (5, 57, 123, 299):
            assert eng.get("accounts", (1,),
                           at=times[probe])["balance"] == probe

    def test_time_split_survives_crash(self, tmp_path, clock):
        worm = WormServer(tmp_path / "worm", clock,
                          default_retention=years(7))
        eng = Engine.create(tmp_path / "db", clock,
                            config=EngineConfig(page_size=1024,
                                                buffer_pages=32),
                            worm=worm, worm_migration=True,
                            split_threshold=0.6)
        eng.create_relation(ACCOUNTS)
        put(eng, 1, 0)
        for i in range(1, 200):
            put(eng, 1, i, op="update")
            eng.run_stamper()
        pages_before = eng.histdir.page_count()
        assert pages_before > 0
        eng.crash()
        eng.recover()
        assert eng.histdir.page_count() >= pages_before
        assert eng.get("accounts", (1,))["balance"] == 199
        # no version lost or duplicated across live + WORM
        history = eng.versions("accounts", (1,))
        assert len(history) == 200

    def test_migration_requires_worm(self, tmp_path, clock):
        with pytest.raises(ConfigError):
            Engine.create(tmp_path / "db", clock, worm_migration=True)
