"""Tests for the runtime concurrency sanitizer.

The centrepiece is the seeded-bug acceptance test: an injected
out-of-order lock acquisition MUST be detected, or the sanitizer is
decoration.  Each test installs a private
:class:`~repro.analysis.sanitizer.LockOrderSanitizer` instance so the
seeded violations never leak into the session-wide sanitizer the
conftest gate watches under ``REPRO_SANITIZE=1``.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.analysis import sanitizer
from repro.common.config import ComplianceMode, DBConfig
from repro.core.database import CompliantDB
from repro.server.service import SingleWriterExecutor
from repro.txn.locks import LockMode, LockTable


@pytest.fixture
def san():
    active = sanitizer.LockOrderSanitizer()
    active.install()
    try:
        yield active
    finally:
        active.uninstall()


def table_db(table):
    """A CompliantDB-shaped shell around a bare LockTable."""
    return SimpleNamespace(engine=SimpleNamespace(
        txns=SimpleNamespace(locks=table)))


class TestLockOrder:
    def test_seeded_out_of_order_acquisition_is_detected(self, san):
        # THE acceptance test: inject the textbook inversion and make
        # sure the sanitizer calls it out
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        with lock_a:
            with lock_b:
                pass
        with lock_b:  # opposite order: closes the a->b->a cycle
            with lock_a:
                pass

        kinds = [v.kind for v in san.violations]
        assert "lock-order" in kinds, san.violations
        with pytest.raises(sanitizer.SanitizerError):
            san.assert_clean()

    def test_inversion_across_threads_is_detected(self, san):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def run(first, second):
            def body():
                with first:
                    with second:
                        pass
            worker = threading.Thread(target=body)
            worker.start()
            worker.join()

        run(lock_a, lock_b)
        run(lock_b, lock_a)
        assert any(v.kind == "lock-order" for v in san.violations)

    def test_report_names_the_creation_sites(self, san):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        message = san.violations[0].message
        assert "test_sanitizer.py" in message
        assert "deadlock" in message

    def test_consistent_order_is_clean(self, san):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert san.violations == []
        san.assert_clean()

    def test_disjoint_scopes_are_clean(self, san):
        # never held together: opposite orders are fine
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            pass
        with lock_b:
            pass
        with lock_b:
            pass
        with lock_a:
            pass
        assert san.violations == []

    def test_reset_forgets_the_graph(self, san):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        assert san.violations
        san.reset()
        assert san.violations == []
        san.assert_clean()


class TestConfinement:
    def test_off_writer_touch_is_flagged(self, san):
        table = LockTable()
        executor = SingleWriterExecutor(4)
        san.confine(table_db(table), executor)
        executor.start()
        try:
            executor.submit(lambda: None).result()  # writer is live
            table.acquire(1, "page:1", LockMode.EXCLUSIVE)
            table.release_all(1)
        finally:
            executor.stop()
        kinds = [v.kind for v in san.violations]
        assert kinds == ["confinement"], san.violations
        assert "writer thread" in san.violations[0].message

    def test_writer_thread_touch_is_clean(self, san):
        table = LockTable()
        executor = SingleWriterExecutor(4)
        san.confine(table_db(table), executor)
        executor.start()
        try:
            def job():
                table.acquire(2, "page:2", LockMode.EXCLUSIVE)
                table.release_all(2)
            executor.submit(job).result()
        finally:
            executor.stop()
        assert san.violations == []

    def test_confinement_lifts_once_writer_stops(self, san):
        table = LockTable()
        executor = SingleWriterExecutor(4)
        san.confine(table_db(table), executor)
        executor.start()
        executor.submit(lambda: None).result()
        executor.stop()
        table.acquire(3, "page:3", LockMode.EXCLUSIVE)
        table.release_all(3)
        assert san.violations == []


class TestResourceOrder:
    def test_inversion_is_a_warning_not_a_violation(self, san):
        # the strict-2PL table rejects conflicts immediately instead of
        # blocking, so an order inversion is a latent hazard only
        table = LockTable()
        table.acquire(1, "rel:a", LockMode.EXCLUSIVE)
        table.acquire(1, "rel:b", LockMode.EXCLUSIVE)
        table.release_all(1)
        table.acquire(2, "rel:b", LockMode.EXCLUSIVE)
        table.acquire(2, "rel:a", LockMode.EXCLUSIVE)
        table.release_all(2)
        assert any(w.kind == "resource-order" for w in san.warnings)
        assert san.violations == []
        san.assert_clean()


class TestLifecycle:
    def test_uninstall_restores_every_patch(self):
        before = (threading.Lock, LockTable.acquire,
                  SingleWriterExecutor._run)
        active = sanitizer.LockOrderSanitizer()
        active.install()
        assert threading.Lock is not before[0]
        assert LockTable.acquire is not before[1]
        active.uninstall()
        assert (threading.Lock, LockTable.acquire,
                SingleWriterExecutor._run) == before

    def test_install_is_idempotent(self, san):
        saved = dict(san._saved)
        san.install()  # second call must not re-wrap the seams
        assert san._saved == saved

    def test_env_enabled_parsing(self, monkeypatch):
        for value, expected in (("1", True), ("yes", True),
                                ("true", True), ("0", False),
                                ("false", False), ("no", False),
                                ("", False)):
            monkeypatch.setenv(sanitizer.ENV_VAR, value)
            assert sanitizer.env_enabled() is expected, value
        monkeypatch.delenv(sanitizer.ENV_VAR)
        assert sanitizer.env_enabled() is False

    def test_ensure_installed_from_env_is_a_no_op_when_off(
            self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        if sanitizer.current() is None:
            assert sanitizer.ensure_installed_from_env() is None
            assert sanitizer.current() is None

    def test_module_level_install_returns_the_active_instance(self):
        pre = sanitizer.current()
        active = sanitizer.install()
        try:
            assert sanitizer.install() is active
            assert sanitizer.current() is active
        finally:
            if pre is None:  # leave a session-wide sanitizer alone
                sanitizer.uninstall()
                assert sanitizer.current() is None

    def test_dbconfig_opt_in_installs_the_sanitizer(self, tmp_path):
        pre = sanitizer.current()
        config = DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT)
        config.obs.sanitize = True
        db = CompliantDB.create(tmp_path / "db", config)
        try:
            assert sanitizer.current() is not None
        finally:
            db.close()
            if pre is None:
                sanitizer.uninstall()
