"""Unit tests for the compliance plugin: diffing, normalisation, hashing,
maintenance, and the snapshot module."""

import pytest

from repro import (ComplianceConfig, ComplianceMode, CompliantDB, DBConfig,
                   EngineConfig, Field, FieldType, Schema, SimulatedClock,
                   minutes)
from repro.common.codec import encode_key
from repro.core import load_snapshot, write_snapshot
from repro.core.plugin import decode_index_content, index_content_bytes
from repro.core.records import CLogType
from repro.crypto import AuditorKey

ROWS = Schema("rows", [
    Field("k", FieldType.INT),
    Field("v", FieldType.STR),
], key_fields=["k"])


def make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ):
    config = DBConfig(engine=EngineConfig(page_size=1024, buffer_pages=16),
                      compliance=ComplianceConfig(
                          mode=mode,
                          regret_interval=minutes(5)))
    db = CompliantDB.create(tmp_path / "db", config,
                            clock=SimulatedClock())
    db.create_relation(ROWS)
    return db


def counts(db):
    return db.clog.record_counts()


class TestIndexContentCodec:
    def test_round_trip(self):
        children = [5, 9, 12]
        seps = [(encode_key((3,)), 100), (encode_key((8,)), 200)]
        raw = index_content_bytes(children, seps)
        assert decode_index_content(raw) == (children, seps)

    def test_empty(self):
        raw = index_content_bytes([7], [])
        assert decode_index_content(raw) == ([7], [])

    def test_different_contents_differ(self):
        a = index_content_bytes([1, 2], [(b"k", 5)])
        b = index_content_bytes([1, 3], [(b"k", 5)])
        assert a != b


class TestDiffing:
    def test_new_tuple_logged_once_per_version(self, tmp_path):
        db = make_db(tmp_path)
        with db.transaction() as txn:
            db.insert(txn, "rows", {"k": 1, "v": "a"})
        db.engine.checkpoint()
        db.engine.checkpoint()  # second flush: no new records
        # exactly four: the __expiry__, __holds__, and "rows" catalog
        # tuples plus the row itself
        assert counts(db).get("NEW_TUPLE", 0) == 4

    def test_stamping_transition_produces_no_records(self, tmp_path):
        db = make_db(tmp_path)
        with db.transaction() as txn:
            db.insert(txn, "rows", {"k": 1, "v": "a"})
        db.engine.checkpoint()           # flushed unstamped? maybe stamped
        before = counts(db).get("NEW_TUPLE", 0)
        db.engine.run_stamper()
        db.engine.checkpoint()           # the stamped rewrite is not "new"
        assert counts(db).get("NEW_TUPLE", 0) == before

    def test_steal_then_abort_yields_undo(self, tmp_path):
        db = make_db(tmp_path)
        txn = db.begin()
        db.insert(txn, "rows", {"k": 1, "v": "doomed"})
        db.engine.checkpoint()           # steal: uncommitted tuple on disk
        db.abort(txn)
        db.engine.checkpoint()           # undo write-back
        c = counts(db)
        assert c.get("ABORT", 0) == 1
        assert c.get("UNDO", 0) == 1

    def test_log_consistent_mode_emits_no_undo_or_read(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT)
        txn = db.begin()
        db.insert(txn, "rows", {"k": 1, "v": "doomed"})
        db.engine.checkpoint()
        db.abort(txn)
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        db.get("rows", (1,))             # disk read
        c = counts(db)
        assert "UNDO" not in c
        assert "READ_HASH" not in c

    def test_read_hash_only_on_cache_miss(self, tmp_path):
        db = make_db(tmp_path)
        for k in range(5):
            with db.transaction() as txn:
                db.insert(txn, "rows", {"k": k, "v": "x"})
        db.engine.checkpoint()
        db.engine.buffer.drop_all()
        db.get("rows", (1,))
        after_miss = counts(db).get("READ_HASH", 0)
        assert after_miss > 0
        db.get("rows", (1,))             # warm: no pread, no record
        assert counts(db).get("READ_HASH", 0) == after_miss

    def test_split_contents_logged(self, tmp_path):
        db = make_db(tmp_path)
        for k in range(100):
            with db.transaction() as txn:
                db.insert(txn, "rows", {"k": k, "v": "padding" * 4})
        c = counts(db)
        assert c.get("PAGE_SPLIT", 0) >= 1
        splits = [r for _, r in db.clog.records()
                  if r.rtype == CLogType.PAGE_SPLIT and not r.is_index]
        event = splits[0]
        assert event.left_content and event.right_content
        assert event.sep_key  # the separator routed to the parent


class TestMaintenance:
    def test_noop_within_interval(self, tmp_path):
        db = make_db(tmp_path)
        assert db.maintenance() is False
        assert db.maintenance(force=True) is True

    def test_witness_per_interval(self, tmp_path):
        db = make_db(tmp_path)
        for _ in range(3):
            db.clock.advance(minutes(6))
            assert db.maintenance() is True
        names = db.worm.list_files("witness/")
        assert len(names) == 3
        assert all(n.startswith("witness/epoch-000001-") for n in names)

    def test_heartbeat_only_when_idle(self, tmp_path):
        db = make_db(tmp_path)
        db.clock.advance(minutes(6))
        with db.transaction() as txn:
            db.insert(txn, "rows", {"k": 1, "v": "x"})  # recent commit
        db.maintenance()
        heartbeats = [r for _, r in db.clog.records()
                      if r.rtype == CLogType.STAMP_TRANS and r.heartbeat]
        assert heartbeats == []
        db.clock.advance(minutes(6))
        db.maintenance()
        heartbeats = [r for _, r in db.clog.records()
                      if r.rtype == CLogType.STAMP_TRANS and r.heartbeat]
        assert len(heartbeats) == 1

    def test_maintenance_flushes_dirty_pages(self, tmp_path):
        db = make_db(tmp_path)
        with db.transaction() as txn:
            db.insert(txn, "rows", {"k": 1, "v": "x"})
        assert db.engine.buffer.dirty_pgnos()
        db.clock.advance(minutes(6))
        db.maintenance()
        assert db.engine.buffer.dirty_pgnos() == []


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        db = make_db(tmp_path)
        for k in range(20):
            with db.transaction() as txn:
                db.insert(txn, "rows", {"k": k, "v": f"v{k}"})
        db.prepare_for_audit()
        key = AuditorKey.generate("snap-test")
        written = write_snapshot(db.worm, key, db.engine, epoch=77)
        loaded = load_snapshot(db.worm, key, epoch=77)
        assert loaded.tuple_count == written.tuple_count
        assert loaded.add_hash == written.add_hash
        assert loaded.leaf_pages.keys() == written.leaf_pages.keys()
        flat = sorted(v.to_bytes() for v in loaded.all_tuples())
        assert len(flat) == loaded.tuple_count

    def test_signature_enforced(self, tmp_path):
        from repro.common.errors import SnapshotError
        db = make_db(tmp_path)
        db.prepare_for_audit()
        key = AuditorKey.generate("signer")
        write_snapshot(db.worm, key, db.engine, epoch=78)
        with pytest.raises(SnapshotError):
            load_snapshot(db.worm, AuditorKey.generate("impostor"),
                          epoch=78)

    def test_unstamped_tuples_rejected(self, tmp_path):
        from repro.common.errors import SnapshotError
        db = make_db(tmp_path)
        with db.transaction() as txn:
            db.insert(txn, "rows", {"k": 1, "v": "x"})
        db.engine.checkpoint()  # flushed but not stamped
        if db.engine.pending_stamp_count:
            with pytest.raises(SnapshotError):
                write_snapshot(db.worm, AuditorKey.generate("x"),
                               db.engine, epoch=79)
