"""Property-based end-to-end invariants.

Hypothesis drives random operation traces — inserts, updates, deletes,
aborts, checkpoints, crashes with recovery, maintenance ticks, vacuum
runs — against a compliant database and a plain dict model.  After any
legal trace:

* the database's visible state equals the model;
* the full version history of every key has the model's length;
* the audit passes (no false positives, ever);
* after an audit rotation, everything still holds in the next epoch.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)

ITEMS = Schema("items", [
    Field("k", FieldType.INT),
    Field("v", FieldType.INT),
], key_fields=["k"])

KEYS = st.integers(min_value=0, max_value=8)

OPS = st.one_of(
    st.tuples(st.just("put"), KEYS, st.integers(0, 1000)),
    st.tuples(st.just("delete"), KEYS, st.just(0)),
    st.tuples(st.just("abort_put"), KEYS, st.integers(0, 1000)),
    st.tuples(st.just("checkpoint"), st.just(0), st.just(0)),
    st.tuples(st.just("crash"), st.just(0), st.just(0)),
    st.tuples(st.just("tick"), st.just(0), st.just(0)),
    st.tuples(st.just("vacuum"), st.just(0), st.just(0)),
    st.tuples(st.just("audit"), st.just(0), st.just(0)),
)


def apply_trace(tmp_path, mode, trace):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=16),
                        compliance=ComplianceConfig(
                            mode=mode,
                            regret_interval=minutes(5))))
    db.create_relation(ITEMS)
    model = {}
    history_len = {}
    for op, key, value in trace:
        if op == "put":
            with db.transaction() as txn:
                row = {"k": key, "v": value}
                if key in model:
                    db.update(txn, "items", row)
                else:
                    db.insert(txn, "items", row)
            model[key] = value
            history_len[key] = history_len.get(key, 0) + 1
        elif op == "delete":
            if key in model:
                with db.transaction() as txn:
                    db.delete(txn, "items", (key,))
                del model[key]
                history_len[key] = history_len.get(key, 0) + 1
        elif op == "abort_put":
            txn = db.begin()
            row = {"k": key, "v": value}
            if key in model:
                db.update(txn, "items", row)
            else:
                db.insert(txn, "items", row)
            db.abort(txn)
        elif op == "checkpoint":
            db.engine.checkpoint()
        elif op == "crash":
            db.crash()
            db.recover()
        elif op == "tick":
            db.clock.advance(minutes(6))
            db.maintenance()
        elif op == "vacuum":
            db.vacuum()  # no retention set: must shred nothing
        elif op == "audit":
            report = Auditor(db).audit()
            assert report.ok, report.summary()
    return db, model, history_len


@pytest.mark.parametrize("mode", [ComplianceMode.LOG_CONSISTENT,
                                  ComplianceMode.HASH_ON_READ])
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(trace=st.lists(OPS, min_size=1, max_size=40))
def test_random_traces_stay_compliant(tmp_path_factory, mode, trace):
    tmp_path = tmp_path_factory.mktemp("prop")
    db, model, history_len = apply_trace(tmp_path, mode, trace)

    # visible state equals the model
    rows = {k[0]: row["v"] for k, row in db.scan("items")}
    assert rows == model
    # history is complete: one version per successful write
    for key, expected in history_len.items():
        assert len(db.versions("items", (key,))) == expected
    # the audit never false-positives on a legal trace
    report = Auditor(db).audit()
    assert report.ok, report.summary()
    # and the next epoch starts clean
    assert db.epoch >= 2
