"""Shared fixtures for the test suite."""

import pytest

from repro.common.clock import SimulatedClock, years
from repro.worm import WormServer


@pytest.fixture
def clock():
    """A fresh simulated clock."""
    return SimulatedClock()


@pytest.fixture
def worm(tmp_path, clock):
    """A WORM server on a scratch directory with a 7-year default term."""
    return WormServer(tmp_path / "worm", clock, default_retention=years(7))
