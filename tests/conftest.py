"""Shared fixtures for the test suite."""

import pytest

from repro.common.clock import SimulatedClock, years
from repro.worm import WormServer


@pytest.fixture
def clock():
    """A fresh simulated clock."""
    return SimulatedClock()


@pytest.fixture
def worm(tmp_path, clock):
    """A WORM server on a scratch directory with a 7-year default term."""
    return WormServer(tmp_path / "worm", clock, default_retention=years(7))


@pytest.fixture(autouse=True)
def _sanitizer_gate():
    """Fail any test that trips the runtime concurrency sanitizer.

    Active only when ``REPRO_SANITIZE`` is set (the CI sanitizer job);
    the sanitizer itself is installed lazily by the first CompliantDB
    the test builds.  Each test is judged on the violations *it* added.
    """
    from repro.analysis import sanitizer

    if not sanitizer.env_enabled():
        yield
        return
    active = sanitizer.install()
    before = len(active.violations)
    yield
    fresh = active.violations[before:]
    if fresh:
        lines = "\n".join(f"  {v}" for v in fresh)
        pytest.fail(
            f"concurrency sanitizer recorded {len(fresh)} "
            f"violation(s) during this test:\n{lines}")
