"""Unit tests for the interprocedural call-graph layer.

Small synthetic projects are parsed straight into ``ModuleUnit`` s so
each resolution strategy — local names, imports, ``self`` through base
classes, the unique-name fallback — is pinned down in isolation, along
with the bounded transitive summaries the rules build on.
"""

import ast
import textwrap

from repro.analysis.callgraph import (CallGraph, iter_calls,
                                      module_name_for)
from repro.analysis.core import Project, load_unit


def build(tmp_path, sources):
    units = []
    for name, src in sources.items():
        path = tmp_path / name
        path.write_text(textwrap.dedent(src))
        units.append(load_unit(path))
    project = Project(units)
    return project.callgraph(), units


def fn(graph, units, qualname):
    for unit in units:
        for info in graph.functions_of_unit(unit):
            if info.qualname == qualname:
                return info
    raise AssertionError(f"no function {qualname!r} in project")


def first_call(info):
    return next(iter_calls(info.node))


class TestModuleNames:
    def test_src_layout_maps_to_dotted_package(self):
        assert module_name_for("src/repro/txn/locks.py") == \
            "repro.txn.locks"
        assert module_name_for("/x/src/repro/core/__init__.py") == \
            "repro.core"

    def test_files_outside_src_are_top_level(self):
        assert module_name_for("tests/test_foo.py") == "test_foo"


class TestResolution:
    def test_local_name(self, tmp_path):
        graph, units = build(tmp_path, {"a.py": """
            def outer():
                inner()

            def inner():
                pass
        """})
        outer = fn(graph, units, "outer")
        targets = graph.resolve_call(first_call(outer), outer)
        assert [t.qualname for t in targets] == ["inner"]

    def test_from_import(self, tmp_path):
        graph, units = build(tmp_path, {
            "a.py": """
                from b import helper

                def outer():
                    helper()
            """,
            "b.py": """
                def helper():
                    pass
            """,
        })
        outer = fn(graph, units, "outer")
        targets = graph.resolve_call(first_call(outer), outer)
        assert [t.key for t in targets] == ["b:helper"]

    def test_self_method_through_base_class(self, tmp_path):
        graph, units = build(tmp_path, {"a.py": """
            class Base:
                def close(self):
                    self.locks.release_all()

            class Child(Base):
                def run(self):
                    self.close()
        """})
        run = fn(graph, units, "Child.run")
        targets = graph.resolve_call(first_call(run), run)
        assert [t.qualname for t in targets] == ["Base.close"]
        assert graph.call_reaches_attr(first_call(run), run,
                                       {"release_all"})

    def test_unique_name_fallback(self, tmp_path):
        graph, units = build(tmp_path, {"a.py": """
            class Pager:
                def flush_all(self):
                    self.file.sync()

            def drive(pager):
                pager.flush_all()
        """})
        drive = fn(graph, units, "drive")
        targets = graph.resolve_call(first_call(drive), drive)
        assert [t.qualname for t in targets] == ["Pager.flush_all"]

    def test_ambiguous_name_does_not_resolve(self, tmp_path):
        graph, units = build(tmp_path, {"a.py": """
            class A:
                def flush_all(self):
                    pass

            class B:
                def flush_all(self):
                    pass

            def drive(pager):
                pager.flush_all()
        """})
        drive = fn(graph, units, "drive")
        assert graph.resolve_call(first_call(drive), drive) == []


class TestSummaries:
    CHAIN = {"a.py": """
        def f0():
            f1()

        def f1():
            f2()

        def f2():
            handle.deep_sync()

        def drive():
            f0()
    """}

    def test_transitive_attrs_follow_the_chain(self, tmp_path):
        graph, units = build(tmp_path, self.CHAIN)
        f0 = fn(graph, units, "f0")
        assert "deep_sync" in graph.transitive_attrs(f0)

    def test_depth_bound_cuts_the_chain(self, tmp_path):
        graph, units = build(tmp_path, self.CHAIN)
        drive = fn(graph, units, "drive")
        call = first_call(drive)
        assert graph.call_reaches_attr(call, drive, {"deep_sync"},
                                       depth=2)
        assert not graph.call_reaches_attr(call, drive, {"deep_sync"},
                                           depth=1)

    def test_mutual_recursion_terminates(self, tmp_path):
        graph, units = build(tmp_path, {"a.py": """
            def ping():
                pong()

            def pong():
                ping()
        """})
        ping = fn(graph, units, "ping")
        assert "pong" in graph.transitive_attrs(ping)

    def test_reachable_functions_is_transitive(self, tmp_path):
        graph, units = build(tmp_path, self.CHAIN)
        drive = fn(graph, units, "drive")
        keys = graph.reachable_functions([drive])
        assert {"a:drive", "a:f0", "a:f1", "a:f2"} <= keys

    def test_reaches_finds_a_buried_call(self, tmp_path):
        graph, units = build(tmp_path, {"a.py": """
            import time

            def root():
                middle()

            def middle():
                leaf()

            def leaf():
                return time.time()
        """})

        def pred(call):
            names = [n.id for n in ast.walk(call.func)
                     if isinstance(n, ast.Name)]
            return "wall clock" if "time" in names else None

        root = fn(graph, units, "root")
        assert graph.reaches(root, pred) == "wall clock"
        leafless = fn(graph, units, "middle")
        assert graph.reaches(leafless, pred) == "wall clock"


class TestProjectCache:
    def test_callgraph_is_cached_per_project(self, tmp_path):
        path = tmp_path / "a.py"
        path.write_text("def f():\n    pass\n")
        project = Project([load_unit(path)])
        assert project.callgraph() is project.callgraph()
        assert isinstance(project.callgraph(), CallGraph)
