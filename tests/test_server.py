"""Tests for the multi-client compliance server (``repro.server``).

The load-bearing property: the server's single-writer executor makes
every concurrent workload equivalent to *some* serial history, and the
journal it records **is** that history — replaying it against an
identically seeded database reproduces the audit report exactly
(timestamps included, because every timestamp is a deterministic clock
tick).
"""

import socket
import threading
import time

import pytest

from repro.common.clock import SimulatedClock
from repro.common.codec import Field, FieldType, Schema
from repro.common.config import ComplianceMode, DBConfig
from repro.common.errors import (ServerBusyError, ServerProtocolError,
                                 ServerRequestError, ServerShutdownError)
from repro.core import Auditor, CompliantDB
from repro.crypto import AuditorKey
from repro.server import (ComplianceServer, ServerClient, ServerConfig,
                          SingleWriterExecutor, protocol, replay_history)

KV = Schema("kv", [Field("k", FieldType.INT), Field("v", FieldType.STR)],
            key_fields=["k"])


def make_db(path, mode=ComplianceMode.LOG_CONSISTENT, key=None):
    return CompliantDB.create(path, DBConfig.for_mode(mode),
                              clock=SimulatedClock(),
                              auditor_key=key or AuditorKey.generate())


@pytest.fixture
def server(tmp_path):
    db = make_db(tmp_path / "db")
    # schema setup happens before start(): once the writer thread is
    # running, the main thread must not touch the engine (the runtime
    # sanitizer enforces exactly this)
    db.create_relation(KV)
    srv = ComplianceServer(db, ServerConfig(record_history=True,
                                            allow_crash_ops=True)).start()
    yield srv
    srv.shutdown()
    db.close()


def connect(server):
    return ServerClient(*server.address)


class TestWireProtocol:
    def test_value_roundtrip(self):
        value = {"k": [1, "two", b"\x00\xff"], "nested": {"b": b""}}
        encoded = protocol.wire_encode(value)
        assert protocol.wire_decode(encoded) == \
            {"k": [1, "two", b"\x00\xff"], "nested": {"b": b""}}

    def test_key_decode_produces_tuple(self):
        assert protocol.wire_decode([1, "a"], as_key=True) == (1, "a")

    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, {"op": "ping", "id": 7})
            assert protocol.recv_frame(b) == {"op": "ping", "id": 7}
            a.close()
            assert protocol.recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_oversized_frame_rejected_without_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall((protocol.MAX_FRAME_BYTES + 1)
                      .to_bytes(4, "little"))
            with pytest.raises(ServerProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_a_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall((100).to_bytes(4, "little") + b"{}")
            a.close()
            with pytest.raises(ServerProtocolError):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ServerProtocolError):
            protocol.encode_frame(
                {"data": "x" * (protocol.MAX_FRAME_BYTES + 1)})


class TestSingleWriterExecutor:
    def test_jobs_run_in_submission_order(self):
        ex = SingleWriterExecutor(max_depth=16)
        ex.start()
        order = []
        futures = [ex.submit(lambda i=i: order.append(i))
                   for i in range(8)]
        for future in futures:
            future.result(timeout=5)
        ex.stop()
        assert order == list(range(8))

    def test_depth_cap_raises_busy(self):
        ex = SingleWriterExecutor(max_depth=2)
        ex.start()
        gate = threading.Event()
        blocker = ex.submit(gate.wait)      # executing: depth 1
        queued = ex.submit(lambda: None)    # queued:    depth 2
        with pytest.raises(ServerBusyError):
            ex.submit(lambda: None)
        forced = ex.submit(lambda: True, force=True)  # bypasses admission
        gate.set()
        blocker.result(timeout=5)
        queued.result(timeout=5)
        assert forced.result(timeout=5) is True
        ex.stop()

    def test_stop_without_drain_fails_queued_jobs(self):
        ex = SingleWriterExecutor(max_depth=8)
        ex.start()
        gate = threading.Event()
        ex.submit(gate.wait)
        victim = ex.submit(lambda: "never")
        ex.stop(drain=False)
        gate.set()
        with pytest.raises(ServerShutdownError):
            victim.result(timeout=5)

    def test_queue_depth_gauge_tracks_load(self):
        ex = SingleWriterExecutor(max_depth=8)
        gauge = ex.obs.registry.gauge("server_queue_depth")
        ex.start()
        gate = threading.Event()
        blocker = ex.submit(gate.wait)
        ex.submit(lambda: None)
        assert gauge.value == 2
        gate.set()
        blocker.result(timeout=5)
        ex.stop()
        assert gauge.value == 0


class TestServerBasics:
    def test_ping_info_metrics(self, server):
        with connect(server) as client:
            assert client.ping()
            info = client.info()
            assert info["mode"] == "log-consistent"
            assert info["halted"] is False
            assert "kv" in info["relations"]
            metrics = client.metrics()
            assert "counters" in metrics

    def test_write_read_cycle(self, server):
        with connect(server) as client:
            txn = client.begin()
            client.insert(txn, "kv", {"k": 1, "v": "one"})
            client.insert(txn, "kv", {"k": 2, "v": "two"})
            commit_time = client.commit(txn)
            assert commit_time > txn
            assert client.get("kv", (1,)) == {"k": 1, "v": "one"}
            assert [k for k, _ in client.scan("kv")] == [(1,), (2,)]

    def test_update_delete_and_as_of(self, server):
        with connect(server) as client:
            txn = client.begin()
            client.insert(txn, "kv", {"k": 5, "v": "old"})
            t1 = client.commit(txn)
            txn = client.begin()
            client.update(txn, "kv", {"k": 5, "v": "new"})
            client.commit(txn)
            assert client.get("kv", (5,))["v"] == "new"
            assert client.get("kv", (5,), at=t1)["v"] == "old"
            txn = client.begin()
            client.delete(txn, "kv", (5,))
            client.commit(txn)
            assert client.get("kv", (5,)) is None

    def test_abort_discards_writes(self, server):
        with connect(server) as client:
            txn = client.begin()
            client.insert(txn, "kv", {"k": 9, "v": "phantom"})
            client.abort(txn)
            assert client.get("kv", (9,)) is None

    def test_unknown_op_is_an_error(self, server):
        with connect(server) as client:
            with pytest.raises(ServerRequestError) as err:
                client.request("explode")
            assert not err.value.retryable

    def test_malformed_args_is_bad_request(self, server):
        with connect(server) as client:
            with pytest.raises(ServerRequestError) as err:
                client.request("get", relation="kv")  # no key
            assert err.value.code == protocol.BAD_REQUEST

    def test_stale_txn_handle_is_txn_state(self, server):
        with connect(server) as client:
            with pytest.raises(ServerRequestError) as err:
                client.request("insert", txn=1, relation="kv",
                               row={"k": 1, "v": "x"})
            assert err.value.code == protocol.TXN_STATE

    def test_crash_ops_gated_by_config(self, tmp_path):
        db = make_db(tmp_path / "db")
        srv = ComplianceServer(db, ServerConfig()).start()  # no crash ops
        try:
            with connect(srv) as client:
                with pytest.raises(ServerRequestError):
                    client.crash_recover()
        finally:
            srv.shutdown()
            db.close()


class TestSessionOwnership:
    def test_foreign_txn_handle_rejected(self, server):
        with connect(server) as alice, connect(server) as bob:
            txn = alice.begin()
            with pytest.raises(ServerRequestError) as err:
                bob.insert(txn, "kv", {"k": 1, "v": "hijack"})
            assert err.value.code == protocol.TXN_STATE
            alice.abort(txn)

    def test_disconnect_aborts_open_txns_and_frees_locks(self, server):
        alice = connect(server)
        txn = alice.begin()
        alice.insert(txn, "kv", {"k": 1, "v": "alice"})
        alice.close()
        with connect(server) as bob:
            # alice's X lock must be gone, her insert rolled back
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    t2 = bob.begin()
                    bob.insert(t2, "kv", {"k": 1, "v": "bob"})
                    bob.commit(t2)
                    break
                except ServerRequestError as exc:
                    if not exc.retryable:
                        raise
                    time.sleep(0.01)
            assert bob.get("kv", (1,)) == {"k": 1, "v": "bob"}

    def test_lock_conflict_is_retryable_and_server_aborts(self, server):
        with connect(server) as alice, connect(server) as bob:
            seed = alice.begin()
            alice.insert(seed, "kv", {"k": 1, "v": "seed"})
            alice.commit(seed)
            ta = alice.begin()
            alice.update(ta, "kv", {"k": 1, "v": "a"})
            tb = bob.begin()
            with pytest.raises(ServerRequestError) as err:
                bob.update(tb, "kv", {"k": 1, "v": "b"})
            assert err.value.code == protocol.CONFLICT
            assert err.value.retryable
            alice.commit(ta)
            # on first-writer-wins aborts the server rolls the txn
            # back; the dead handle is then unusable
            try:
                bob.commit(tb)
            except ServerRequestError as exc:
                assert exc.code in (protocol.TXN_STATE,
                                    protocol.CONFLICT)


class TestBackpressure:
    def test_busy_response_when_writer_queue_full(self, tmp_path):
        db = make_db(tmp_path / "db")
        srv = ComplianceServer(
            db, ServerConfig(max_queue_depth=1)).start()
        try:
            gate = threading.Event()
            blocker = srv.service.executor.submit(gate.wait)
            with connect(srv) as client:
                with pytest.raises(ServerRequestError) as err:
                    client.request("info")
                assert err.value.code == protocol.BUSY
                assert err.value.retryable
                gate.set()
                blocker.result(timeout=5)
                assert client.info()["halted"] is False
                busy = db.obs.registry.counter(
                    "server_busy_total").value
                assert busy >= 1
        finally:
            srv.shutdown()
            db.close()

    def test_ping_bypasses_the_writer_queue(self, tmp_path):
        db = make_db(tmp_path / "db")
        srv = ComplianceServer(
            db, ServerConfig(max_queue_depth=1)).start()
        try:
            gate = threading.Event()
            blocker = srv.service.executor.submit(gate.wait)
            with connect(srv) as client:
                assert client.ping()  # liveness even under backpressure
            gate.set()
            blocker.result(timeout=5)
        finally:
            srv.shutdown()
            db.close()


class TestGracefulDrain:
    def test_shutdown_aborts_leftover_txns(self, tmp_path):
        db = make_db(tmp_path / "db")
        db.create_relation(KV)
        srv = ComplianceServer(db, ServerConfig()).start()
        client = connect(srv)
        txn = client.begin()
        client.insert(txn, "kv", {"k": 1, "v": "doomed"})
        srv.shutdown()
        client.close()
        assert db.engine.txns.active_count == 0
        assert db.get("kv", (1,)) is None
        db.close()

    def test_shutdown_is_idempotent(self, tmp_path):
        db = make_db(tmp_path / "db")
        srv = ComplianceServer(db, ServerConfig()).start()
        srv.shutdown()
        srv.shutdown()
        db.close()

    def test_shutdown_wakes_idle_accept_thread(self, tmp_path):
        # close() alone never interrupts a blocked accept() on Linux;
        # without the listener shutdown() nudge this burns the whole
        # drain_timeout on the accept-thread join
        db = make_db(tmp_path / "db")
        srv = ComplianceServer(db, ServerConfig()).start()
        start = time.monotonic()
        srv.shutdown()
        assert time.monotonic() - start < 5.0
        assert srv._accept_thread is not None
        assert not srv._accept_thread.is_alive()
        db.close()


@pytest.mark.parametrize("mode", [ComplianceMode.LOG_CONSISTENT,
                                  ComplianceMode.HASH_ON_READ],
                         ids=["LC", "HR"])
class TestConcurrentClients:
    """N threaded clients, overlapping keys, a crash mid-load — and the
    audit must be clean *and* byte-identical to a serial replay."""

    CLIENTS = 6
    OPS = 20
    KEYS = 10

    def run_load(self, server, crash_at=None):
        fatal = []

        def worker(wid):
            import random
            rng = random.Random(wid)
            with connect(server) as client:
                for i in range(self.OPS):
                    if crash_at is not None and (wid, i) == crash_at:
                        client.crash_recover()
                        continue
                    k = rng.randrange(self.KEYS)
                    try:
                        txn = client.begin()
                        row = client.get("kv", (k,), txn=txn)
                        if row is None:
                            client.insert(txn, "kv",
                                          {"k": k, "v": f"w{wid}i{i}"})
                        else:
                            client.update(txn, "kv",
                                          {"k": k, "v": f"w{wid}i{i}"})
                        client.commit(txn)
                    except ServerRequestError as exc:
                        # TXN_STATE happens when another session's
                        # crash_recover killed our open handle — the
                        # designed crash semantics, not a failure
                        if not exc.retryable and \
                                exc.code != protocol.TXN_STATE:
                            fatal.append((wid, i, exc.code, str(exc)))
                            return

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(self.CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return fatal

    def test_concurrent_load_audits_clean_and_replays_identically(
            self, tmp_path, mode):
        key = AuditorKey.generate()
        db = make_db(tmp_path / "live", mode, key)
        db.create_relation(KV)  # before start(): writer owns db after
        srv = ComplianceServer(db, ServerConfig(
            record_history=True, allow_crash_ops=True)).start()
        # schema DDL ran outside the server: journal it by hand so the
        # replay database performs the identical op sequence
        srv.service._record(("create_relation", "kv",
                             [("k", "int"), ("v", "str")], ["k"], None))

        fatal = self.run_load(srv, crash_at=(2, self.OPS // 2))
        assert fatal == [], fatal

        # drain first: session-close cleanup aborts are part of the
        # history, and some may still be in flight on worker threads
        srv.shutdown()
        history = srv.service.history_snapshot()
        assert any(entry[0] == "crash_recover" for entry in history)
        committed = sum(1 for entry in history if entry[0] == "commit")
        assert committed > self.CLIENTS  # real work got through

        live = Auditor(db).audit(rotate=False)
        assert live.ok, [str(f) for f in live.findings]

        replay_db = make_db(tmp_path / "replay", mode, key)
        replay_history(replay_db, history)
        serial = Auditor(replay_db).audit(rotate=False)
        assert serial.ok, [str(f) for f in serial.findings]
        assert live.comparable() == serial.comparable()
        # same data surface too
        assert db.scan("kv") == replay_db.scan("kv")
        db.close()
        replay_db.close()
