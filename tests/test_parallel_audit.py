"""The partitioned audit must be indistinguishable from the serial one.

Every test compares :meth:`AuditReport.comparable` between the serial
:class:`Auditor` and :class:`ParallelAuditor` runs over the *same*
database — clean and tampered, in both compliant architectures, at
several worker counts — plus the resume-after-interrupt path and the
peek-skip fast path's header decoding.
"""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType,
                   ParallelAuditor, Schema, SimulatedClock)
from repro.common.errors import AuditError, ConfigError
from repro.core import Adversary, CLogRecord, CLogType, peek_frame
from repro.core.audit import Finding

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("account", FieldType.STR),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])

WORKER_COUNTS = (1, 2, 3, 4)


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT):
    config = DBConfig(engine=EngineConfig(page_size=1024, buffer_pages=32),
                      compliance=ComplianceConfig(mode=mode))
    db = CompliantDB.create(tmp_path / "db", config,
                            clock=SimulatedClock())
    db.create_relation(LEDGER)
    return db


def populate(db, count=40, reads=2):
    for i in range(count):
        with db.transaction() as txn:
            db.insert(txn, "ledger",
                      {"entry_id": i, "account": "ops", "amount": i * 10})
    for i in range(0, count, 4):
        with db.transaction() as txn:
            db.update(txn, "ledger",
                      {"entry_id": i, "account": "ops", "amount": -1})
    # repeated reads: in HASH_ON_READ they append READ_HASH records whose
    # replay exercises the per-version normalisation memo
    for _ in range(reads):
        for i in range(0, count, 3):
            db.get("ledger", (i,))


def parallel(db, workers, **kwargs):
    kwargs.setdefault("chunk_pages", 5)
    kwargs.setdefault("log_slices", 3)
    return ParallelAuditor(db, workers=workers, **kwargs)


@pytest.fixture(params=[ComplianceMode.LOG_CONSISTENT,
                        ComplianceMode.HASH_ON_READ])
def populated(tmp_path, request):
    db = make_db(tmp_path, mode=request.param)
    populate(db)
    yield db
    db.close()


class TestPeekFrame:
    def records(self):
        return [
            CLogRecord(CLogType.NEW_TUPLE, pgno=7, tuple_bytes=b"t" * 40),
            CLogRecord(CLogType.STAMP_TRANS, txn_id=3, commit_time=99),
            CLogRecord(CLogType.PAGE_SPLIT, pgno=4, left_pgno=4,
                       right_pgno=9, parent_pgno=2, sep_key=b"k",
                       left_content=[b"a"], right_content=[b"b", b"c"]),
            CLogRecord(CLogType.READ_HASH, pgno=-1, page_hash=b"h" * 16),
            CLogRecord(CLogType.CLOSE_EPOCH, timestamp=123),
        ]

    def test_peek_matches_full_decode(self):
        for record in self.records():
            framed = record.to_bytes()
            rtype, pgno, left, right, parent = peek_frame(framed, 4)
            assert rtype == int(record.rtype)
            assert pgno == record.pgno
            assert (left, right, parent) == (
                record.left_pgno, record.right_pgno, record.parent_pgno)

    def test_peek_at_offset_inside_stream(self):
        blob = b"".join(r.to_bytes() for r in self.records())
        offset = 0
        for record in self.records():
            rtype, pgno, _, _, _ = peek_frame(blob, offset + 4)
            assert rtype == int(record.rtype)
            assert pgno == record.pgno
            record2, offset = CLogRecord.from_bytes(blob, offset)
            assert record2.rtype == record.rtype


class TestCleanEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_clean_report_identical(self, populated, workers):
        serial = Auditor(populated).audit(rotate=False)
        report = parallel(populated, workers).audit(rotate=False)
        assert report.ok
        assert report.comparable() == serial.comparable()
        assert report.expected_digest == serial.expected_digest != ""
        assert report.workers == workers

    def test_rotation_still_works(self, populated):
        before = populated.epoch
        report = parallel(populated, 2).audit()
        assert report.ok and report.new_epoch == before + 1
        # the next epoch audits cleanly too
        follow_up = parallel(populated, 2).audit(rotate=False)
        assert follow_up.ok

    def test_odd_partition_shapes(self, populated):
        serial = Auditor(populated).audit(rotate=False)
        for chunk_pages, log_slices in ((1, 1), (3, 7), (1000, 2)):
            report = ParallelAuditor(
                populated, workers=2, chunk_pages=chunk_pages,
                log_slices=log_slices).audit(rotate=False)
            assert report.comparable() == serial.comparable()

    def test_hr_replay_memo_is_hit(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        populate(db, reads=3)
        parallel(db, 1).audit(rotate=False)
        counters = db.metrics()["counters"]
        assert counters["audit_norm_memo_hits_total"] > 0
        db.close()


class TestTamperingEquivalence:
    """Injected tampering must be reported identically by every worker
    count — same findings, same digests, same verdict."""

    def attack(self, db, mala, name):
        if name == "shred":
            mala.shred_tuple("ledger", (7,))
        elif name == "alter":
            mala.alter_tuple("ledger", (5,),
                             {"entry_id": 5, "account": "ops",
                              "amount": 10 ** 6})
        elif name == "spurious-abort":
            mala.append_spurious_abort(txn_id=2)
        elif name == "backdate":
            mala.backdate_insert(
                "ledger", {"entry_id": 990, "account": "x", "amount": 1},
                start=5)
        else:  # pragma: no cover - test bug
            raise AssertionError(name)

    @pytest.mark.parametrize("name",
                             ["shred", "alter", "spurious-abort",
                              "backdate"])
    def test_attack_detected_identically(self, populated, name):
        mala = Adversary(populated)
        mala.settle()
        self.attack(populated, mala, name)
        serial = Auditor(populated).audit(rotate=False)
        assert not serial.ok
        for workers in WORKER_COUNTS:
            report = parallel(populated, workers).audit(rotate=False)
            assert not report.ok
            assert report.comparable() == serial.comparable(), \
                (name, workers)

    def test_state_reversion_detected_identically(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        populate(db)
        mala = Adversary(db)
        mala.settle()
        handle = mala.begin_state_reversion(
            "ledger", (6,),
            {"entry_id": 6, "account": "ops", "amount": 777})
        db.get("ledger", (6,))
        handle.revert()
        serial = Auditor(db).audit(rotate=False)
        assert "read-hash-mismatch" in serial.codes()
        for workers in (1, 2, 4):
            report = parallel(db, workers).audit(rotate=False)
            assert report.comparable() == serial.comparable()
        db.close()


class TestDeterministicOrdering:
    def test_findings_sorted_regardless_of_discovery(self, populated):
        mala = Adversary(populated)
        mala.settle()
        mala.shred_tuple("ledger", (7,))
        mala.append_spurious_abort(txn_id=2)
        for report in (Auditor(populated).audit(rotate=False),
                       parallel(populated, 3).audit(rotate=False)):
            keys = [f.sort_key() for f in report.findings]
            assert keys == sorted(keys)
            assert len(report.findings) >= 2

    def test_sort_key_shape(self):
        finding = Finding("code", "detail", pgno=None, phase="log")
        assert finding.sort_key() == ("log", "code", "detail", -1)


class _Interrupted(RuntimeError):
    pass


class TestResume:
    def test_resume_after_interrupt(self, populated, tmp_path):
        serial = Auditor(populated).audit(rotate=False)
        ckpt = tmp_path / "ckpt.bin"

        auditor = parallel(populated, 2, checkpoint_every=1,
                           checkpoint_path=ckpt)
        done = []

        def boom(key, result):
            done.append(key)
            if len(done) >= 4:
                raise _Interrupted(key)

        auditor._after_task = boom
        with pytest.raises(_Interrupted):
            auditor.audit(rotate=False)
        assert ckpt.exists()

        resumed_auditor = parallel(populated, 2, checkpoint_every=1,
                                   checkpoint_path=ckpt, resume=True)
        report = resumed_auditor.audit(rotate=False)
        assert report.comparable() == serial.comparable()
        assert report.tasks_resumed >= 4
        assert report.tasks_resumed < report.tasks_total
        # a finished audit discards its progress
        assert not ckpt.exists()

    def test_resume_ignores_stale_checkpoint(self, populated, tmp_path):
        ckpt = tmp_path / "ckpt.bin"
        ckpt.write_bytes(b"not a checkpoint")
        serial = Auditor(populated).audit(rotate=False)
        report = parallel(populated, 2, checkpoint_every=1,
                          checkpoint_path=ckpt,
                          resume=True).audit(rotate=False)
        assert report.comparable() == serial.comparable()
        assert report.tasks_resumed == 0

    def test_fresh_run_discards_previous_progress(self, populated,
                                                  tmp_path):
        ckpt = tmp_path / "ckpt.bin"
        auditor = parallel(populated, 1, checkpoint_every=1,
                           checkpoint_path=ckpt)
        done = []

        def boom(key, result):
            done.append(key)
            if len(done) >= 2:
                raise _Interrupted(key)

        auditor._after_task = boom
        with pytest.raises(_Interrupted):
            auditor.audit(rotate=False)
        assert ckpt.exists()
        # resume=False (the default) must not reuse the stale file
        report = parallel(populated, 1, checkpoint_every=1,
                          checkpoint_path=ckpt).audit(rotate=False)
        assert report.tasks_resumed == 0
        assert report.ok


class TestConfigAndGuards:
    def test_regular_mode_rejected(self, tmp_path):
        db = CompliantDB.create(
            tmp_path / "db",
            DBConfig.for_mode(ComplianceMode.REGULAR),
            clock=SimulatedClock())
        with pytest.raises(AuditError):
            ParallelAuditor(db, workers=2).audit()
        db.close()

    def test_bad_worker_count_rejected(self, populated):
        with pytest.raises(AuditError):
            ParallelAuditor(populated, workers=0)

    def test_config_knobs_validate(self):
        with pytest.raises(ConfigError):
            ComplianceConfig(audit_workers=-1).validate()
        with pytest.raises(ConfigError):
            ComplianceConfig(audit_chunk_pages=0).validate()
        with pytest.raises(ConfigError):
            ComplianceConfig(audit_log_slices=-2).validate()
        with pytest.raises(ConfigError):
            ComplianceConfig(audit_checkpoint_every=-1).validate()

    def test_config_defaults_feed_auditor(self, tmp_path):
        config = DBConfig(
            engine=EngineConfig(page_size=1024, buffer_pages=32),
            compliance=ComplianceConfig(audit_workers=2,
                                        audit_chunk_pages=9,
                                        audit_log_slices=5))
        db = CompliantDB.create(tmp_path / "db", config,
                                clock=SimulatedClock())
        db.create_relation(LEDGER)
        populate(db, count=10, reads=0)
        auditor = ParallelAuditor(db)
        assert auditor._workers == 2
        assert auditor._chunk_pages == 9
        assert auditor._log_slices == 5
        report = auditor.audit(rotate=False)
        assert report.ok and report.workers == 2
        db.close()

    def test_metrics_emitted(self, populated):
        report = parallel(populated, 2).audit(rotate=False)
        counters = populated.metrics()["counters"]
        assert counters["audit_pages_scanned_total"] == \
            report.pages_scanned
        executed = counters.get(
            'audit_tasks_total{source="executed"}', 0)
        assert executed == report.tasks_total - report.tasks_resumed
