"""Tests for the simulated WORM compliance storage server."""

import pytest

from repro.common.clock import SimulatedClock, minutes, years
from repro.common.errors import (WormError, WormFileExistsError,
                                 WormFileNotFoundError, WormViolationError)
from repro.crypto import AuditorKey
from repro.worm import WormServer


class TestCreateAndRead:
    def test_create_and_read_back(self, worm):
        worm.create_file("a/b/doc.txt", b"hello")
        assert worm.read("a/b/doc.txt") == b"hello"
        assert worm.size("a/b/doc.txt") == 5

    def test_create_time_from_compliance_clock(self, clock, worm):
        before = clock.now()
        worm.create_file("stamp", b"x")
        meta = worm.meta("stamp")
        assert meta.create_time == before

    def test_empty_witness_file(self, worm):
        worm.create_file("witness-1")
        assert worm.read("witness-1") == b""
        assert worm.exists("witness-1")

    def test_duplicate_name_rejected(self, worm):
        worm.create_file("doc", b"v1")
        with pytest.raises(WormFileExistsError):
            worm.create_file("doc", b"v2")

    def test_missing_file(self, worm):
        with pytest.raises(WormFileNotFoundError):
            worm.read("nope")

    def test_bad_names_rejected(self, worm):
        for bad in ["", "../escape", "a//b", "/abs", "sp ace"]:
            with pytest.raises(WormError):
                worm.create_file(bad, b"x")

    def test_list_files_prefix(self, worm):
        worm.create_file("logs/l1", b"x")
        worm.create_file("logs/l2", b"x")
        worm.create_file("snap/s1", b"x")
        assert worm.list_files("logs/") == ["logs/l1", "logs/l2"]
        assert len(worm.list_files()) == 3


class TestImmutability:
    def test_regular_file_not_appendable(self, worm):
        worm.create_file("doc", b"committed")
        with pytest.raises(WormViolationError):
            worm.append("doc", b"more")

    def test_append_file_grows_and_offsets(self, worm):
        worm.create_append_file("log")
        assert worm.append("log", b"aaa") == 0
        assert worm.append("log", b"bb") == 3
        assert worm.read("log") == b"aaabb"

    def test_partial_read(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"0123456789")
        assert worm.read("log", offset=3, length=4) == b"3456"

    def test_sealed_log_rejects_append(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"x")
        worm.seal("log")
        with pytest.raises(WormViolationError):
            worm.append("log", b"y")
        assert worm.read("log") == b"x"

    def test_seal_idempotent(self, worm):
        worm.create_append_file("log")
        worm.seal("log")
        worm.seal("log")

    def test_early_delete_rejected(self, clock, worm):
        worm.create_file("doc", b"keep me", retention=years(7))
        clock.advance(years(6))
        with pytest.raises(WormViolationError):
            worm.delete("doc")
        assert worm.exists("doc")

    def test_delete_after_retention(self, clock, worm):
        worm.create_file("doc", b"temp", retention=minutes(5))
        assert not worm.is_expired("doc")
        clock.advance(minutes(6))
        assert worm.is_expired("doc")
        worm.delete("doc")
        assert not worm.exists("doc")

    def test_zero_retention_rejected(self, worm):
        with pytest.raises(WormError):
            worm.create_file("doc", b"x", retention=0)


class TestPersistence:
    def test_metadata_survives_reopen(self, tmp_path, clock):
        server = WormServer(tmp_path / "w", clock, default_retention=years(1))
        server.create_file("doc", b"payload")
        server.create_append_file("log")
        server.append("log", b"entry")
        server.seal("log")
        created = server.meta("doc").create_time

        reopened = WormServer(tmp_path / "w", clock,
                              default_retention=years(1))
        assert reopened.read("doc") == b"payload"
        assert reopened.meta("doc").create_time == created
        assert reopened.read("log") == b"entry"
        with pytest.raises(WormViolationError):
            reopened.append("log", b"more")

    def test_deletes_survive_reopen(self, tmp_path, clock):
        server = WormServer(tmp_path / "w", clock,
                            default_retention=minutes(1))
        server.create_file("doc", b"x")
        clock.advance(minutes(2))
        server.delete("doc")
        reopened = WormServer(tmp_path / "w", clock,
                              default_retention=minutes(1))
        assert not reopened.exists("doc")


class TestAuditorKey:
    def test_sign_verify_round_trip(self):
        key = AuditorKey.generate("alice")
        sig = key.sign(b"snapshot-hash")
        assert key.verify(b"snapshot-hash", sig)

    def test_tampered_message_fails(self):
        key = AuditorKey.generate("alice")
        sig = key.sign(b"snapshot-hash")
        assert not key.verify(b"snapshot-hash-tampered", sig)

    def test_wrong_key_fails(self):
        alice, mala = AuditorKey.generate("alice"), AuditorKey.generate("mala")
        sig = mala.sign(b"forged statement")
        assert not alice.verify(b"forged statement", sig)

    def test_require_valid_raises(self):
        from repro.common.errors import SnapshotError
        key = AuditorKey.generate("alice")
        with pytest.raises(SnapshotError):
            key.require_valid(b"m", b"\x00" * 64, what="snapshot")

    def test_deterministic_generation(self):
        assert AuditorKey.generate("a").sign(b"m") == \
            AuditorKey.generate("a").sign(b"m")


class TestReadClamping:
    def test_explicit_length_clamped_at_size(self, worm):
        worm.create_file("doc", b"0123456789")
        assert worm.read("doc", 4, 100) == b"456789"
        assert worm.read("doc", 0, 10**9) == b"0123456789"

    def test_read_never_returns_padded_file_bytes(self, tmp_path, worm):
        # an adversary pads the underlying volume file out-of-band; the
        # trusted metadata's size must still bound every read
        worm.create_file("doc", b"real")
        with open(tmp_path / "worm" / "doc", "ab") as handle:
            handle.write(b"INJECTED")
        assert worm.read("doc", 0, 100) == b"real"
        assert worm.read("doc") == b"real"
        assert worm.read("doc", 2, 50) == b"al"

    def test_offset_past_size_is_empty(self, worm):
        worm.create_file("doc", b"abc")
        assert worm.read("doc", 3, 10) == b""
        assert worm.read("doc", 7) == b""


class TestGroupCommitBuffer:
    def test_buffered_appends_readable_before_sync(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"aaa", durable=False)
        worm.append("log", b"bbb", durable=False)
        assert worm.size("log") == 6
        assert worm.buffered("log") == 6
        assert worm.read("log") == b"aaabbb"
        assert worm.read("log", 2, 3) == b"abb"

    def test_sync_is_one_flush_for_many_appends(self, worm):
        worm.create_append_file("log")
        worm.stats.reset()
        for i in range(50):
            worm.append("log", b"x" * 10, durable=False)
        assert worm.stats.flushes == 0
        assert worm.sync("log") is True
        assert worm.stats.flushes == 1
        assert worm.stats.appends == 50
        assert worm.stats.buffered_appends == 50
        assert worm.sync("log") is False  # nothing left
        assert worm.buffered("log") == 0

    def test_drop_buffers_loses_unsynced_tail_only(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"durable-", durable=False)
        worm.sync("log")
        worm.append("log", b"lost", durable=False)
        assert worm.drop_buffers() == 4
        assert worm.size("log") == 8
        assert worm.read("log") == b"durable-"

    def test_durable_append_drains_earlier_buffered(self, worm):
        # ordering: a durable append may not overtake buffered bytes
        worm.create_append_file("log")
        worm.append("log", b"first", durable=False)
        worm.append("log", b"second", durable=True)
        worm.drop_buffers()  # nothing buffered anymore
        assert worm.read("log") == b"firstsecond"

    def test_seal_drains_buffer(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"tail", durable=False)
        worm.seal("log")
        assert worm.buffered("log") == 0
        worm.drop_buffers()
        assert worm.read("log") == b"tail"

    def test_buffered_bytes_absent_after_reopen(self, tmp_path, clock):
        server = WormServer(tmp_path / "w2", clock,
                            default_retention=years(7))
        server.create_append_file("log")
        server.append("log", b"durable", durable=False)
        server.sync("log")
        server.append("log", b"volatile", durable=False)
        # a new server over the same volume sees only synced bytes —
        # the in-memory buffer died with the old process
        reopened = WormServer(tmp_path / "w2", clock,
                              default_retention=years(7))
        assert reopened.size("log") == 7
        assert reopened.read("log") == b"durable"

    def test_append_offsets_account_for_buffer(self, worm):
        worm.create_append_file("log")
        assert worm.append("log", b"aa", durable=False) == 0
        assert worm.append("log", b"bbb", durable=False) == 2
        assert worm.append("log", b"c", durable=True) == 5
