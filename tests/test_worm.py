"""Tests for the simulated WORM compliance storage server."""

import pytest

from repro.common.clock import SimulatedClock, minutes, years
from repro.common.errors import (WormError, WormFileExistsError,
                                 WormFileNotFoundError, WormViolationError)
from repro.crypto import AuditorKey
from repro.worm import WormServer


class TestCreateAndRead:
    def test_create_and_read_back(self, worm):
        worm.create_file("a/b/doc.txt", b"hello")
        assert worm.read("a/b/doc.txt") == b"hello"
        assert worm.size("a/b/doc.txt") == 5

    def test_create_time_from_compliance_clock(self, clock, worm):
        before = clock.now()
        worm.create_file("stamp", b"x")
        meta = worm.meta("stamp")
        assert meta.create_time == before

    def test_empty_witness_file(self, worm):
        worm.create_file("witness-1")
        assert worm.read("witness-1") == b""
        assert worm.exists("witness-1")

    def test_duplicate_name_rejected(self, worm):
        worm.create_file("doc", b"v1")
        with pytest.raises(WormFileExistsError):
            worm.create_file("doc", b"v2")

    def test_missing_file(self, worm):
        with pytest.raises(WormFileNotFoundError):
            worm.read("nope")

    def test_bad_names_rejected(self, worm):
        for bad in ["", "../escape", "a//b", "/abs", "sp ace"]:
            with pytest.raises(WormError):
                worm.create_file(bad, b"x")

    def test_list_files_prefix(self, worm):
        worm.create_file("logs/l1", b"x")
        worm.create_file("logs/l2", b"x")
        worm.create_file("snap/s1", b"x")
        assert worm.list_files("logs/") == ["logs/l1", "logs/l2"]
        assert len(worm.list_files()) == 3


class TestImmutability:
    def test_regular_file_not_appendable(self, worm):
        worm.create_file("doc", b"committed")
        with pytest.raises(WormViolationError):
            worm.append("doc", b"more")

    def test_append_file_grows_and_offsets(self, worm):
        worm.create_append_file("log")
        assert worm.append("log", b"aaa") == 0
        assert worm.append("log", b"bb") == 3
        assert worm.read("log") == b"aaabb"

    def test_partial_read(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"0123456789")
        assert worm.read("log", offset=3, length=4) == b"3456"

    def test_sealed_log_rejects_append(self, worm):
        worm.create_append_file("log")
        worm.append("log", b"x")
        worm.seal("log")
        with pytest.raises(WormViolationError):
            worm.append("log", b"y")
        assert worm.read("log") == b"x"

    def test_seal_idempotent(self, worm):
        worm.create_append_file("log")
        worm.seal("log")
        worm.seal("log")

    def test_early_delete_rejected(self, clock, worm):
        worm.create_file("doc", b"keep me", retention=years(7))
        clock.advance(years(6))
        with pytest.raises(WormViolationError):
            worm.delete("doc")
        assert worm.exists("doc")

    def test_delete_after_retention(self, clock, worm):
        worm.create_file("doc", b"temp", retention=minutes(5))
        assert not worm.is_expired("doc")
        clock.advance(minutes(6))
        assert worm.is_expired("doc")
        worm.delete("doc")
        assert not worm.exists("doc")

    def test_zero_retention_rejected(self, worm):
        with pytest.raises(WormError):
            worm.create_file("doc", b"x", retention=0)


class TestPersistence:
    def test_metadata_survives_reopen(self, tmp_path, clock):
        server = WormServer(tmp_path / "w", clock, default_retention=years(1))
        server.create_file("doc", b"payload")
        server.create_append_file("log")
        server.append("log", b"entry")
        server.seal("log")
        created = server.meta("doc").create_time

        reopened = WormServer(tmp_path / "w", clock,
                              default_retention=years(1))
        assert reopened.read("doc") == b"payload"
        assert reopened.meta("doc").create_time == created
        assert reopened.read("log") == b"entry"
        with pytest.raises(WormViolationError):
            reopened.append("log", b"more")

    def test_deletes_survive_reopen(self, tmp_path, clock):
        server = WormServer(tmp_path / "w", clock,
                            default_retention=minutes(1))
        server.create_file("doc", b"x")
        clock.advance(minutes(2))
        server.delete("doc")
        reopened = WormServer(tmp_path / "w", clock,
                              default_retention=minutes(1))
        assert not reopened.exists("doc")


class TestAuditorKey:
    def test_sign_verify_round_trip(self):
        key = AuditorKey.generate("alice")
        sig = key.sign(b"snapshot-hash")
        assert key.verify(b"snapshot-hash", sig)

    def test_tampered_message_fails(self):
        key = AuditorKey.generate("alice")
        sig = key.sign(b"snapshot-hash")
        assert not key.verify(b"snapshot-hash-tampered", sig)

    def test_wrong_key_fails(self):
        alice, mala = AuditorKey.generate("alice"), AuditorKey.generate("mala")
        sig = mala.sign(b"forged statement")
        assert not alice.verify(b"forged statement", sig)

    def test_require_valid_raises(self):
        from repro.common.errors import SnapshotError
        key = AuditorKey.generate("alice")
        with pytest.raises(SnapshotError):
            key.require_valid(b"m", b"\x00" * 64, what="snapshot")

    def test_deterministic_generation(self):
        assert AuditorKey.generate("a").sign(b"m") == \
            AuditorKey.generate("a").sign(b"m")
