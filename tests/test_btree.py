"""Tests for the B+-tree: inserts, splits, scans, removal, stamping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import MAX_START, BPlusTree, check_tree
from repro.common.codec import encode_key
from repro.common.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage import BufferCache, Page, Pager, TupleVersion

PAGE_SIZE = 512  # small pages force deep trees quickly


def make_tree(tmp_path, page_size=PAGE_SIZE, capacity=64, assign_seq=False):
    pager = Pager(tmp_path / "db", page_size)
    buffer = BufferCache(pager, capacity)
    tree = BPlusTree.create(buffer, page_size, relation_id=1,
                            assign_seq=assign_seq)
    return tree, buffer, pager


def tv(key, start=1, payload=b"p", stamped=True, eol=False, rel=1):
    return TupleVersion(relation_id=rel, key=encode_key((key,)),
                        start=start, stamped=stamped, eol=eol, seq=0,
                        payload=payload)


def fetcher(buffer):
    return lambda pgno: buffer.get(pgno)


class TestBasicOps:
    def test_insert_and_get(self, tmp_path):
        tree, buffer, _ = make_tree(tmp_path)
        tree.insert(tv(5, start=10))
        found = tree.get_version(encode_key((5,)), 10)
        assert found is not None and found.payload == b"p"
        assert tree.get_version(encode_key((5,)), 11) is None

    def test_duplicate_rejected(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        tree.insert(tv(5, start=10))
        with pytest.raises(DuplicateKeyError):
            tree.insert(tv(5, start=10))

    def test_versions_ordered(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        for start in (30, 10, 20):
            tree.insert(tv(7, start=start, payload=str(start).encode()))
        versions = tree.versions(encode_key((7,)))
        assert [v.start for v in versions] == [10, 20, 30]

    def test_last_version(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        assert tree.last_version(encode_key((7,))) is None
        for start in (10, 20, 30):
            tree.insert(tv(7, start=start))
        tree.insert(tv(8, start=5))
        assert tree.last_version(encode_key((7,))).start == 30
        assert tree.last_version(encode_key((8,))).start == 5

    def test_remove(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        tree.insert(tv(5, start=10))
        removed = tree.remove(encode_key((5,)), 10)
        assert removed.start == 10
        assert tree.get_version(encode_key((5,)), 10) is None
        with pytest.raises(KeyNotFoundError):
            tree.remove(encode_key((5,)), 10)

    def test_stamp_in_place(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        tree.insert(tv(5, start=1000, stamped=False))
        stamped = tree.stamp(encode_key((5,)), 1000, 2000)
        assert stamped.start == 2000 and stamped.stamped
        assert tree.get_version(encode_key((5,)), 2000) == stamped
        with pytest.raises(KeyNotFoundError):
            tree.stamp(encode_key((5,)), 1000, 2000)

    def test_range_scan(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        for key in range(20):
            tree.insert(tv(key, start=1))
        got = tree.range_scan(encode_key((5,)), encode_key((9,)))
        assert [v.key for v in got] == [encode_key((k,)) for k in (5, 6, 7,
                                                                   8)]
        unbounded = tree.range_scan(encode_key((18,)), None)
        assert len(unbounded) == 2


class TestSplits:
    def test_many_inserts_stay_sorted(self, tmp_path):
        tree, buffer, _ = make_tree(tmp_path)
        import random
        rng = random.Random(7)
        keys = list(range(500))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(tv(key, start=1))
        entries = tree.iter_entries()
        assert [e.key for e in entries] == \
            [encode_key((k,)) for k in range(500)]
        assert tree.height() >= 3
        assert check_tree(fetcher(buffer), tree.root_pgno) == []

    def test_root_pgno_never_changes(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        root = tree.root_pgno
        for key in range(300):
            tree.insert(tv(key, start=1))
        assert tree.root_pgno == root
        assert tree.height() > 1

    def test_split_events_fire(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        events = []
        tree.split_listeners.append(events.append)
        for key in range(200):
            tree.insert(tv(key, start=1))
        assert events, "expected at least one split"
        leaf_events = [e for e in events if not e.is_index]
        event = leaf_events[0]
        combined = event.left_entries + event.right_entries
        assert combined == sorted(combined, key=TupleVersion.sort_key)
        assert event.sep == event.right_entries[0].sort_key()

    def test_index_split_events(self, tmp_path):
        tree, _, _ = make_tree(tmp_path)
        events = []
        tree.split_listeners.append(events.append)
        for key in range(800):
            tree.insert(tv(key, start=1))
        assert any(e.is_index for e in events)

    def test_leaf_chain_after_splits(self, tmp_path):
        tree, buffer, _ = make_tree(tmp_path)
        for key in range(300):
            tree.insert(tv(key, start=1))
        pgnos = tree.leaf_pgnos()
        assert len(pgnos) == len(set(pgnos))
        assert len(pgnos) > 1

    def test_survives_flush_and_reload(self, tmp_path):
        tree, buffer, pager = make_tree(tmp_path, capacity=16)
        for key in range(300):
            tree.insert(tv(key, start=1))
        buffer.flush_all()
        buffer.drop_all()
        reloaded = BPlusTree(buffer, tree.root_pgno, PAGE_SIZE,
                             relation_id=1)
        assert len(reloaded.iter_entries()) == 300
        assert check_tree(
            lambda p: Page.from_bytes(pager.read_raw(p)),
            tree.root_pgno) == []

    def test_tiny_buffer_exercises_steal(self, tmp_path):
        tree, buffer, pager = make_tree(tmp_path, capacity=8)
        for key in range(400):
            tree.insert(tv(key, start=1))
        assert buffer.stats.evictions > 0
        buffer.flush_all()
        assert check_tree(
            lambda p: Page.from_bytes(pager.read_raw(p)),
            tree.root_pgno) == []

    def test_assign_seq_mode(self, tmp_path):
        tree, _, _ = make_tree(tmp_path, assign_seq=True)
        first = tree.insert(tv(1, start=1))
        second = tree.insert(tv(2, start=1))
        assert first.seq == 1
        assert second.seq == 2


class TestModelBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=60),
                  st.integers(min_value=1, max_value=1000)),
        min_size=1, max_size=150))
    def test_matches_dict_model(self, tmp_path_factory, ops):
        tmp_path = tmp_path_factory.mktemp("model")
        tree, buffer, _ = make_tree(tmp_path, capacity=16)
        model = {}
        for key, start in ops:
            record = tv(key, start=start, payload=f"{key}:{start}".encode())
            if (record.key, start) in model:
                with pytest.raises(DuplicateKeyError):
                    tree.insert(record)
            else:
                tree.insert(record)
                model[(record.key, start)] = record
        stored = tree.iter_entries()
        assert len(stored) == len(model)
        assert sorted(model) == [(e.key, e.start) for e in stored]
        assert check_tree(fetcher(buffer), tree.root_pgno) == []
        for (key, start), record in model.items():
            assert tree.get_version(key, start) == record


class TestRemovalHeavy:
    def test_remove_everything(self, tmp_path):
        tree, buffer, _ = make_tree(tmp_path)
        for key in range(150):
            tree.insert(tv(key, start=1))
        for key in range(150):
            tree.remove(encode_key((key,)), 1)
        assert tree.iter_entries() == []
        assert check_tree(fetcher(buffer), tree.root_pgno) == []

    def test_interleaved_insert_remove(self, tmp_path):
        tree, buffer, _ = make_tree(tmp_path)
        for key in range(200):
            tree.insert(tv(key, start=1))
            if key % 3 == 0:
                tree.remove(encode_key((key,)), 1)
        remaining = tree.iter_entries()
        assert len(remaining) == len([k for k in range(200) if k % 3])
        assert check_tree(fetcher(buffer), tree.root_pgno) == []
