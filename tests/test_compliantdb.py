"""Integration tests: CompliantDB lifecycle and clean audits."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.common.errors import AuditError, ConfigError

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("account", FieldType.STR),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT, **compliance):
    clock = SimulatedClock()
    config = DBConfig(engine=EngineConfig(page_size=1024, buffer_pages=32),
                      compliance=ComplianceConfig(mode=mode,
                                                  **compliance))
    db = CompliantDB.create(tmp_path / "db", config, clock=clock)
    db.create_relation(LEDGER)
    return db


def add_entries(db, start, count, account="ops"):
    for i in range(start, start + count):
        with db.transaction() as txn:
            db.insert(txn, "ledger",
                      {"entry_id": i, "account": account, "amount": i * 10})


class TestLifecycle:
    def test_create_and_use(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 20)
        assert db.get("ledger", (7,))["amount"] == 70
        assert len(db.scan("ledger")) == 20

    def test_regular_mode_has_no_plugin(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.REGULAR)
        add_entries(db, 0, 5)
        assert db.plugin is None
        with pytest.raises(AuditError):
            Auditor(db).audit()

    def test_compliance_log_receives_records(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 10)
        db.engine.checkpoint()
        counts = db.clog.record_counts()
        assert counts.get("NEW_TUPLE", 0) >= 10
        assert counts.get("STAMP_TRANS", 0) >= 10

    def test_new_tuple_reaches_worm_before_data_page(self, tmp_path):
        # the write-ordering invariant the recovery protocol depends on
        db = make_db(tmp_path)
        sizes = []
        original = db.worm.append

        def tracking_append(name, data, durable=True):
            sizes.append(name)
            return original(name, data, durable=durable)

        db.worm.append = tracking_append
        add_entries(db, 0, 5)
        db.engine.checkpoint()
        assert any(name.startswith("clog/") for name in sizes)

    def test_reopen_clean_shutdown(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 10)
        clock = db.clock
        db.close()
        reopened = CompliantDB.open(tmp_path / "db", clock)
        report = reopened.recover()
        assert report.losers == set()
        assert reopened.get("ledger", (3,))["amount"] == 30
        assert reopened.mode is ComplianceMode.LOG_CONSISTENT
        # clean shutdown: no START_RECOVERY noise on L
        counts = reopened.clog.record_counts()
        assert counts.get("START_RECOVERY", 0) == 0
        reopened.close()


class TestCleanAudit:
    @pytest.mark.parametrize("mode", [ComplianceMode.LOG_CONSISTENT,
                                      ComplianceMode.HASH_ON_READ])
    def test_audit_passes_after_normal_activity(self, tmp_path, mode):
        db = make_db(tmp_path, mode=mode)
        add_entries(db, 0, 30)
        for i in range(0, 30, 3):
            with db.transaction() as txn:
                db.update(txn, "ledger", {"entry_id": i, "account": "ops",
                                          "amount": 1})
        with db.transaction() as txn:
            db.delete(txn, "ledger", (5,))
        report = Auditor(db).audit()
        assert report.ok, report.summary()
        assert report.new_epoch == 2
        assert report.final_tuples > 30

    def test_audit_passes_with_aborts(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 10)
        txn = db.begin()
        db.insert(txn, "ledger",
                  {"entry_id": 99, "account": "x", "amount": 1})
        db.engine.checkpoint()  # steal: uncommitted tuple reaches disk
        db.abort(txn)
        report = Auditor(db).audit()
        assert report.ok, report.summary()
        assert db.get("ledger", (99,)) is None

    def test_audit_passes_with_aborts_hash_on_read(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        add_entries(db, 0, 10)
        txn = db.begin()
        db.insert(txn, "ledger",
                  {"entry_id": 99, "account": "x", "amount": 1})
        db.engine.checkpoint()
        db.abort(txn)
        db.engine.checkpoint()  # flush the undo: UNDO record on L
        counts = db.clog.record_counts()
        assert counts.get("ABORT", 0) == 1
        assert counts.get("UNDO", 0) >= 1
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_multiple_epochs(self, tmp_path):
        db = make_db(tmp_path)
        auditor = Auditor(db)
        for round_no in range(3):
            add_entries(db, round_no * 10, 10)
            report = auditor.audit()
            assert report.ok, report.summary()
        assert db.epoch == 4
        assert len(db.scan("ledger")) == 30

    def test_dry_run_does_not_rotate(self, tmp_path):
        db = make_db(tmp_path)
        add_entries(db, 0, 5)
        report = Auditor(db).audit(rotate=False)
        assert report.ok
        assert report.new_epoch is None
        assert db.epoch == 1
        # a later real audit still passes
        assert Auditor(db).audit().ok

    def test_audit_after_heavy_splits(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        add_entries(db, 0, 300)
        report = Auditor(db).audit()
        assert report.ok, report.summary()
        assert report.read_hashes_checked >= 0

    def test_audit_with_small_cache_reads(self, tmp_path):
        # a small cache forces evictions and re-reads: READ records flow
        clock = SimulatedClock()
        config = DBConfig(engine=EngineConfig(page_size=1024,
                                              buffer_pages=12),
                          compliance=ComplianceConfig(
                              mode=ComplianceMode.HASH_ON_READ))
        db = CompliantDB.create(tmp_path / "db", config, clock=clock)
        db.create_relation(LEDGER)
        add_entries(db, 0, 200)
        for i in range(0, 200, 7):
            assert db.get("ledger", (i,))["amount"] == i * 10
        counts = db.clog.record_counts()
        assert counts.get("READ_HASH", 0) > 0
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_maintenance_produces_witness_and_heartbeat(self, tmp_path):
        db = make_db(tmp_path, regret_interval=minutes(5))
        add_entries(db, 0, 3)
        db.pass_time(minutes(20))
        witnesses = db.worm.list_files("witness/")
        assert len(witnesses) >= 3
        counts = db.clog.record_counts()
        assert counts.get("STAMP_TRANS", 0) > 3  # heartbeats present
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_audit_detects_nothing_on_empty_db(self, tmp_path):
        db = make_db(tmp_path)
        report = Auditor(db).audit()
        assert report.ok, report.summary()
