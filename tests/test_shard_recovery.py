"""2PC crash matrix: every interleaving of coordinator and shard death
must resolve deterministically from durable state alone.

The invariant under test (presumed abort): a prepared transaction
commits **iff** its gid reached the coordinator's decision journal.
Nothing else — not the coordinator's memory, not which shards got the
phase-two message — may influence the outcome.  And whatever the
outcome, the merged distributed audit must come back clean: recovery
itself is auditable.
"""

import pytest

from repro.common.codec import Field, FieldType, Schema
from repro.common.errors import (RecoveryError, ShardCommitError,
                                 TransactionStateError)
from repro.shard import DistributedAuditor, ShardedDB

T = Schema("t", [Field("a", FieldType.INT), Field("b", FieldType.INT)],
           key_fields=["a"])


def make_sharded(tmp_path):
    db = ShardedDB.create(tmp_path / "s", shards=2)
    db.create_relation(T)
    return db


def prepare_cross_shard(db, lo=1):
    """A transaction prepared on both shards, decision not yet taken."""
    txn = db.begin()
    db.insert(txn, "t", {"a": lo, "b": lo})          # shard 0
    db.insert(txn, "t", {"a": lo + 1, "b": lo + 1})  # shard 1
    for shard in sorted(txn.writes):
        db.backends[shard].prepare(txn.handles[shard], txn.gid)
    return txn


def audit_clean(db):
    report = DistributedAuditor(db).audit()
    assert report.ok, report.summary()
    assert report.verify(db.auditor_key)


class TestCoordinatorDeath:
    def test_death_before_decision_presumed_aborts(self, tmp_path):
        db = make_sharded(tmp_path)
        prepare_cross_shard(db)
        # coordinator dies before journaling: simulate by abandoning
        # the coordinator object and crashing every shard
        for backend in db.backends:
            backend.crash()
        db.journal.close()

        reopened = ShardedDB.open(tmp_path / "s")  # recovers via journal
        assert reopened.get("t", (1,)) is None
        assert reopened.get("t", (2,)) is None
        audit_clean(reopened)
        reopened.close()

    def test_death_after_decision_commits_everywhere(self, tmp_path):
        db = make_sharded(tmp_path)
        txn = prepare_cross_shard(db)
        db.journal.log_commit(txn.gid)  # the decision is durable
        for backend in db.backends:
            backend.crash()
        db.journal.close()

        reopened = ShardedDB.open(tmp_path / "s")
        assert reopened.get("t", (1,))["b"] == 1
        assert reopened.get("t", (2,))["b"] == 2
        audit_clean(reopened)
        reopened.close()

    def test_recovered_commit_is_durable_across_another_cycle(
            self, tmp_path):
        db = make_sharded(tmp_path)
        txn = prepare_cross_shard(db)
        db.journal.log_commit(txn.gid)
        for backend in db.backends:
            backend.crash()
        db.journal.close()

        first = ShardedDB.open(tmp_path / "s")
        assert first.get("t", (1,)) is not None
        first.close()
        second = ShardedDB.open(tmp_path / "s")
        assert second.get("t", (1,))["b"] == 1
        audit_clean(second)
        second.close()


class TestShardDeath:
    def test_shard_crash_between_prepare_and_commit(self, tmp_path):
        db = make_sharded(tmp_path)
        txn = prepare_cross_shard(db)
        db.journal.log_commit(txn.gid)
        # shard 1 got the decision and committed; shard 0 died first
        db.backends[1].commit(txn.handles[1])
        db.backends[0].crash()
        db.backends[0].recover(
            in_doubt_commits=db.journal.committed_gids())
        assert db.get("t", (1,))["b"] == 1  # rolled forward on shard 0
        assert db.get("t", (2,))["b"] == 2
        audit_clean(db)
        db.close()

    def test_in_doubt_without_journal_refuses_to_guess(self, tmp_path):
        db = make_sharded(tmp_path)
        prepare_cross_shard(db)
        db.backends[0].crash()
        with pytest.raises(RecoveryError):
            db.backends[0].recover()  # no resolver: must not guess

    def test_phase_two_failure_surfaces_shard_commit_error(
            self, tmp_path, monkeypatch):
        db = make_sharded(tmp_path)
        txn = db.begin()
        db.insert(txn, "t", {"a": 1, "b": 1})
        db.insert(txn, "t", {"a": 2, "b": 2})
        real_commit = db.backends[1].commit

        def dying_commit(handle):
            raise OSError("shard 1 unreachable")

        monkeypatch.setattr(db.backends[1], "commit", dying_commit)
        with pytest.raises(ShardCommitError) as exc:
            db.commit(txn)
        # the transaction IS committed: the decision was journaled
        assert exc.value.gid == txn.gid
        assert list(exc.value.failures) == [1]
        assert txn.gid in db.journal.committed_gids()
        assert db.get("t", (1,))["b"] == 1  # shard 0 already applied

        # shard 1 catches up through the coordinator's journal
        monkeypatch.setattr(db.backends[1], "commit", real_commit)
        db.backends[1].crash()
        db.backends[1].recover(
            in_doubt_commits=db.journal.committed_gids())
        assert db.get("t", (2,))["b"] == 2
        audit_clean(db)
        db.close()


class TestPrepareSemantics:
    def test_prepared_txn_blocks_new_writers_until_resolved(
            self, tmp_path):
        db = make_sharded(tmp_path)
        txn = prepare_cross_shard(db)
        # the prepared transaction still holds its locks on both shards
        from repro.common.errors import TransactionError
        probe = db.backends[0].begin()
        with pytest.raises(TransactionError):
            db.backends[0].insert(probe, "t", {"a": 1, "b": 99})
        try:
            db.backends[0].abort(probe)
        except TransactionError:
            pass  # deadlock handling may have aborted it already
        # resolving the 2PC txn releases the locks
        db.journal.log_commit(txn.gid)
        for shard in sorted(txn.handles):
            db.backends[shard].commit(txn.handles[shard])
        with db.transaction() as fresh:
            db.update(fresh, "t", {"a": 1, "b": 99})
        assert db.get("t", (1,))["b"] == 99
        db.close()

    def test_prepared_txn_rejects_further_writes(self, tmp_path):
        db = make_sharded(tmp_path)
        txn = prepare_cross_shard(db)
        with pytest.raises(TransactionStateError):
            db.backends[0].insert(txn.handles[0], "t",
                                  {"a": 9, "b": 9})
        for shard in sorted(txn.handles):  # clean up: abort both
            db.backends[shard].abort(txn.handles[shard])
        db.close()

    def test_aborted_prepare_leaves_no_trace(self, tmp_path):
        db = make_sharded(tmp_path)
        txn = prepare_cross_shard(db)
        for shard in sorted(txn.handles):
            db.backends[shard].abort(txn.handles[shard])
        assert db.scan("t") == []
        audit_clean(db)
        db.close()
