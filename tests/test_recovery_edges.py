"""Recovery-analysis edge cases (Section IV-B).

Covers the WAL analysis pass on adversarial interleavings of
ABORT/COMMIT/system records, torn and truncated log tails, and —
end-to-end — what the *audit* says after recovery ran over each shape:
honest crashes must stay COMPLIANT, a doctored WAL tail must not.
"""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.common.errors import WalError
from repro.wal import WalRecord, WalRecordType, analyse
from repro.wal.log import TransactionLog

ROWS = Schema("rows", [
    Field("k", FieldType.INT),
    Field("v", FieldType.INT),
], key_fields=["k"])


def rec(rtype, txn=0, **kw):
    return WalRecord(rtype, txn_id=txn, **kw)


class TestAnalyse:
    def test_interleaved_outcomes(self):
        plan = analyse([
            rec(WalRecordType.BEGIN, 1),
            rec(WalRecordType.BEGIN, 2),
            rec(WalRecordType.INSERT, 1),
            rec(WalRecordType.COMMIT, 1, commit_time=100),
            rec(WalRecordType.BEGIN, 3),
            rec(WalRecordType.ABORT, 2),
            rec(WalRecordType.INSERT, 3),
        ])
        assert plan.committed == {1: 100}
        assert plan.aborted == {2}
        assert plan.losers == {3}
        assert plan.outcome_of(1) == "committed"
        assert plan.outcome_of(2) == "aborted"
        assert plan.outcome_of(3) == "loser"

    def test_system_records_carry_no_outcome(self):
        plan = analyse([
            rec(WalRecordType.CHECKPOINT),
            rec(WalRecordType.TIME_SPLIT),
            rec(WalRecordType.PHYS_DELETE),
        ])
        assert not plan.committed
        assert not plan.aborted
        assert not plan.losers
        assert len(plan.records) == 3

    def test_abort_after_activity_wins_over_loser(self):
        plan = analyse([
            rec(WalRecordType.BEGIN, 4),
            rec(WalRecordType.INSERT, 4),
            rec(WalRecordType.ABORT, 4),
        ])
        assert plan.aborted == {4}
        assert plan.losers == set()

    def test_unknown_record_type_raises(self):
        record = rec(WalRecordType.BEGIN, 7)
        record.rtype = 99  # a type recovery was never taught to classify
        with pytest.raises(WalError):
            analyse([record])


class TestTornTail:
    def test_partial_final_frame_is_ignored(self, tmp_path):
        log = TransactionLog(tmp_path / "wal.log")
        for txn in range(3):
            log.append(rec(WalRecordType.BEGIN, txn))
        log.flush()
        log.close()
        torn = rec(WalRecordType.COMMIT, 9, commit_time=5).to_bytes()
        with open(tmp_path / "wal.log", "ab") as fh:
            fh.write(torn[:len(torn) // 2])

        log = TransactionLog(tmp_path / "wal.log")
        records = list(log.iter_records())
        log.close()
        assert [r.txn_id for r in records] == [0, 1, 2]
        plan = analyse(records)
        assert plan.losers == {0, 1, 2}

    def test_corrupt_mid_log_byte_ends_replay(self, tmp_path):
        log = TransactionLog(tmp_path / "wal.log")
        first = log.append(rec(WalRecordType.BEGIN, 1))
        log.append(rec(WalRecordType.COMMIT, 1, commit_time=7))
        log.flush()
        log.close()
        data = (tmp_path / "wal.log").read_bytes()
        flipped = bytearray(data)
        flipped[-3] ^= 0xFF  # CRC of the final frame no longer matches
        (tmp_path / "wal.log").write_bytes(bytes(flipped))

        log = TransactionLog(tmp_path / "wal.log")
        records = list(log.iter_records())
        log.close()
        assert [r.lsn for r in records] == [first]
        assert analyse(records).losers == {1}


def make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=16),
                        compliance=ComplianceConfig(
                            mode=mode,
                            regret_interval=minutes(5))))
    db.create_relation(ROWS)
    return db


def put(db, k, v):
    with db.transaction() as txn:
        db.insert(txn, "rows", {"k": k, "v": v})


class TestCrashInterleavingsThenAudit:
    def test_commit_abort_loser_mix(self, tmp_path):
        db = make_db(tmp_path)
        put(db, 1, 1)                                   # committed
        rolled = db.begin()
        db.insert(rolled, "rows", {"k": 2, "v": 2})
        db.abort(rolled)                                # explicit ABORT
        loser = db.begin()
        db.insert(loser, "rows", {"k": 3, "v": 3})      # no outcome
        db.engine.wal.flush()
        db.crash()
        db.recover()
        assert db.get("rows", (1,))["v"] == 1
        assert db.get("rows", (2,)) is None
        assert db.get("rows", (3,)) is None
        assert db.clog.record_counts().get("START_RECOVERY", 0) == 1
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_aborted_txn_with_stolen_page(self, tmp_path):
        db = make_db(tmp_path)
        put(db, 1, 1)
        rolled = db.begin()
        db.insert(rolled, "rows", {"k": 5, "v": 5})
        db.engine.wal.flush()
        db.engine.checkpoint()      # uncommitted tuple reaches disk
        db.abort(rolled)
        db.crash()
        db.recover()
        assert db.get("rows", (5,)) is None
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_recover_crash_recover(self, tmp_path):
        # START_RECOVERY interleaving: a second crash right after
        # recovery, before any new work, must still audit clean
        db = make_db(tmp_path)
        for k in range(6):
            put(db, k, k)
        db.crash()
        db.recover()
        db.crash()
        db.recover()
        assert len(db.scan("rows")) == 6
        assert db.clog.record_counts().get("START_RECOVERY", 0) == 2
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_truncated_wal_tail_is_detected_by_audit(self, tmp_path):
        # an adversary truncates the local WAL after the crash, erasing
        # the last committed transaction; the WORM mirror still has it,
        # so the audit must refuse to call the database compliant
        db = make_db(tmp_path)
        for k in range(5):
            put(db, k, k)
        db.crash()
        wal_path = db.engine.wal.path
        data = wal_path.read_bytes()
        begin_offsets = []
        offset = 0
        while offset < len(data):
            record, nxt = WalRecord.from_bytes(data, offset)
            if record.rtype == WalRecordType.BEGIN:
                begin_offsets.append(offset)
            offset = nxt
        with open(wal_path, "r+b") as fh:
            fh.truncate(begin_offsets[-1])
        db.recover()
        report = Auditor(db).audit(rotate=False)
        assert not report.ok
        assert report.codes() & {"log-wal-divergence",
                                 "recovery-inconsistent",
                                 "completeness", "abort-and-commit"}, \
            report.summary()
