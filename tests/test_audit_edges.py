"""Auditor edge cases: forged artefacts, malformed logs, protocol abuse."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.common.errors import AuditError
from repro.core import sorted_completeness_check
from repro.core.records import CLogRecord, CLogType
from repro.core.snapshot import snapshot_name
from repro.crypto import AuditorKey

ROWS = Schema("rows", [
    Field("k", FieldType.INT),
    Field("v", FieldType.INT),
], key_fields=["k"])


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT, key=None):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=16),
                        compliance=ComplianceConfig(mode=mode)),
        auditor_key=key)
    db.create_relation(ROWS)
    for k in range(10):
        with db.transaction() as txn:
            db.insert(txn, "rows", {"k": k, "v": k})
    return db


class TestSnapshotTrust:
    def test_wrong_auditor_key_fails(self, tmp_path):
        db = make_db(tmp_path, key=AuditorKey.generate("alice"))
        report = Auditor(db, key=AuditorKey.generate("mala")).audit()
        assert not report.ok
        assert "snapshot" in report.codes()

    def test_missing_snapshot_fails(self, tmp_path):
        db = make_db(tmp_path)
        # simulate a lost genesis snapshot by bumping the epoch: there is
        # no snap for epoch 2
        meta = db.engine.buffer.get(0)
        meta.meta["audit_epoch"] = 2
        db.engine.buffer.mark_dirty(meta)
        from repro.core.compliance_log import ComplianceLog
        db.clog = ComplianceLog(db.worm, 2)
        db.plugin.rotate_epoch(db.clog)
        report = Auditor(db).audit()
        assert not report.ok
        assert "snapshot" in report.codes()


class TestProtocolAbuse:
    def test_conflicting_duplicate_stamp(self, tmp_path):
        db = make_db(tmp_path)
        txn_id = sorted(db.plugin.commit_map)[0]
        db.clog.append(CLogRecord(CLogType.STAMP_TRANS, txn_id=txn_id,
                                  commit_time=999_999_999_999))
        report = Auditor(db).audit()
        assert not report.ok
        assert report.codes() & {"stamp-duplicate", "stamp-order"}

    def test_benign_duplicate_stamp_tolerated(self, tmp_path):
        # exact duplicates occur legitimately during recovery replay
        db = make_db(tmp_path)
        txn_id, commit_time = sorted(db.plugin.commit_map.items())[-1]
        db.clog.append(CLogRecord(CLogType.STAMP_TRANS, txn_id=txn_id,
                                  commit_time=commit_time))
        report = Auditor(db).audit()
        assert report.ok, report.summary()

    def test_page_reset_outside_recovery(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.HASH_ON_READ)
        db.clog.append(CLogRecord(CLogType.PAGE_RESET, pgno=3,
                                  left_content=[]))
        report = Auditor(db).audit()
        assert not report.ok
        assert "reset-outside-recovery" in report.codes()

    def test_migrate_record_with_missing_worm_page(self, tmp_path):
        db = make_db(tmp_path)
        db.clog.append(CLogRecord(CLogType.MIGRATE, relation_id=2, pgno=3,
                                  hist_ref="hist/r2-424242",
                                  split_time=1))
        report = Auditor(db).audit()
        assert not report.ok
        assert "migrate-missing-page" in report.codes()

    def test_unresolved_new_tuple(self, tmp_path):
        # a NEW_TUPLE whose transaction never commits or aborts
        from repro.storage.record import TupleVersion
        db = make_db(tmp_path)
        ghost = TupleVersion(relation_id=2, key=b"\x01zz", start=424242,
                             stamped=False, eol=False, seq=0, payload=b"")
        db.clog.append(CLogRecord(CLogType.NEW_TUPLE, pgno=3,
                                  tuple_bytes=ghost.to_bytes()))
        report = Auditor(db).audit()
        assert not report.ok
        assert "tuple-of-unresolved-txn" in report.codes()

    def test_regular_mode_cannot_be_audited(self, tmp_path):
        db = make_db(tmp_path, mode=ComplianceMode.REGULAR)
        with pytest.raises(AuditError):
            Auditor(db).audit()


class TestAuditReportErgonomics:
    def test_summary_mentions_status_and_counts(self, tmp_path):
        db = make_db(tmp_path)
        report = Auditor(db).audit()
        text = report.summary()
        assert "COMPLIANT" in text
        assert str(report.final_tuples) in text

    def test_findings_capped_in_summary(self, tmp_path):
        from repro.core.audit import AuditReport
        report = AuditReport(epoch=1)
        for i in range(30):
            report.add("x", f"finding {i}")
        text = report.summary()
        assert "and 10 more" in text

    def test_phase_timings_recorded(self, tmp_path):
        db = make_db(tmp_path)
        report = Auditor(db).audit()
        assert {"snapshot", "log", "final",
                "checks"} <= report.phase_seconds.keys()
        assert "rotate" in report.phase_seconds  # passed + rotated


class TestSortedCompleteness:
    def test_accepts_equal_multisets(self):
        snapshot, log = [b"a", b"b"], [b"c", b"c"]
        assert sorted_completeness_check(snapshot, log,
                                         [b"c", b"a", b"c", b"b"])

    def test_rejects_missing_tuple(self):
        assert not sorted_completeness_check([b"a"], [b"b"], [b"a"])

    def test_rejects_extra_tuple(self):
        assert not sorted_completeness_check([b"a"], [], [b"a", b"x"])

    def test_multiset_semantics(self):
        assert not sorted_completeness_check([b"a"], [b"a"], [b"a"])
