"""Tests for Expiry policies, vacuuming, and shredding audits (§VIII)."""

import pytest

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.common.errors import ShreddingError

PII = Schema("pii", [
    Field("person_id", FieldType.INT),
    Field("ssn", FieldType.STR),
], key_fields=["person_id"])

RETENTION = minutes(30)


def make_db(tmp_path, mode=ComplianceMode.LOG_CONSISTENT,
            migration=False):
    clock = SimulatedClock()
    config = DBConfig(
        engine=EngineConfig(page_size=1024, buffer_pages=32),
        compliance=ComplianceConfig(mode=mode,
                                    regret_interval=minutes(5),
                                    worm_migration=migration,
                                    split_threshold=0.6))
    db = CompliantDB.create(tmp_path / "db", config, clock=clock)
    db.create_relation(PII)
    db.set_retention("pii", RETENTION)
    return db


def add_people(db, start, count):
    for i in range(start, start + count):
        with db.transaction() as txn:
            db.insert(txn, "pii", {"person_id": i, "ssn": f"s-{i}"})


class TestExpiryRelation:
    def test_retention_recorded_and_versioned(self, tmp_path):
        db = make_db(tmp_path)
        assert db.shredder.retention_of("pii") == RETENTION
        before = db.clock.now()
        db.pass_time(minutes(10))
        db.set_retention("pii", minutes(60))
        assert db.shredder.retention_of("pii") == minutes(60)
        assert db.shredder.retention_of("pii", at=before) == RETENTION

    def test_retention_requires_relation(self, tmp_path):
        db = make_db(tmp_path)
        from repro.common.errors import RelationNotFoundError
        with pytest.raises(RelationNotFoundError):
            db.set_retention("ghost", minutes(5))

    def test_invalid_retention_rejected(self, tmp_path):
        db = make_db(tmp_path)
        with pytest.raises(ShreddingError):
            db.set_retention("pii", 0)


class TestVacuum:
    def test_nothing_expires_early(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 10)
        report = db.vacuum()
        assert report.shredded_live == 0

    def test_active_records_survive_expiry(self, tmp_path):
        # the newest live version stays even when old enough
        db = make_db(tmp_path)
        add_people(db, 0, 10)
        db.pass_time(RETENTION + minutes(5))
        report = db.vacuum()
        assert report.shredded_live == 0
        assert db.get("pii", (3,)) is not None

    def test_superseded_versions_are_shredded(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 10)
        db.pass_time(minutes(1))
        for i in range(10):
            with db.transaction() as txn:
                db.update(txn, "pii", {"person_id": i, "ssn": "redacted"})
        db.pass_time(RETENTION + minutes(5))
        report = db.vacuum()
        assert report.shredded_live == 10  # the 10 original versions
        history = db.versions("pii", (4,))
        assert len(history) == 1
        assert history[0].row["ssn"] == "redacted"

    def test_dead_tuples_fully_shredded(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 5)
        with db.transaction() as txn:
            db.delete(txn, "pii", (2,))
        db.pass_time(RETENTION + minutes(5))
        report = db.vacuum()
        # person 2: payload version + end-of-life marker both eligible
        assert report.shredded_live == 2
        assert db.versions("pii", (2,)) == []

    def test_shredded_records_on_log(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 3)
        with db.transaction() as txn:
            db.delete(txn, "pii", (0,))
        db.pass_time(RETENTION + minutes(5))
        db.vacuum()
        counts = db.clog.record_counts()
        assert counts.get("SHREDDED", 0) == 2

    @pytest.mark.parametrize("mode", [ComplianceMode.LOG_CONSISTENT,
                                      ComplianceMode.HASH_ON_READ])
    def test_audit_passes_after_legal_shredding(self, tmp_path, mode):
        db = make_db(tmp_path, mode=mode)
        add_people(db, 0, 20)
        db.pass_time(minutes(1))
        for i in range(20):
            with db.transaction() as txn:
                db.update(txn, "pii", {"person_id": i, "ssn": "x"})
        db.pass_time(RETENTION + minutes(5))
        report = db.vacuum()
        assert report.shredded_live == 20
        audit = Auditor(db).audit()
        assert audit.ok, audit.summary()
        assert audit.shredded_verified == 20

    def test_vacuum_is_idempotent(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 5)
        db.pass_time(minutes(1))
        for i in range(5):
            with db.transaction() as txn:
                db.update(txn, "pii", {"person_id": i, "ssn": "x"})
        db.pass_time(RETENTION + minutes(5))
        assert db.vacuum().shredded_live == 5
        assert db.vacuum().shredded_live == 0
        assert Auditor(db).audit().ok

    def test_evidence_gone_after_next_audit(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 5)
        db.pass_time(minutes(1))
        with db.transaction() as txn:
            db.update(txn, "pii", {"person_id": 1, "ssn": "x"})
        db.pass_time(RETENTION + minutes(5))
        db.vacuum()
        old_log = db.clog.name
        audit = Auditor(db).audit()
        assert audit.ok
        # the epoch containing the SHREDDED evidence is sealed; once its
        # retention lapses it can be deleted and the tuple truly gone
        assert db.worm.meta(old_log).sealed

    def test_shredding_incomplete_fails_audit(self, tmp_path):
        # a SHREDDED record whose tuple is still present => audit failure
        from repro.core.records import CLogRecord, CLogType
        db = make_db(tmp_path)
        add_people(db, 0, 5)
        db.pass_time(RETENTION + minutes(5))
        info = db.engine.relation("pii")
        from repro.common.codec import encode_key
        versions = info.tree.versions(encode_key((1,)))
        db.engine.run_stamper()
        versions = info.tree.versions(encode_key((1,)))
        victim = versions[0]
        db.plugin.log_shredded(victim, 0, db.clock.now())
        audit = Auditor(db).audit()
        assert not audit.ok
        assert "shredded-still-present" in audit.codes()


class TestVacuumCrash:
    def test_crash_mid_vacuum_finished_by_recovery(self, tmp_path):
        db = make_db(tmp_path)
        add_people(db, 0, 8)
        db.pass_time(minutes(1))
        for i in range(8):
            with db.transaction() as txn:
                db.update(txn, "pii", {"person_id": i, "ssn": "x"})
        db.engine.run_stamper()
        db.engine.checkpoint()
        db.pass_time(RETENTION + minutes(5))
        # simulate the crash window: SHREDDED records reach WORM but the
        # physical erasure is lost with the buffer cache
        info = db.engine.relation("pii")
        from repro.common.codec import encode_key
        victims = [info.tree.versions(encode_key((i,)))[0]
                   for i in range(8)]
        for victim in victims:
            db.plugin.log_shredded(victim, 0, db.clock.now())
        db.plugin.barrier()  # the vacuum's phase-1 durability barrier
        db.crash()
        db.recover()  # finish_pending completes the vacuum
        for i in range(8):
            assert len(db.versions("pii", (i,))) == 1
        audit = Auditor(db).audit()
        assert audit.ok, audit.summary()


class TestWormShredding:
    def test_vacuum_reaches_worm_historical_pages(self, tmp_path):
        db = make_db(tmp_path, migration=True)
        add_people(db, 0, 4)
        # hammer one tuple so history migrates to WORM
        for round_no in range(120):
            db.clock.advance(1000)
            with db.transaction() as txn:
                db.update(txn, "pii", {"person_id": 1,
                                       "ssn": f"v{round_no}"})
            db.engine.run_stamper()
        assert db.engine.histdir.page_count() > 0
        db.pass_time(RETENTION + minutes(10))
        report = db.vacuum()
        assert report.shredded_worm > 0
        # history on WORM is gone from temporal queries
        history = db.versions("pii", (1,))
        assert len(history) == 1
        audit = Auditor(db).audit()
        assert audit.ok, audit.summary()
