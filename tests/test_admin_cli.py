"""Tests for the repro-admin command-line tool."""

import pytest

from repro import (ComplianceMode, CompliantDB, DBConfig, EngineConfig,
                   ComplianceConfig, Field, FieldType, Schema,
                   SimulatedClock, minutes)
from repro.core import Adversary
from repro.tools.admin import main

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("note", FieldType.STR),
], key_fields=["entry_id"])


@pytest.fixture
def db_path(tmp_path):
    db = CompliantDB.create(
        tmp_path / "db", clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=16),
                        compliance=ComplianceConfig(
                            mode=ComplianceMode.LOG_CONSISTENT,
                            regret_interval=minutes(5))))
    db.create_relation(LEDGER)
    for i in range(5):
        with db.transaction() as txn:
            db.insert(txn, "ledger", {"entry_id": i, "note": f"n{i}"})
    with db.transaction() as txn:
        db.update(txn, "ledger", {"entry_id": 2, "note": "edited"})
    db.place_hold("ledger", key=(1,), case_ref="CASE-1")
    db.close()
    return str(tmp_path / "db")


class TestAdminCLI:
    def test_info(self, db_path, capsys):
        assert main(["info", db_path]) == 0
        out = capsys.readouterr().out
        assert "mode:          log-consistent" in out
        assert "ledger: 5 live row(s)" in out

    def test_audit_clean(self, db_path, capsys):
        assert main(["audit", db_path]) == 0
        out = capsys.readouterr().out
        assert "COMPLIANT" in out

    def test_audit_dry_run(self, db_path, capsys):
        assert main(["audit", db_path, "--no-rotate"]) == 0
        assert main(["audit", db_path, "--no-rotate"]) == 0

    def test_audit_detects_tampering(self, db_path, capsys):
        clock = SimulatedClock()
        db = CompliantDB.open(db_path, clock)
        db.recover()
        mala = Adversary(db)
        mala.settle()
        mala.shred_tuple("ledger", (3,))
        db.close()
        assert main(["audit", db_path, "--no-rotate"]) == 1
        out = capsys.readouterr().out
        assert "TAMPERING" in out

    def test_forensics_localises(self, db_path, capsys):
        clock = SimulatedClock()
        db = CompliantDB.open(db_path, clock)
        db.recover()
        mala = Adversary(db)
        mala.settle()
        mala.shred_tuple("ledger", (3,))
        db.close()
        assert main(["forensics", db_path]) == 1
        out = capsys.readouterr().out
        assert "missing" in out

    def test_history(self, db_path, capsys):
        assert main(["history", db_path, "ledger", "2"]) == 0
        out = capsys.readouterr().out
        assert "edited" in out
        assert out.count("@") >= 2  # two versions

    def test_history_missing_key(self, db_path, capsys):
        assert main(["history", db_path, "ledger", "404"]) == 0
        assert "no recorded versions" in capsys.readouterr().out

    def test_holds(self, db_path, capsys):
        assert main(["holds", db_path]) == 0
        out = capsys.readouterr().out
        assert "CASE-1" in out
        assert "ACTIVE" in out

    def test_vacuum(self, db_path, capsys):
        assert main(["vacuum", db_path]) == 0
        assert "shredded 0" in capsys.readouterr().out
