"""Section VII(a): space overhead of the compliance architecture.

Paper numbers (100 K transactions, 10 warehouses):

* the compliance log L grows to ≈ 100 MB — about 1 KB per transaction;
* the hash-page-on-read READ hashes occupy 3 MB with a 256 MB cache but
  44 MB with a 32 MB cache — the hash log grows as the cache shrinks;
* the PGNO (4 B) + tuple-order-number (2 B) fields cost **under 10 %**;
* WORM migration: STOCK occupies 70 K ordinary B+-tree pages but only
  18 K live + 55 K historical pages as a time-split tree (threshold 0.5).

This benchmark reproduces each of those four rows at the configured scale.
"""

import pytest

from repro.bench import (bench_scale, bench_txns, build_db, emit,
                         format_table, make_driver)
from repro.common.config import ComplianceMode
from repro.storage.record import RECORD_HEADER_SIZE


def _run(tmp_path, mode, pages_after_load, cache_ratio,
         migration=False):
    scale = bench_scale()
    buffer_pages = max(16, int(pages_after_load * cache_ratio))
    db = build_db(tmp_path, mode, scale, buffer_pages=buffer_pages,
                  worm_migration=migration)
    driver = make_driver(db, scale)
    result = driver.run(bench_txns())
    return db, result


def test_space_overhead(benchmark, tmp_path, pages_after_load, capsys):
    def workload():
        lc_db, lc_result = _run(tmp_path / "lc",
                                ComplianceMode.LOG_CONSISTENT,
                                pages_after_load, cache_ratio=0.10)
        hr_big, _ = _run(tmp_path / "hr-big",
                         ComplianceMode.HASH_ON_READ,
                         pages_after_load, cache_ratio=0.60)
        hr_small, _ = _run(tmp_path / "hr-small",
                           ComplianceMode.HASH_ON_READ,
                           pages_after_load, cache_ratio=0.05)
        return lc_db, lc_result, hr_big, hr_small

    lc_db, lc_result, hr_big, hr_small = benchmark.pedantic(
        workload, rounds=1, iterations=1)

    txns = lc_result.transactions
    l_size = lc_db.clog.size()
    rows = [["compliance log L", f"{l_size / 1024:.1f} KiB",
             f"{l_size / txns:.0f} B/txn",
             "paper: ~100 MB / 100 K txns ≈ 1 KB/txn"]]

    def read_hash_bytes(db):
        # the plugin keeps the histogram as it writes — no log re-parse
        counts = db.plugin.stats.records
        # READ_HASH records are fixed-size: count the bytes they occupy
        from repro.core.records import CLogRecord, CLogType
        sample = CLogRecord(CLogType.READ_HASH, pgno=1,
                            page_hash=b"\x00" * 64).to_bytes()
        return counts.get("READ_HASH", 0), \
            counts.get("READ_HASH", 0) * len(sample)

    big_count, big_bytes = read_hash_bytes(hr_big)
    small_count, small_bytes = read_hash_bytes(hr_small)
    rows.append(["READ hashes, large cache", f"{big_count} records",
                 f"{big_bytes / 1024:.1f} KiB", "paper: 3 MB @ 256 MB"])
    rows.append(["READ hashes, small cache", f"{small_count} records",
                 f"{small_bytes / 1024:.1f} KiB", "paper: 44 MB @ 32 MB"])
    ratio = small_bytes / big_bytes if big_bytes else float("inf")
    rows.append(["hash-log growth (small/large)", f"{ratio:.1f}x", "",
                 "paper: ~14.7x as cache shrinks 8x"])

    # per-tuple metadata: 4-byte PGNO per NEW_TUPLE + 4-byte order number
    tuples = [r for _, r in lc_db.clog.records()
              if r.rtype.name == "NEW_TUPLE"]
    if tuples:
        avg_tuple = sum(len(r.tuple_bytes) for r in tuples) / len(tuples)
        overhead = (4 + 4) / avg_tuple
        rows.append(["PGNO + order-number overhead",
                     f"{100 * overhead:.1f}%",
                     f"avg tuple {avg_tuple:.0f} B", "paper: under 10%"])

    emit(capsys, format_table(
        "Section VII(a): space overhead",
        ["metric", "value", "detail", "paper"], rows))
    assert l_size > 0
    assert small_bytes > big_bytes  # smaller cache => more READ hashes


def test_space_tsb_migration(benchmark, tmp_path, pages_after_load,
                             capsys):
    """STOCK as a normal B+-tree vs a time-split tree (threshold 0.5)."""
    def workload():
        plain, _ = _run(tmp_path / "plain",
                        ComplianceMode.LOG_CONSISTENT, pages_after_load,
                        cache_ratio=0.3, migration=False)
        tsb, _ = _run(tmp_path / "tsb", ComplianceMode.LOG_CONSISTENT,
                      pages_after_load, cache_ratio=0.3, migration=True)
        return plain, tsb

    plain, tsb = benchmark.pedantic(workload, rounds=1, iterations=1)
    rows = []
    for db, label in ((plain, "ordinary B+-tree"),
                      (tsb, "time-split B+-tree")):
        info = db.engine.relation("stock")
        live = len(info.tree.leaf_pgnos())
        hist = db.engine.histdir.page_count(info.relation_id)
        rows.append([label, live, hist,
                     "audited" if hist == 0 else
                     f"{hist} pages exempt from future audits"])
    emit(capsys, format_table(
        "Section VII(a): STOCK pages, normal vs time-split "
        "(threshold 0.5)",
        ["layout", "live leaf pages", "WORM (historical) pages", "note"],
        rows,
        note="paper: 70 K B+-tree pages -> 18 K live + 55 K historical"))
