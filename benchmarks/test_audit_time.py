"""Section VII(c): audit time.

Paper numbers (100 K transactions): the log-consistent audit is a single
pass costing 121 s (snapshot) + 85 s (log) + 145 s (final state) = 351 s;
hash-page-on-read verification adds 104 s; and the whole audit is "tiny
compared to the 2-3 hours to execute the transactions".

This benchmark reports the same phase breakdown at the configured scale,
checks the audit-to-execution ratio, and adds the ablation the paper
argues for analytically: the ADD-HASH completeness check versus the naive
sort-merge variant.
"""

import time

import pytest

from repro.bench import (bench_scale, bench_txns, build_db, emit,
                         format_table, make_driver)
from repro.common.config import ComplianceMode
from repro.core import Auditor, sorted_completeness_check
from repro.crypto import AddHash

_rows = []


@pytest.mark.parametrize("mode", [ComplianceMode.LOG_CONSISTENT,
                                  ComplianceMode.HASH_ON_READ])
def test_audit_time(benchmark, tmp_path, pages_after_load, mode, capsys):
    scale = bench_scale()
    db = build_db(tmp_path / mode.value, mode, scale,
                  buffer_pages=max(16, int(pages_after_load * 0.10)))
    driver = make_driver(db, scale)
    run = driver.run(bench_txns())

    report = benchmark.pedantic(lambda: Auditor(db).audit(),
                                rounds=1, iterations=1)
    assert report.ok, report.summary()
    total_audit = sum(report.phase_seconds.values())
    _rows.append([
        mode.value,
        report.phase_seconds.get("snapshot", 0.0),
        report.phase_seconds.get("log", 0.0),
        report.phase_seconds.get("final", 0.0),
        total_audit,
        run.elapsed_seconds,
        f"{100 * total_audit / run.elapsed_seconds:.1f}%",
    ])
    benchmark.extra_info["read_hashes"] = report.read_hashes_checked
    if mode is ComplianceMode.HASH_ON_READ:
        emit(capsys, format_table(
            "Section VII(c): audit time by phase (seconds)",
            ["mode", "snapshot", "log scan", "final state", "audit total",
             "txn execution", "audit/exec"], _rows,
            note="paper: 121 + 85 + 145 = 351 s; +104 s for "
                 "hash-on-read; audit is tiny vs 2-3 h of execution"))
        assert total_audit < run.elapsed_seconds


def test_addhash_vs_sort_merge(benchmark, tmp_path, capsys):
    """The Section IV-A ablation: ADD-HASH beats sorting the log."""
    import random
    rng = random.Random(11)
    snapshot = [rng.randbytes(64) for _ in range(4000)]
    log = [rng.randbytes(64) for _ in range(8000)]
    final = snapshot + log

    started = time.perf_counter()
    expected = AddHash(snapshot)
    for item in log:
        expected.add(item)
    got = AddHash(final)
    add_hash_ok = expected == got
    add_hash_time = time.perf_counter() - started

    started = time.perf_counter()
    sorted_ok = sorted_completeness_check(snapshot, log, final)
    sort_time = time.perf_counter() - started

    benchmark.pedantic(
        lambda: AddHash(final).digest(), rounds=3, iterations=1)
    assert add_hash_ok and sorted_ok
    emit(capsys, format_table(
        "Completeness-check ablation (12 K tuples)",
        ["method", "seconds", "complexity"],
        [["ADD-HASH single pass", add_hash_time, "O(|Ds|+|L|+|Df|)"],
         ["sort-merge", sort_time, "O(|L| log |L| + …)"]],
        note="the paper's argument is asymptotic: at laptop scale an "
             "in-memory C sort wins on constants, but a 100 GB log "
             "cannot be sorted in memory at all, while ADD-HASH streams "
             "in one pass with O(1) state"))
