#!/usr/bin/env python
"""Standalone Fig 3(a) benchmark runner for perf tracking across PRs.

Executes the three-architecture TPC-C sweep (REGULAR / LOG_CONSISTENT /
HASH_ON_READ) at a fixed small scale and writes a JSON report — the
``--out`` file, ``BENCH_PR4.json`` in the repository root by default —
with txn/s and compliance overhead percentages per mode, a full
``repro.obs`` metrics snapshot and trace span counts per mode, and an
instrumentation-overhead measurement (enabled vs no-op registry).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py \
        [--txns N] [--out FILE] [--baseline FILE] [--label NAME] \
        [--quick] [--max-overhead PCT]

``--baseline`` embeds a previously captured report under ``"baseline"``
so a single file shows before/after.  ``--quick`` shrinks the run for
CI smoke jobs; ``--max-overhead`` makes the process exit non-zero when
the measured instrumentation overhead exceeds the given percentage.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import build_db, make_driver  # noqa: E402
from repro.common.config import ComplianceMode  # noqa: E402
from repro.tpcc import TPCCScale  # noqa: E402

#: Fig 3(a)'s cache ratio: 256 MB of a 2.5 GB database
CACHE_RATIO = 0.10

MODES = (ComplianceMode.REGULAR, ComplianceMode.LOG_CONSISTENT,
         ComplianceMode.HASH_ON_READ)


def _worm_counters(metrics: dict) -> dict:
    """WORM server counters, read from the unified metrics snapshot."""
    counters = metrics.get("counters", {})
    return {short: counters[name]
            for short, name in (("appends", "worm_appends_total"),
                                ("buffered_appends",
                                 "worm_buffered_appends_total"),
                                ("flushes", "worm_flushes_total"),
                                ("fsyncs", "worm_fsyncs_total"),
                                ("bytes_written",
                                 "worm_bytes_written_total"))
            if name in counters}


def _sizing_pages(root: Path, scale: TPCCScale) -> int:
    db = build_db(root / "sizing", ComplianceMode.REGULAR, scale,
                  buffer_pages=4096)
    pages = db.engine.pager.page_count
    db.close()
    return pages


def run_sweep(txns: int, root: Path) -> dict:
    """Run the three-mode sweep; returns the per-mode measurements."""
    scale = TPCCScale.small()
    buffer_pages = max(16, int(_sizing_pages(root, scale) * CACHE_RATIO))
    modes = {}
    for mode in MODES:
        db = build_db(root / mode.value, mode, scale,
                      buffer_pages=buffer_pages)
        driver = make_driver(db, scale)
        started = time.perf_counter()
        result = driver.run(txns)
        elapsed = time.perf_counter() - started
        metrics = db.metrics()
        worm = _worm_counters(metrics)
        entry = {
            "transactions": result.transactions,
            "committed": result.committed,
            "rolled_back": result.rolled_back,
            "elapsed_seconds": round(elapsed, 4),
            "tps": round(result.tps, 2),
        }
        if worm:
            entry["worm"] = worm
            if worm.get("flushes") is not None:
                entry["worm_flushes_per_1000_txns"] = round(
                    worm["flushes"] * 1000.0 / max(1, txns), 1)
        clog_records = sum(
            value for name, value in metrics["counters"].items()
            if name.startswith("clog_records_total"))
        if clog_records:
            entry["clog_records"] = clog_records
        entry["metrics"] = metrics
        db.close()
        modes[mode.value] = entry
    base = modes[ComplianceMode.REGULAR.value]["elapsed_seconds"]
    overhead = {}
    for mode in (ComplianceMode.LOG_CONSISTENT, ComplianceMode.HASH_ON_READ):
        elapsed = modes[mode.value]["elapsed_seconds"]
        overhead[mode.value] = round((elapsed / base - 1.0) * 100.0, 1)
    return {"buffer_pages": buffer_pages, "modes": modes,
            "overhead_pct": overhead}


def measure_obs_overhead(txns: int, root: Path, repeats: int = 3) -> dict:
    """Instrumentation cost: live registry/tracer vs the no-op bundle.

    Both variants run the identical LOG_CONSISTENT workload with zero
    simulated I/O delay, so the comparison is pure CPU.  A discarded
    warm-up run primes allocator/bytecode caches, the variants are
    interleaved so CPU-frequency drift hits both equally, and the best
    of ``repeats`` runs per variant damps scheduler noise — the true
    cost is a few percent, small enough for timing artefacts to swamp
    a naive single-shot comparison.
    """
    scale = TPCCScale.small()

    def one_run(enabled: bool, tag: str) -> float:
        db = build_db(root / tag, ComplianceMode.LOG_CONSISTENT,
                      scale, buffer_pages=256, obs_enabled=enabled,
                      io_delay=0.0)
        driver = make_driver(db, scale)
        started = time.perf_counter()
        driver.run(txns)
        elapsed = time.perf_counter() - started
        db.close()
        return elapsed

    one_run(True, "obs-warmup")
    timings: dict = {True: None, False: None}
    for attempt in range(repeats):
        for enabled in (True, False):
            name = f"obs-{'on' if enabled else 'off'}-{attempt}"
            elapsed = one_run(enabled, name)
            best = timings[enabled]
            timings[enabled] = elapsed if best is None else \
                min(best, elapsed)
    pct = (timings[True] / timings[False] - 1.0) * 100.0
    return {
        "transactions": txns,
        "enabled_seconds": round(timings[True], 4),
        "disabled_seconds": round(timings[False], 4),
        "overhead_pct": round(pct, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--txns", type=int, default=300,
                        help="transactions per mode (default 300)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_PR4.json")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="embed a previously captured report")
    parser.add_argument("--label", default="current",
                        help="name for this capture (e.g. git describe)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizing (fewer transactions)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if instrumentation overhead exceeds "
                             "this percentage")
    args = parser.parse_args(argv)
    if args.quick:
        args.txns = min(args.txns, 120)
    if args.txns < 1:
        parser.error("--txns must be at least 1")
    if args.baseline is not None and not args.baseline.exists():
        parser.error(f"--baseline file not found: {args.baseline}")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        report = run_sweep(args.txns, Path(tmp))
        report["instrumentation_overhead"] = measure_obs_overhead(
            args.txns, Path(tmp))
    report = {"label": args.label, "transactions_per_mode": args.txns,
              "scale": "small", "quick": args.quick, **report}
    if args.baseline is not None:
        report["baseline"] = json.loads(args.baseline.read_text())
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for mode, pct in report["overhead_pct"].items():
        print(f"  {mode} overhead: {pct:+.1f}%")
    for mode, entry in report["modes"].items():
        per_k = entry.get("worm_flushes_per_1000_txns")
        if per_k is not None:
            print(f"  {mode} WORM flushes/1000 txns: {per_k}")
    obs = report["instrumentation_overhead"]
    print(f"  obs instrumentation overhead: "
          f"{obs['overhead_pct']:+.2f}% over {obs['transactions']} txns")
    if args.max_overhead is not None and \
            obs["overhead_pct"] > args.max_overhead:
        print(f"  FAIL: overhead above --max-overhead "
              f"{args.max_overhead}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
