#!/usr/bin/env python
"""Standalone Fig 3(a) benchmark runner for perf tracking across PRs.

Executes the three-architecture TPC-C sweep (REGULAR / LOG_CONSISTENT /
HASH_ON_READ) and writes a JSON report — the ``--out`` file,
``BENCH_PR10.json`` in the repository root by default — with txn/s and
compliance overhead percentages per mode, per-mode SHA-512 work and
digest-pool counters, a full ``repro.obs`` metrics snapshot per mode,
an instrumentation-overhead measurement (enabled vs no-op registry), a
digest-equivalence gate (pooled vs inline digests must produce the
identical audit report), and an audit-scaling section (serial auditor
vs the partitioned auditor at several worker counts, gated on report
equality).

The sweep itself is interleaved best-of-N: each attempt cycles through
all three modes on freshly built databases and the best attempt per
mode is kept, so CPU-frequency drift and scheduler noise cannot
masquerade as an overhead change (single-shot sweeps swung the
log-consistent overhead 16% → 7% → 20.5% across PRs with no hot-path
change).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py \
        [--txns N] [--out FILE] [--baseline FILE] [--label NAME] \
        [--quick] [--max-overhead PCT] [--audit-only] \
        [--audit-workers N,N,...] [--check-baseline FILE] \
        [--tolerance PCT]

``--baseline`` embeds a previously captured report under ``"baseline"``
so a single file shows before/after.  ``--quick`` shrinks the run for
CI smoke jobs; ``--max-overhead`` makes the process exit non-zero when
the measured instrumentation overhead exceeds the given percentage.
``--audit-only`` skips the sweep and instrumentation sections and runs
just the audit-scaling measurement; any parallel audit whose report
differs from the serial one makes the process exit non-zero.
``--check-baseline`` is the CI trend gate: the process exits non-zero
when a mode's measured overhead exceeds the committed baseline's by
more than ``--tolerance`` percentage points (default 15 — the observed
noise band of the interleaved sweep at CI scale).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import build_db, make_driver  # noqa: E402
from repro.common.clock import SimulatedClock  # noqa: E402
from repro.common.codec import Field, FieldType, Schema  # noqa: E402
from repro.common.config import ComplianceMode, DBConfig  # noqa: E402
from repro.common.errors import ServerRequestError  # noqa: E402
from repro.core import Auditor, CompliantDB, ParallelAuditor  # noqa: E402
from repro.crypto import AuditorKey  # noqa: E402
from repro.server import (ComplianceServer, PipelinedClient,  # noqa: E402
                          ServerClient, ServerConfig, replay_history)
from repro.tpcc import TPCCScale  # noqa: E402

#: Fig 3(a)'s cache ratio: 256 MB of a 2.5 GB database
CACHE_RATIO = 0.10

#: per-page device latency for the audit scan — one random read on the
#: paper's 2009-era enterprise disk (~3 ms seek+rotate).  The audit is
#: the paper's terabyte-scan worry, so the scaling section restores the
#: I/O-bound balance the tiny bench database otherwise lacks.
AUDIT_IO_DELAY = 0.003

#: final-state pages per partitioned-audit task (small enough that the
#: bench database splits into far more chunks than workers)
AUDIT_CHUNK_PAGES = 64

MODES = (ComplianceMode.REGULAR, ComplianceMode.LOG_CONSISTENT,
         ComplianceMode.HASH_ON_READ)

#: connection counts for the multi-client server section
SERVER_CONNECTIONS = (1, 4, 16, 64)
#: key-space width for the server workload — small enough that clients
#: genuinely collide and the retry path is exercised
SERVER_KEYS = 32


def _worm_counters(metrics: dict) -> dict:
    """WORM server counters, read from the unified metrics snapshot."""
    counters = metrics.get("counters", {})
    return {short: counters[name]
            for short, name in (("appends", "worm_appends_total"),
                                ("buffered_appends",
                                 "worm_buffered_appends_total"),
                                ("flushes", "worm_flushes_total"),
                                ("fsyncs", "worm_fsyncs_total"),
                                ("bytes_written",
                                 "worm_bytes_written_total"))
            if name in counters}


def _sizing_pages(root: Path, scale: TPCCScale) -> int:
    db = build_db(root / "sizing", ComplianceMode.REGULAR, scale,
                  buffer_pages=4096)
    pages = db.engine.pager.page_count
    db.close()
    return pages


def run_sweep(txns: int, root: Path, repeats: int = 2) -> dict:
    """Run the three-mode sweep; returns the per-mode measurements.

    Timings are interleaved best-of-``repeats``: a discarded REGULAR
    warm-up primes allocator/bytecode caches, then every attempt cycles
    through all three modes on freshly built databases so CPU-frequency
    drift hits every mode equally, and the fastest attempt per mode is
    reported — the run least disturbed by scheduler noise.  Each mode's
    entry also records its SHA-512 work (deltas of the process-wide
    hash counters across the measured window) and the digest-pool
    counters from the final metrics snapshot.
    """
    from repro.crypto import HASH_STATS

    scale = TPCCScale.small()
    buffer_pages = max(16, int(_sizing_pages(root, scale) * CACHE_RATIO))

    def one_run(mode: ComplianceMode, tag: str) -> tuple:
        db = build_db(root / tag, mode, scale, buffer_pages=buffer_pages)
        driver = make_driver(db, scale)
        before = HASH_STATS.snapshot()
        started = time.perf_counter()
        result = driver.run(txns)
        elapsed = time.perf_counter() - started
        after = HASH_STATS.snapshot()
        metrics = db.metrics()
        db.close()
        hash_work = {key: after[key] - before[key] for key in after}
        return elapsed, result, metrics, hash_work

    one_run(ComplianceMode.REGULAR, "sweep-warmup")
    best: dict = {}
    for attempt in range(max(1, repeats)):
        for mode in MODES:
            run = one_run(mode, f"{mode.value}-{attempt}")
            if mode not in best or run[0] < best[mode][0]:
                best[mode] = run

    modes = {}
    for mode in MODES:
        elapsed, result, metrics, hash_work = best[mode]
        worm = _worm_counters(metrics)
        entry = {
            "transactions": result.transactions,
            "committed": result.committed,
            "rolled_back": result.rolled_back,
            "elapsed_seconds": round(elapsed, 4),
            "tps": round(result.tps, 2),
            "hash_work": hash_work,
        }
        pool = {short: metrics["counters"][name]
                for short, name in (
                    ("submitted", "digest_pool_submitted_total"),
                    ("completed", "digest_pool_completed_total"),
                    ("inline", "digest_pool_inline_total"))
                if name in metrics["counters"]}
        if pool:
            entry["digest_pool"] = pool
        if worm:
            entry["worm"] = worm
            if worm.get("flushes") is not None:
                entry["worm_flushes_per_1000_txns"] = round(
                    worm["flushes"] * 1000.0 / max(1, txns), 1)
        clog_records = sum(
            value for name, value in metrics["counters"].items()
            if name.startswith("clog_records_total"))
        if clog_records:
            entry["clog_records"] = clog_records
        entry["metrics"] = metrics
        modes[mode.value] = entry
    base = modes[ComplianceMode.REGULAR.value]["elapsed_seconds"]
    overhead = {}
    for mode in (ComplianceMode.LOG_CONSISTENT, ComplianceMode.HASH_ON_READ):
        elapsed = modes[mode.value]["elapsed_seconds"]
        overhead[mode.value] = round((elapsed / base - 1.0) * 100.0, 1)
    return {"buffer_pages": buffer_pages, "sweep_repeats": max(1, repeats),
            "modes": modes, "overhead_pct": overhead}


def measure_obs_overhead(txns: int, root: Path, repeats: int = 3) -> dict:
    """Instrumentation cost: live registry/tracer vs the no-op bundle.

    Both variants run the identical LOG_CONSISTENT workload with zero
    simulated I/O delay, so the comparison is pure CPU.  A discarded
    warm-up run primes allocator/bytecode caches, the variants are
    interleaved so CPU-frequency drift hits both equally, and the best
    of ``repeats`` runs per variant damps scheduler noise — the true
    cost is a few percent, small enough for timing artefacts to swamp
    a naive single-shot comparison.
    """
    scale = TPCCScale.small()

    def one_run(enabled: bool, tag: str) -> float:
        db = build_db(root / tag, ComplianceMode.LOG_CONSISTENT,
                      scale, buffer_pages=256, obs_enabled=enabled,
                      io_delay=0.0)
        driver = make_driver(db, scale)
        started = time.perf_counter()
        driver.run(txns)
        elapsed = time.perf_counter() - started
        db.close()
        return elapsed

    one_run(True, "obs-warmup")
    timings: dict = {True: None, False: None}
    for attempt in range(repeats):
        for enabled in (True, False):
            name = f"obs-{'on' if enabled else 'off'}-{attempt}"
            elapsed = one_run(enabled, name)
            best = timings[enabled]
            timings[enabled] = elapsed if best is None else \
                min(best, elapsed)
    pct = (timings[True] / timings[False] - 1.0) * 100.0
    return {
        "transactions": txns,
        "enabled_seconds": round(timings[True], 4),
        "disabled_seconds": round(timings[False], 4),
        "overhead_pct": round(pct, 2),
    }


def measure_digest_equivalence(txns: int, root: Path,
                               workers: int = 2) -> dict:
    """Byte-identity gate: pooled digests must equal inline digests.

    Two identically seeded HASH_ON_READ databases run the identical
    workload, one with the digest pool disabled (``hash_workers=0``)
    and one with ``workers`` pool threads.  A dry-run audit then
    replays every READ_HASH and recomputes the completeness fold both
    times: if pooling reordered or altered a single chain link, the
    comparable reports or the expected/final ADD-HASH digests would
    differ.  Any difference is a gate failure.
    """
    txns = min(txns, 200)
    scale = TPCCScale.small()
    reports: dict = {}
    digests: dict = {}
    pools: dict = {}
    for tag, hash_workers in (("inline", 0), ("pooled", workers)):
        db = build_db(root / f"equiv-{tag}", ComplianceMode.HASH_ON_READ,
                      scale, buffer_pages=256, io_delay=0.0,
                      hash_workers=hash_workers)
        make_driver(db, scale).run(txns)
        report = Auditor(db).audit(rotate=False)
        counters = db.metrics()["counters"]
        pools[tag] = {short: counters.get(
            f"digest_pool_{short}_total", 0)
            for short in ("submitted", "completed", "inline")}
        reports[tag] = report.comparable()
        digests[tag] = (report.expected_digest, report.final_digest)
        db.close()
    match = reports["inline"] == reports["pooled"] and \
        digests["inline"] == digests["pooled"]
    return {
        "transactions": txns,
        "hash_workers": workers,
        "reports_match": match,
        "expected_digest": digests["inline"][0],
        "digest_pool": pools,
    }


def measure_audit_scaling(txns: int, root: Path,
                          worker_counts: tuple = (2, 4, 8),
                          repeats: int = 2) -> dict:
    """Serial vs partitioned audit of the same HASH_ON_READ database.

    The workload is built with zero simulated I/O delay (fast), then the
    pager is given :data:`AUDIT_IO_DELAY` per page read so the audit
    scan pays a realistic device latency — the serial auditor through
    the pager's calibrated spin, the audit workers through an
    equivalent blocking sleep that overlaps across processes the way
    real disk reads do.  Every audit is a dry run (``rotate=False``) of
    the identical epoch; each parallel report is compared against the
    serial one and any difference is reported as a gate failure.
    Timings are interleaved best-of-``repeats`` so drift hits every
    configuration equally.
    """
    scale = TPCCScale.small()
    db = build_db(root / "audit-scaling", ComplianceMode.HASH_ON_READ,
                  scale, buffer_pages=256, io_delay=0.0)
    make_driver(db, scale).run(txns)
    db.engine.pager.io_delay = AUDIT_IO_DELAY

    serial_report = Auditor(db).audit(rotate=False)
    configs: list = ["serial"] + list(worker_counts)
    best: dict = {name: None for name in configs}
    mismatches: list = []
    for _ in range(repeats):
        for name in configs:
            started = time.perf_counter()
            if name == "serial":
                report = Auditor(db).audit(rotate=False)
            else:
                report = ParallelAuditor(
                    db, workers=name, chunk_pages=AUDIT_CHUNK_PAGES,
                    checkpoint_every=0).audit(rotate=False)
            elapsed = time.perf_counter() - started
            if report.comparable() != serial_report.comparable():
                mismatches.append(name)
            prev = best[name]
            best[name] = elapsed if prev is None else min(prev, elapsed)
    pages = db.engine.pager.page_count
    db.close()

    serial_seconds = best.pop("serial")
    workers = {}
    for count in worker_counts:
        elapsed = best[count]
        workers[str(count)] = {
            "elapsed_seconds": round(elapsed, 4),
            "speedup": round(serial_seconds / elapsed, 2),
        }
    return {
        "transactions": txns,
        "io_delay_seconds": AUDIT_IO_DELAY,
        "chunk_pages": AUDIT_CHUNK_PAGES,
        "data_pages": pages,
        "pages_scanned": serial_report.pages_scanned,
        "log_records": serial_report.log_records,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "workers": workers,
        "reports_match": not mismatches,
        "mismatched_configs": sorted(set(str(m) for m in mismatches)),
    }


def measure_shard_scaling(txns: int, root: Path,
                          shard_counts: tuple = (1, 2, 4),
                          repeats: int = 2) -> dict:
    """The same TPC-C workload across 1, 2, and 4 shards.

    Two claims are gated:

    * **equality** — partitioning is invisible to the workload: every
      relation holds exactly the same keys no matter the shard count
      (the 1-shard run is the baseline);
    * **audit scaling** — each shard is a complete database audited
      independently, so the audit's critical path (the slowest single
      shard, i.e. wall-clock when shards are audited concurrently on
      separate boxes) shrinks as shards multiply.  Like the
      partitioned-audit section, each shard's pager pays
      :data:`AUDIT_IO_DELAY` per page read so the scan is I/O-bound the
      way the paper's terabyte worry is.
    """
    from repro.common.config import (ComplianceConfig, EngineConfig,
                                     ObsConfig)
    from repro.shard import DistributedAuditor, ShardedDB
    from repro.tpcc import TPCCLoader
    from repro.tpcc.driver import TPCCDriver
    from repro.tpcc.schema import ALL_SCHEMAS

    warehouses = max(shard_counts)
    scale = TPCCScale(warehouses=warehouses, districts_per_warehouse=4,
                      customers_per_district=10, items=50,
                      initial_orders_per_district=4, pad=4)
    config = DBConfig(
        engine=EngineConfig(page_size=2048, buffer_pages=256,
                            io_delay_seconds=0.0),
        compliance=ComplianceConfig(
            mode=ComplianceMode.LOG_CONSISTENT),
        obs=ObsConfig(enabled=True))

    baseline_keys: dict = {}
    mismatched: list = []
    unclean: list = []
    cells: dict = {}
    for shards in shard_counts:
        sharded = ShardedDB.create(root / f"shards-{shards}", shards,
                                   config)
        built = time.perf_counter()
        TPCCLoader(sharded, scale, seed=42).load()
        TPCCDriver(sharded, scale, seed=7).run(txns)
        sharded.checkpoint()
        build_seconds = time.perf_counter() - built

        keys = {schema.name: [k for k, _ in sharded.scan(schema.name)]
                for schema in ALL_SCHEMAS}
        if not baseline_keys:
            baseline_keys = keys
        elif keys != baseline_keys:
            mismatched.append(shards)

        for backend in sharded.backends:
            backend.engine.pager.io_delay = AUDIT_IO_DELAY
            backend.engine.buffer.drop_all()  # audit from cold cache
        best_total = None
        best_critical = None
        report = None
        for _ in range(repeats):
            for backend in sharded.backends:
                backend.engine.buffer.drop_all()
            started = time.perf_counter()
            report = DistributedAuditor(sharded).audit(rotate=False)
            elapsed = time.perf_counter() - started
            critical = max(report.shard_seconds)
            if best_total is None or elapsed < best_total:
                best_total = elapsed
            if best_critical is None or critical < best_critical:
                best_critical = critical
        if not (report.ok and report.verify(sharded.auditor_key)):
            unclean.append(shards)
        counters = sharded.metrics()["coordinator"]["counters"]
        cells[str(shards)] = {
            "build_seconds": round(build_seconds, 3),
            "audit_total_seconds": round(best_total, 4),
            "audit_critical_path_seconds": round(best_critical, 4),
            "pages_scanned": sum(r.pages_scanned
                                 for r in report.shard_reports),
            "final_tuples": report.final_tuples,
            "combined_final_digest": report.combined_final_digest[:32],
            "commits_1pc": counters.get("shard_commit_1pc_total", 0),
            "commits_2pc": counters.get("shard_commit_2pc_total", 0),
            "ok": report.ok,
        }
        sharded.close()

    lo, hi = str(min(shard_counts)), str(max(shard_counts))
    speedup = (cells[lo]["audit_critical_path_seconds"] /
               cells[hi]["audit_critical_path_seconds"])
    return {
        "transactions": txns,
        "warehouses": warehouses,
        "io_delay_seconds": AUDIT_IO_DELAY,
        "shards": cells,
        "contents_match": not mismatched,
        "mismatched_shard_counts": mismatched,
        "audits_clean": not unclean,
        "unclean_shard_counts": unclean,
        "critical_path_speedup": round(speedup, 2),
        # the trend gate: auditing the largest fleet concurrently must
        # beat auditing the single database (allow 10% noise)
        "critical_path_decreasing": speedup > 1.1,
    }


def _percentile_ms(sorted_ms: list, q: float):
    if not sorted_ms:
        return None
    index = min(len(sorted_ms) - 1,
                int(round(q * (len(sorted_ms) - 1))))
    return round(sorted_ms[index], 3)


def _server_concurrency_worker(host: str, port: int, wid: int,
                               ops: int, key_space: int,
                               out_queue) -> None:
    """One client process of the server-concurrency sweep.

    Module-level so it survives both fork and spawn start methods; it
    talks to the server purely over the wire, so the only state it
    shares with the serving process is the TCP connection — client-side
    GIL contention can no longer cap the measured throughput.
    """
    import random
    rng = random.Random(wid)
    latencies: list = []
    errors: list = []
    done = 0
    try:
        with ServerClient(host, port) as client:
            for i in range(ops):
                k = rng.randrange(key_space)
                value = f"w{wid}i{i}"
                for _attempt in range(50):
                    started = time.perf_counter()
                    try:
                        txn = client.begin()
                        row = client.get("kv", (k,), txn=txn)
                        if row is None:
                            client.insert(txn, "kv",
                                          {"k": k, "v": value})
                        else:
                            client.update(txn, "kv",
                                          {"k": k, "v": value})
                        client.commit(txn)
                    except ServerRequestError as exc:
                        if exc.retryable:
                            time.sleep(0.0005)
                            continue
                        raise
                    latencies.append(time.perf_counter() - started)
                    done += 1
                    break
    except Exception as exc:  # noqa: BLE001 - reported in the cell
        errors.append(f"w{wid}: {exc!r}")
    out_queue.put((wid, latencies, done, errors))


def measure_server_concurrency(root: Path,
                               connections: tuple = SERVER_CONNECTIONS,
                               total_txns: int = 256) -> dict:
    """Multi-client server: throughput + latency vs connection count.

    For each (mode, connection count) cell a fresh database is served
    in-process and N client **processes** split ``total_txns``
    read-write transactions over a small key space, retrying on
    ``CONFLICT`` and ``BUSY``.  Client processes (threads before PR 10)
    make the server's single-writer executor the bottleneck being
    measured — threaded clients shared the server's GIL and shaved the
    high-connection cells.  Work is held constant across cells so the
    sweep measures contention and dispatch cost, not workload growth.
    Each cell is gated: the history journal the server records is
    replayed serially into an identically seeded database and both
    audit reports must be identical (``AuditReport.comparable()``) —
    the concurrent run's compliance log is only trustworthy if it *is*
    a serial history.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    schema = Schema("kv", [Field("k", FieldType.INT),
                           Field("v", FieldType.STR)],
                    key_fields=["k"])
    mismatches: list = []
    out: dict = {}
    for mode in (ComplianceMode.LOG_CONSISTENT,
                 ComplianceMode.HASH_ON_READ):
        per_mode: dict = {}
        for conns in connections:
            tag = f"server-{mode.value}-{conns}"
            key = AuditorKey.generate()
            db = CompliantDB.create(root / tag,
                                    DBConfig.for_mode(mode),
                                    clock=SimulatedClock(),
                                    auditor_key=key)
            server = ComplianceServer(db, ServerConfig(
                max_queue_depth=max(64, 2 * conns),
                record_history=True)).start()
            db.create_relation(schema)
            server.service._record(
                ("create_relation", "kv",
                 [("k", "int"), ("v", "str")], ["k"], None))
            ops_per_conn = max(1, total_txns // conns)
            host, port = server.address
            out_queue = ctx.Queue()
            procs = [
                ctx.Process(target=_server_concurrency_worker,
                            args=(host, port, w, ops_per_conn,
                                  SERVER_KEYS, out_queue),
                            daemon=True)
                for w in range(conns)]
            wall_start = time.perf_counter()
            for proc in procs:
                proc.start()
            latencies: list = []
            committed_total = 0
            errors: list = []
            # drain results before join: a Queue's feeder pipe can
            # block a child's exit if the parent joins first
            for _ in procs:
                _wid, mine, done, worker_errors = out_queue.get()
                latencies.extend(mine)
                committed_total += done
                errors.extend(worker_errors)
            for proc in procs:
                proc.join()
            wall = time.perf_counter() - wall_start
            committed = [committed_total]
            server.shutdown()
            history = server.service.history_snapshot()

            live = Auditor(db).audit(rotate=False)
            replay_db = CompliantDB.create(root / f"{tag}-replay",
                                           DBConfig.for_mode(mode),
                                           clock=SimulatedClock(),
                                           auditor_key=key)
            replay_history(replay_db, history)
            serial = Auditor(replay_db).audit(rotate=False)
            cell_ok = (live.ok and serial.ok and
                       live.comparable() == serial.comparable() and
                       not errors)
            if not cell_ok:
                mismatches.append(f"{mode.value}/{conns}")
            metrics = db.metrics()["counters"]
            sorted_ms = sorted(value * 1000.0 for value in latencies)
            per_mode[str(conns)] = {
                "connections": conns,
                "txns_per_connection": ops_per_conn,
                "committed": committed[0],
                "wall_seconds": round(wall, 4),
                "tps": round(committed[0] / wall, 2) if wall else None,
                "latency_ms": {
                    "p50": _percentile_ms(sorted_ms, 0.50),
                    "p95": _percentile_ms(sorted_ms, 0.95),
                    "p99": _percentile_ms(sorted_ms, 0.99),
                },
                "conflicts": metrics.get(
                    "txn_lock_conflicts_total", 0),
                "busy_rejections": metrics.get("server_busy_total", 0),
                "history_ops": len(history),
                "audit_and_replay_ok": cell_ok,
                "errors": errors,
            }
            db.close()
            replay_db.close()
        out[mode.value] = per_mode
    return {
        "total_txns_per_cell": total_txns,
        "key_space": SERVER_KEYS,
        "modes": out,
        "reports_match": not mismatches,
        "mismatched_cells": mismatches,
    }


#: simulated per-WAL-flush device latency for the fan-out cell — one
#: forced write on the paper's 2009-era enterprise disk, same device
#: model as :data:`AUDIT_IO_DELAY`.  Unlike the pager's calibrated
#: spin, this must be a real ``time.sleep``: every bench shard lives in
#: one process, and only a GIL-releasing wait lets N shard writer
#: threads overlap their "fsyncs" the way N machines' disks would.
FANOUT_FSYNC_DELAY = 0.003


def _charge_wal_fsync(db, delay: float) -> None:
    """Tax the shard's durable WAL flushes with ``delay`` seconds."""
    real_flush = db.engine.wal.flush

    def flush():
        time.sleep(delay)
        return real_flush()

    db.engine.wal.flush = flush


def _fanout_fleet(root: Path, tag: str, shards: int, key,
                  fanout_workers):
    """N wire shards (own server + clock each) behind one coordinator."""
    from repro.shard import ShardedDB, WarehouseRouter

    dbs, servers, clients = [], [], []
    for i in range(shards):
        db = CompliantDB.create(
            root / f"{tag}-s{i}",
            DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT),
            clock=SimulatedClock(), auditor_key=key)
        _charge_wal_fsync(db, FANOUT_FSYNC_DELAY)
        server = ComplianceServer(db, ServerConfig()).start()
        dbs.append(db)
        servers.append(server)
        clients.append(PipelinedClient(*server.address))
    sharded = ShardedDB(clients, WarehouseRouter(shards),
                        journal_path=root / f"{tag}-journal.jsonl",
                        auditor_key=key, fanout_workers=fanout_workers)
    return sharded, dbs, servers, clients


def _fanout_teardown(sharded, dbs, servers, clients) -> None:
    for client in clients:
        client.close()
    for server in servers:
        server.shutdown()
    for db in dbs:
        db.close()
    sharded.fanout.close()
    sharded.journal.close()


def measure_fanout_2pc(root: Path, shards: int = 4,
                       txns: int = 48, warmup: int = 6) -> dict:
    """Concurrent vs serial 2PC fan-out over ``shards`` wire shards.

    Every measured transaction writes one row per warehouse, and the
    :class:`WarehouseRouter` pins warehouse *w* to shard ``(w-1) % N``,
    so each commit is a full all-shard two-phase commit: N prepares
    (each an fsync'd PREPARE record on its own shard) + the decision +
    N commits.  Serially that is 2N sequential round-trips-plus-fsyncs;
    with the fan-out executor both phases run as *max* over shards.

    The comparison is only trusted when the cheap path proves it did
    the same work: per-relation contents equality between the two
    fleets, both distributed audits clean, and — because the per-shard
    operation sequences are deterministic and the fleets share one
    auditor key — **byte-identical** merged attestations.
    """
    from repro.shard import DistributedAuditor

    schema = Schema("spread", [Field("w", FieldType.INT),
                               Field("seq", FieldType.INT),
                               Field("v", FieldType.STR)],
                    key_fields=["w", "seq"])

    def run(tag: str, fanout_workers):
        # generate() is deterministic per name, so both fleets sign
        # with the same key and attestations are byte-comparable
        key = AuditorKey.generate("fanout-bench")
        sharded, dbs, servers, clients = _fanout_fleet(
            root, tag, shards, key, fanout_workers)
        sharded.create_relation(schema)
        latencies: list = []
        wall_start = time.perf_counter()
        for seq in range(warmup + txns):
            txn = sharded.begin()
            for w in range(1, shards + 1):
                sharded.insert(txn, "spread",
                               {"w": w, "seq": seq,
                                "v": f"s{seq}w{w}"})
            assert len(txn.writes) == shards
            started = time.perf_counter()
            sharded.commit(txn)
            if seq >= warmup:
                latencies.append(time.perf_counter() - started)
        wall = time.perf_counter() - wall_start
        contents = [k for k, _ in sharded.scan("spread")]
        report = DistributedAuditor(sharded, key).audit(rotate=False)
        counters = sharded.metrics()["coordinator"]["counters"]
        cell = {
            "fanout_workers": sharded.fanout_workers,
            "commit_p50_ms": round(
                statistics.median(latencies) * 1000.0, 3),
            "commit_mean_ms": round(
                statistics.fmean(latencies) * 1000.0, 3),
            "wall_seconds": round(wall, 4),
            "commits_2pc": counters.get("shard_commit_2pc_total", 0),
            "audit_ok": bool(report.ok and report.verify(key)),
        }
        _fanout_teardown(sharded, dbs, servers, clients)
        return cell, contents, report

    serial_cell, serial_contents, serial_report = run("ser", 1)
    conc_cell, conc_contents, conc_report = run("conc", None)
    speedup = (serial_cell["commit_p50_ms"] /
               conc_cell["commit_p50_ms"]) \
        if conc_cell["commit_p50_ms"] else None
    # the acceptance bar: >= 1.5x over >= 4 remote shards; smaller
    # smoke fleets only need to show the direction
    min_speedup = 1.5 if shards >= 4 else 1.1
    return {
        "shards": shards,
        "measured_txns": txns,
        "serial": serial_cell,
        "concurrent": conc_cell,
        "speedup": round(speedup, 2) if speedup else None,
        "min_speedup": min_speedup,
        "speedup_ok": bool(speedup and speedup >= min_speedup),
        "contents_match": serial_contents == conc_contents,
        "audits_clean": bool(serial_cell["audit_ok"] and
                             conc_cell["audit_ok"]),
        "attestation_identical": (
            serial_report.message == conc_report.message and
            serial_report.attestation == conc_report.attestation),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--txns", type=int, default=600,
                        help="transactions per mode (default 600)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_PR10.json")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="embed a previously captured report")
    parser.add_argument("--check-baseline", type=Path, default=None,
                        help="trend gate: fail when a mode's overhead "
                             "exceeds this report's by more than "
                             "--tolerance percentage points")
    parser.add_argument("--tolerance", type=float, default=15.0,
                        help="noise tolerance for --check-baseline, in "
                             "percentage points (default 15)")
    parser.add_argument("--hash-workers", type=int, default=2,
                        help="digest-pool threads for the equivalence "
                             "gate (default 2)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="interleaved attempts per mode in the "
                             "sweep (default 2; 1 under --quick)")
    parser.add_argument("--label", default="current",
                        help="name for this capture (e.g. git describe)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizing (fewer transactions)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if instrumentation overhead exceeds "
                             "this percentage")
    parser.add_argument("--audit-only", action="store_true",
                        help="run only the audit-scaling section")
    parser.add_argument("--audit-workers", default=None,
                        help="comma-separated worker counts for the "
                             "audit-scaling section (default 2,4,8; "
                             "2 under --quick)")
    parser.add_argument("--server-only", action="store_true",
                        help="run only the concurrent-clients server "
                             "section")
    parser.add_argument("--shard-only", action="store_true",
                        help="run only the shard-scaling section")
    parser.add_argument("--fanout-only", action="store_true",
                        help="run only the concurrent-vs-serial 2PC "
                             "fan-out cell (wire shards + pipelined "
                             "connections)")
    parser.add_argument("--shards", default=None,
                        help="comma-separated shard counts for the "
                             "shard-scaling section (default 1,2,4; "
                             "1,2 under --quick)")
    parser.add_argument("--fanout-shards", type=int, default=None,
                        help="remote shard count for the fan-out cell "
                             "(default 4; 2 under --quick)")
    parser.add_argument("--connections", default=None,
                        help="comma-separated connection counts for the "
                             "server section (default 1,4,16,64; "
                             "1,4 under --quick)")
    args = parser.parse_args(argv)
    if args.quick:
        args.txns = min(args.txns, 120)
    if args.txns < 1:
        parser.error("--txns must be at least 1")
    if args.baseline is not None and not args.baseline.exists():
        parser.error(f"--baseline file not found: {args.baseline}")
    if args.check_baseline is not None and not args.check_baseline.exists():
        parser.error(
            f"--check-baseline file not found: {args.check_baseline}")
    if args.hash_workers < 1:
        parser.error("--hash-workers must be at least 1")
    if args.audit_workers is not None:
        try:
            worker_counts = tuple(
                int(part) for part in args.audit_workers.split(","))
        except ValueError:
            parser.error("--audit-workers must be comma-separated ints")
        if any(count < 1 for count in worker_counts):
            parser.error("--audit-workers counts must be >= 1")
    else:
        worker_counts = (2,) if args.quick else (2, 4, 8)
    if sum([args.audit_only, args.server_only, args.shard_only,
            args.fanout_only]) > 1:
        parser.error("--audit-only, --server-only, --shard-only and "
                     "--fanout-only are exclusive")
    if args.fanout_shards is None:
        args.fanout_shards = 2 if args.quick else 4
    if args.fanout_shards < 2:
        parser.error("--fanout-shards must be at least 2 (a 2PC needs "
                     "two writers)")
    if args.shards is not None:
        try:
            shard_counts = tuple(
                int(part) for part in args.shards.split(","))
        except ValueError:
            parser.error("--shards must be comma-separated ints")
        if any(count < 1 for count in shard_counts):
            parser.error("--shards counts must be >= 1")
    else:
        shard_counts = (1, 2) if args.quick else (1, 2, 4)
    if args.connections is not None:
        try:
            server_connections = tuple(
                int(part) for part in args.connections.split(","))
        except ValueError:
            parser.error("--connections must be comma-separated ints")
        if any(count < 1 for count in server_connections):
            parser.error("--connections counts must be >= 1")
    else:
        server_connections = (1, 4) if args.quick \
            else SERVER_CONNECTIONS

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        report = {}
        solo = args.audit_only or args.server_only or \
            args.shard_only or args.fanout_only
        if not solo:
            report = run_sweep(args.txns, Path(tmp),
                               repeats=1 if args.quick else args.repeats)
            report["instrumentation_overhead"] = measure_obs_overhead(
                args.txns, Path(tmp))
            report["digest_equivalence"] = measure_digest_equivalence(
                args.txns, Path(tmp), workers=args.hash_workers)
        if not solo or args.audit_only:
            report["audit_scaling"] = measure_audit_scaling(
                args.txns, Path(tmp), worker_counts=worker_counts,
                repeats=1 if args.quick else 2)
        if not solo or args.server_only:
            report["server_concurrency"] = measure_server_concurrency(
                Path(tmp), connections=server_connections,
                total_txns=64 if args.quick else 256)
        if not solo or args.shard_only:
            report["shard_scaling"] = measure_shard_scaling(
                args.txns, Path(tmp), shard_counts=shard_counts,
                repeats=1 if args.quick else 2)
        if not solo or args.shard_only or args.fanout_only:
            report.setdefault("shard_scaling", {})["fanout_2pc"] = \
                measure_fanout_2pc(
                    Path(tmp), shards=args.fanout_shards,
                    txns=16 if args.quick else 48,
                    warmup=2 if args.quick else 6)
    report = {"label": args.label, "transactions_per_mode": args.txns,
              "scale": "small", "quick": args.quick, **report}
    if args.baseline is not None:
        report["baseline"] = json.loads(args.baseline.read_text())
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for mode, pct in report.get("overhead_pct", {}).items():
        print(f"  {mode} overhead: {pct:+.1f}%")
    for mode, entry in report.get("modes", {}).items():
        per_k = entry.get("worm_flushes_per_1000_txns")
        if per_k is not None:
            print(f"  {mode} WORM flushes/1000 txns: {per_k}")
    obs = report.get("instrumentation_overhead")
    if obs is not None:
        print(f"  obs instrumentation overhead: "
              f"{obs['overhead_pct']:+.2f}% over "
              f"{obs['transactions']} txns")
    equiv = report.get("digest_equivalence")
    if equiv is not None:
        verdict = "identical" if equiv["reports_match"] else "DIFFER"
        pooled = equiv["digest_pool"]["pooled"]
        print(f"  digest equivalence (workers="
              f"{equiv['hash_workers']}): reports {verdict} "
              f"({pooled['submitted']} pooled submissions)")
    audit = report.get("audit_scaling")
    if audit is not None:
        print(f"  audit serial: {audit['serial_seconds']}s over "
              f"{audit['pages_scanned']} pages / "
              f"{audit['log_records']} log records")
        for count, entry in audit["workers"].items():
            print(f"  audit {count} workers: "
                  f"{entry['elapsed_seconds']}s "
                  f"({entry['speedup']}x)")
    server = report.get("server_concurrency")
    if server is not None:
        for mode, cells in server["modes"].items():
            for count, cell in cells.items():
                lat = cell["latency_ms"]
                print(f"  server {mode} x{count}: "
                      f"{cell['tps']} txn/s, p50 {lat['p50']}ms, "
                      f"p95 {lat['p95']}ms, p99 {lat['p99']}ms "
                      f"({cell['conflicts']} conflicts)")
    shard = report.get("shard_scaling")
    if shard is not None and "shards" in shard:
        for count, cell in shard["shards"].items():
            print(f"  shard x{count}: audit critical path "
                  f"{cell['audit_critical_path_seconds']}s "
                  f"(total {cell['audit_total_seconds']}s, "
                  f"{cell['pages_scanned']} pages, "
                  f"{cell['commits_2pc']} 2PC commits)")
        print(f"  shard critical-path speedup "
              f"{shard['critical_path_speedup']}x at "
              f"{max(shard['shards'])} shards")
    fanout = (shard or {}).get("fanout_2pc")
    if fanout is not None:
        print(f"  fanout 2PC over {fanout['shards']} wire shards: "
              f"serial p50 {fanout['serial']['commit_p50_ms']}ms vs "
              f"concurrent p50 "
              f"{fanout['concurrent']['commit_p50_ms']}ms "
              f"({fanout['speedup']}x, "
              f"{fanout['concurrent']['fanout_workers']} workers)")
    failed = False
    if shard is not None and "shards" in shard:
        if not shard["contents_match"]:
            print("  FAIL: sharded table contents diverge from the "
                  f"1-shard baseline: {shard['mismatched_shard_counts']}",
                  file=sys.stderr)
            failed = True
        if not shard["audits_clean"]:
            print("  FAIL: distributed audit unclean at shard counts "
                  f"{shard['unclean_shard_counts']}", file=sys.stderr)
            failed = True
        if not shard["critical_path_decreasing"]:
            print("  FAIL: audit critical path did not shrink with "
                  "the shard count "
                  f"({shard['critical_path_speedup']}x)",
                  file=sys.stderr)
            failed = True
    if fanout is not None:
        if not fanout["contents_match"]:
            print("  FAIL: fan-out fleets' table contents diverge",
                  file=sys.stderr)
            failed = True
        if not fanout["audits_clean"]:
            print("  FAIL: fan-out fleet audit(s) unclean",
                  file=sys.stderr)
            failed = True
        if not fanout["attestation_identical"]:
            print("  FAIL: serial and concurrent fan-out attestations "
                  "are not byte-identical", file=sys.stderr)
            failed = True
        if not fanout["speedup_ok"]:
            print(f"  FAIL: concurrent 2PC fan-out speedup "
                  f"{fanout['speedup']}x below the "
                  f"{fanout['min_speedup']}x bar at "
                  f"{fanout['shards']} shards", file=sys.stderr)
            failed = True
    if audit is not None and not audit["reports_match"]:
        print("  FAIL: parallel audit report(s) differ from serial: "
              f"{audit['mismatched_configs']}", file=sys.stderr)
        failed = True
    if server is not None and not server["reports_match"]:
        print("  FAIL: concurrent server audit/replay mismatch: "
              f"{server['mismatched_cells']}", file=sys.stderr)
        failed = True
    if equiv is not None and not equiv["reports_match"]:
        print("  FAIL: pooled digests differ from inline digests",
              file=sys.stderr)
        failed = True
    if obs is not None and args.max_overhead is not None and \
            obs["overhead_pct"] > args.max_overhead:
        print(f"  FAIL: overhead above --max-overhead "
              f"{args.max_overhead}%", file=sys.stderr)
        failed = True
    if args.check_baseline is not None:
        base = json.loads(args.check_baseline.read_text())
        base_overhead = base.get("overhead_pct", {})
        for mode, pct in report.get("overhead_pct", {}).items():
            ref = base_overhead.get(mode)
            if ref is None:
                continue
            if pct > ref + args.tolerance:
                print(f"  FAIL: {mode} overhead {pct:+.1f}% exceeds "
                      f"baseline {ref:+.1f}% by more than "
                      f"{args.tolerance} points", file=sys.stderr)
                failed = True
            else:
                print(f"  trend {mode}: {pct:+.1f}% vs baseline "
                      f"{ref:+.1f}% (tolerance {args.tolerance})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
