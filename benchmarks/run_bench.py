#!/usr/bin/env python
"""Standalone Fig 3(a) benchmark runner for perf tracking across PRs.

Executes the three-architecture TPC-C sweep (REGULAR / LOG_CONSISTENT /
HASH_ON_READ) at a fixed small scale and writes a JSON report — by
default ``BENCH_PR1.json`` in the repository root — with txn/s and
compliance overhead percentages per mode, plus the WORM server's flush
counters so the group-commit batching win is visible per run.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py \
        [--txns N] [--out FILE] [--baseline FILE] [--label NAME]

``--baseline`` embeds a previously captured report under ``"baseline"``
so a single file shows before/after.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import build_db, make_driver  # noqa: E402
from repro.common.config import ComplianceMode  # noqa: E402
from repro.tpcc import TPCCScale  # noqa: E402

#: Fig 3(a)'s cache ratio: 256 MB of a 2.5 GB database
CACHE_RATIO = 0.10

MODES = (ComplianceMode.REGULAR, ComplianceMode.LOG_CONSISTENT,
         ComplianceMode.HASH_ON_READ)


def _worm_counters(db) -> dict:
    """WORM server counters, if the server exposes them (post-PR-1)."""
    stats = getattr(db.worm, "stats", None)
    if stats is None:
        return {}
    return {name: getattr(stats, name)
            for name in ("appends", "buffered_appends", "flushes",
                         "fsyncs", "bytes_written")
            if hasattr(stats, name)}


def _sizing_pages(root: Path, scale: TPCCScale) -> int:
    db = build_db(root / "sizing", ComplianceMode.REGULAR, scale,
                  buffer_pages=4096)
    pages = db.engine.pager.page_count
    db.close()
    return pages


def run_sweep(txns: int, root: Path) -> dict:
    """Run the three-mode sweep; returns the per-mode measurements."""
    scale = TPCCScale.small()
    buffer_pages = max(16, int(_sizing_pages(root, scale) * CACHE_RATIO))
    modes = {}
    for mode in MODES:
        db = build_db(root / mode.value, mode, scale,
                      buffer_pages=buffer_pages)
        driver = make_driver(db, scale)
        started = time.perf_counter()
        result = driver.run(txns)
        elapsed = time.perf_counter() - started
        worm = _worm_counters(db)
        entry = {
            "transactions": result.transactions,
            "committed": result.committed,
            "rolled_back": result.rolled_back,
            "elapsed_seconds": round(elapsed, 4),
            "tps": round(result.tps, 2),
        }
        if worm:
            entry["worm"] = worm
            if worm.get("flushes") is not None:
                entry["worm_flushes_per_1000_txns"] = round(
                    worm["flushes"] * 1000.0 / max(1, txns), 1)
        plugin = db.plugin
        if plugin is not None:
            entry["clog_records"] = sum(plugin.stats.records.values())
        db.close()
        modes[mode.value] = entry
    base = modes[ComplianceMode.REGULAR.value]["elapsed_seconds"]
    overhead = {}
    for mode in (ComplianceMode.LOG_CONSISTENT, ComplianceMode.HASH_ON_READ):
        elapsed = modes[mode.value]["elapsed_seconds"]
        overhead[mode.value] = round((elapsed / base - 1.0) * 100.0, 1)
    return {"buffer_pages": buffer_pages, "modes": modes,
            "overhead_pct": overhead}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--txns", type=int, default=300,
                        help="transactions per mode (default 300)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_PR1.json")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="embed a previously captured report")
    parser.add_argument("--label", default="current",
                        help="name for this capture (e.g. git describe)")
    args = parser.parse_args(argv)
    if args.txns < 1:
        parser.error("--txns must be at least 1")
    if args.baseline is not None and not args.baseline.exists():
        parser.error(f"--baseline file not found: {args.baseline}")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        report = run_sweep(args.txns, Path(tmp))
    report = {"label": args.label, "transactions_per_mode": args.txns,
              "scale": "small", **report}
    if args.baseline is not None:
        report["baseline"] = json.loads(args.baseline.read_text())
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for mode, pct in report["overhead_pct"].items():
        print(f"  {mode} overhead: {pct:+.1f}%")
    for mode, entry in report["modes"].items():
        per_k = entry.get("worm_flushes_per_1000_txns")
        if per_k is not None:
            print(f"  {mode} WORM flushes/1000 txns: {per_k}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
