"""Figure 3(b): TPC-C run time with the larger (512 MB ≈ 20 %) cache.

Paper claim: with a larger buffer cache the curves tighten — fewer misses
mean fewer READ hashes and fewer page fetches, so the compliance overhead
shrinks relative to Fig. 3(a).
"""

import pytest

from repro.bench import (bench_scale, bench_txns, build_db, emit,
                         format_table, make_driver)
from repro.common.config import ComplianceMode

CACHE_RATIO = 0.20  # 512 MB of a 2.5 GB database

_results = {}


@pytest.mark.parametrize("mode", [ComplianceMode.REGULAR,
                                  ComplianceMode.LOG_CONSISTENT,
                                  ComplianceMode.HASH_ON_READ])
def test_fig3b_runtime(benchmark, tmp_path, mode, pages_after_load):
    scale = bench_scale()
    txns = bench_txns()
    buffer_pages = max(16, int(pages_after_load * CACHE_RATIO))
    db = build_db(tmp_path / mode.value, mode, scale,
                  buffer_pages=buffer_pages)
    driver = make_driver(db, scale)
    outcome = benchmark.pedantic(lambda: driver.run_series(txns),
                                 rounds=1, iterations=1)
    _results[mode] = outcome
    benchmark.extra_info["mode"] = mode.value
    benchmark.extra_info["buffer_pages"] = buffer_pages


def test_fig3b_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_results) < 3:
        pytest.skip("run the three mode benchmarks first")
    base = _results[ComplianceMode.REGULAR]
    rows = []
    for count, _ in base.series:
        row = [count]
        for mode in (ComplianceMode.REGULAR,
                     ComplianceMode.LOG_CONSISTENT,
                     ComplianceMode.HASH_ON_READ):
            series = dict(_results[mode].series)
            row.append(series.get(count, float("nan")))
        rows.append(row)
    base_total = base.series[-1][1]
    lc_total = _results[ComplianceMode.LOG_CONSISTENT].series[-1][1]
    hr_total = _results[ComplianceMode.HASH_ON_READ].series[-1][1]
    emit(capsys, format_table(
        "Figure 3(b): TPC-C run time (s) vs transactions — "
        "20% cache ratio",
        ["txns", "regular", "log-consistent", "+hash-on-read"], rows,
        note=(f"overhead: log-consistent "
              f"{100 * (lc_total / base_total - 1):+.1f}%, hash-on-read "
              f"{100 * (hr_total / base_total - 1):+.1f}% — both should "
              "shrink vs Fig. 3(a)'s smaller cache")))
