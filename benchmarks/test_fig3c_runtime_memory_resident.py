"""Figure 3(c): 1 warehouse, cache ≈ database — the memory-resident case.

Paper setup: a 320 MB (1-warehouse) database in a 256 MB cache: initially
everything fits in memory; as the version history grows past the cache,
the curves show a knee.  Claim: the log-consistent slowdown is "more
profound here because the DBMS accumulates many dirty pages that must be
written to disk", but stays under ≈ 30 % "even after the knee of the
curve".
"""

import pytest

from repro.bench import (bench_scale, bench_txns, build_db, emit,
                         format_table, make_driver)
from repro.common.config import ComplianceMode
from repro.tpcc import TPCCScale

_results = {}


def _one_warehouse(scale: TPCCScale) -> TPCCScale:
    clone = TPCCScale(**vars(scale))
    clone.warehouses = 1
    return clone


@pytest.mark.parametrize("mode", [ComplianceMode.REGULAR,
                                  ComplianceMode.LOG_CONSISTENT,
                                  ComplianceMode.HASH_ON_READ])
def test_fig3c_runtime(benchmark, tmp_path, mode, pages_after_load):
    scale = _one_warehouse(bench_scale())
    txns = bench_txns() * 2  # long enough to grow past the cache
    # cache sized to hold the initial database with a little headroom:
    # memory-resident at the start, outgrown as history accumulates
    buffer_pages = max(24, int(pages_after_load * 0.8))
    db = build_db(tmp_path / mode.value, mode, scale,
                  buffer_pages=buffer_pages)
    driver = make_driver(db, scale)
    outcome = benchmark.pedantic(lambda: driver.run_series(txns,
                                                           points=12),
                                 rounds=1, iterations=1)
    _results[mode] = (outcome, db.engine.buffer.stats.hit_ratio)
    benchmark.extra_info["mode"] = mode.value
    benchmark.extra_info["hit_ratio"] = db.engine.buffer.stats.hit_ratio


def test_fig3c_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_results) < 3:
        pytest.skip("run the three mode benchmarks first")
    base, base_hit = _results[ComplianceMode.REGULAR]
    rows = []
    for count, _ in base.series:
        row = [count]
        for mode in (ComplianceMode.REGULAR,
                     ComplianceMode.LOG_CONSISTENT,
                     ComplianceMode.HASH_ON_READ):
            series = dict(_results[mode][0].series)
            row.append(series.get(count, float("nan")))
        rows.append(row)
    base_total = base.series[-1][1]
    lc_total = _results[ComplianceMode.LOG_CONSISTENT][0].series[-1][1]
    emit(capsys, format_table(
        "Figure 3(c): 1 warehouse, memory-resident start (cache ≈ data)",
        ["txns", "regular", "log-consistent", "+hash-on-read"], rows,
        note=(f"hit ratio {base_hit:.2f}; log-consistent overhead "
              f"{100 * (lc_total / base_total - 1):+.1f}% "
              "(paper: < 30% even past the knee)")))
