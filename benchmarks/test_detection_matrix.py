"""The security "table" implicit in Sections IV–V: attack × architecture.

For every threat-model attack, run it against both architectures and
record whether the next audit detects it.  The expected matrix follows the
paper: everything is caught by both, except the state-reversion attack,
which only hash-page-on-read can see (that asymmetry is the entire
motivation for the Section V refinement).
"""

import pytest

from repro.bench import emit, format_table
from repro.common.clock import SimulatedClock, minutes
from repro.common.codec import Field, FieldType, Schema
from repro.common.config import (ComplianceConfig, ComplianceMode,
                                 DBConfig, EngineConfig)
from repro.core import Adversary, Auditor, CompliantDB

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])

MODES = [ComplianceMode.LOG_CONSISTENT, ComplianceMode.HASH_ON_READ]


def _fresh(tmp_path, mode):
    db = CompliantDB.create(
        tmp_path, clock=SimulatedClock(),
        config=DBConfig(engine=EngineConfig(page_size=1024,
                                            buffer_pages=32),
                        compliance=ComplianceConfig(mode=mode)))
    db.create_relation(LEDGER)
    for i in range(30):
        with db.transaction() as txn:
            db.insert(txn, "ledger", {"entry_id": i, "amount": i})
    for i in range(0, 30, 3):
        with db.transaction() as txn:
            db.update(txn, "ledger", {"entry_id": i, "amount": -i})
    mala = Adversary(db)
    mala.settle()
    return db, mala


def _attack_shred(db, mala):
    mala.shred_tuple("ledger", (7,))


def _attack_alter(db, mala):
    mala.alter_tuple("ledger", (3,), {"entry_id": 3, "amount": 10**9})


def _attack_backdate(db, mala):
    mala.backdate_insert("ledger", {"entry_id": 999, "amount": 1},
                         start=db.clock.now() - minutes(90))


def _attack_swap(db, mala):
    mala.swap_leaf_entries("ledger")


def _attack_spurious_abort(db, mala):
    txn_id = sorted(db.plugin.commit_map)[5]
    mala.append_spurious_abort(txn_id)


def _attack_reversion(db, mala):
    handle = mala.begin_state_reversion(
        "ledger", (3,), {"entry_id": 3, "amount": 424242})
    db.get("ledger", (3,))  # a victim reads the tampered page
    handle.revert()
    db.engine.buffer.drop_all()


def _attack_hidden_crash(db, mala):
    db.clock.advance(minutes(45))
    mala.crash_and_silent_recovery()
    with db.transaction() as txn:
        db.insert(txn, "ledger", {"entry_id": 500, "amount": 5})


ATTACKS = [
    ("shred committed tuple", _attack_shred, {m: True for m in MODES}),
    ("alter committed payload", _attack_alter,
     {m: True for m in MODES}),
    ("post-hoc (backdated) insert", _attack_backdate,
     {m: True for m in MODES}),
    ("Fig 2(b): swap leaf entries", _attack_swap,
     {m: True for m in MODES}),
    ("spurious ABORT on L", _attack_spurious_abort,
     {m: True for m in MODES}),
    ("state reversion (read then revert)", _attack_reversion,
     {ComplianceMode.LOG_CONSISTENT: False,
      ComplianceMode.HASH_ON_READ: True}),
    ("hidden crash + silent recovery", _attack_hidden_crash,
     {m: True for m in MODES}),
]


def test_detection_matrix(benchmark, tmp_path, capsys):
    def run_matrix():
        rows = []
        for name, attack, expected in ATTACKS:
            row = [name]
            for mode in MODES:
                db, mala = _fresh(tmp_path / f"{name[:8]}-{mode.value}",
                                  mode)
                attack(db, mala)
                report = Auditor(db).audit(rotate=False)
                detected = not report.ok
                ok = "✓" if detected == expected[mode] else "✗ UNEXPECTED"
                row.append(f"{'detected' if detected else 'missed'} {ok}")
                assert detected == expected[mode], \
                    f"{name} / {mode.value}: expected " \
                    f"{expected[mode]}, got {detected}"
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    emit(capsys, format_table(
        "Detection matrix: attack × architecture",
        ["attack", "log-consistent", "hash-on-read"], rows,
        note="state reversion is the attack only hash-page-on-read "
             "catches — the paper's motivation for Section V"))
