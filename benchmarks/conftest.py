"""Shared fixtures and sizing helpers for the benchmark harness.

The paper's cache-size configurations are reproduced as *ratios*: its
256 MB cache over a 2.5 GB database is ≈ 10 % of the data, 512 MB ≈ 20 %,
and Fig. 3(c)'s 320 MB database in a 256 MB cache starts memory-resident.
``pages_after_load`` measures how many pages the scaled population needs,
and each figure sizes its buffer cache to the paper's ratio of that.
"""

import functools

import pytest

from repro.bench import bench_scale, build_db
from repro.common.config import ComplianceMode


@functools.lru_cache(maxsize=None)
def _pages_after_load_cached(tmp_root: str) -> int:
    from pathlib import Path
    db = build_db(Path(tmp_root) / "sizing", ComplianceMode.REGULAR,
                  bench_scale(), buffer_pages=4096)
    pages = db.engine.pager.page_count
    db.close()
    return pages


@pytest.fixture(scope="session")
def pages_after_load(tmp_path_factory) -> int:
    """Number of pages the loaded TPC-C population occupies."""
    root = tmp_path_factory.mktemp("sizing")
    return _pages_after_load_cached(str(root))
