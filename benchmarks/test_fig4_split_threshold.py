"""Figures 4(a) and 4(b): time-split B+-tree pages vs. split threshold.

Paper workloads after 100 K TPC-C transactions:

* **STOCK** (Fig. 4a) — 400 K updates over 100 K tuples, heavily skewed
  towards popular items.  WORM (historical) page counts are substantial
  even at low thresholds, because hot pages have a tiny distinct-key
  fraction; the live-page dip / historic jump sits near 0.5, the initial
  fill factor.
* **ORDER_LINE** (Fig. 4b) — uniform updates, each tuple updated at most
  once, so every leaf keeps a distinct-key fraction ≥ 0.5: **no pages
  migrate below threshold 0.5**, and past it historic pages grow rapidly
  while live pages shrink only gradually.

The reproduction drives the same two update distributions over time-split
trees at each threshold and reports live vs. WORM page counts.
"""

import random

import pytest

from repro.bench import emit, format_table
from repro.common.clock import SimulatedClock, years
from repro.common.codec import Field, FieldType, Schema
from repro.common.config import EngineConfig
from repro.temporal import Engine
from repro.worm import WormServer

THRESHOLDS = [0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 0.9]

RELATION = Schema("subject", [
    Field("k", FieldType.INT),
    Field("filler", FieldType.STR),
], key_fields=["k"])


def _build(tmp_path, threshold):
    clock = SimulatedClock()
    worm = WormServer(tmp_path / "worm", clock,
                      default_retention=years(7))
    engine = Engine.create(tmp_path / "db", clock,
                           config=EngineConfig(page_size=1024,
                                               buffer_pages=256),
                           worm=worm, worm_migration=True,
                           split_threshold=threshold)
    engine.create_relation(RELATION)
    return engine


def _populate(engine, keys):
    for k in range(1, keys + 1):
        with engine.transaction() as txn:
            engine.insert(txn, "subject", {"k": k, "filler": "x" * 12})
    engine.run_stamper()


def _stock_updates(engine, keys, updates, rng):
    """Skewed: popular items absorb most updates (min-of-3 uniforms)."""
    for _ in range(updates):
        k = min(rng.randint(1, keys) for _ in range(3))
        with engine.transaction() as txn:
            engine.update(txn, "subject", {"k": k, "filler": "y" * 12})
        engine.run_stamper()


def _order_line_updates(engine, keys, rng):
    """Uniform: each tuple updated exactly once (the delivery write).

    The delivered version is wider than the original (delivery date and
    amount get filled in), so leaves holding two versions per key
    overflow — which is what makes the threshold choice matter.
    """
    order = list(range(1, keys + 1))
    rng.shuffle(order)
    for k in order:
        with engine.transaction() as txn:
            engine.update(txn, "subject", {"k": k, "filler": "y" * 30})
        engine.run_stamper()


def _measure(engine):
    info = engine.relation("subject")
    live = len(info.tree.leaf_pgnos())
    hist = engine.histdir.page_count(info.relation_id)
    return live, hist


def test_fig4a_stock(benchmark, tmp_path, capsys):
    keys, updates = 150, 600  # paper ratio: 4 updates per tuple, skewed

    def sweep():
        rows = []
        for threshold in THRESHOLDS:
            engine = _build(tmp_path / f"s{threshold}", threshold)
            rng = random.Random(21)
            _populate(engine, keys)
            _stock_updates(engine, keys, updates, rng)
            live, hist = _measure(engine)
            rows.append([threshold, live, hist])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(capsys, format_table(
        "Figure 4(a): STOCK-style skewed updates — pages vs threshold",
        ["threshold", "live pages", "WORM pages"], rows,
        note="paper: WORM pages high even at low thresholds; live dips "
             "around the fill factor (~0.5)"))
    by_threshold = {t: (live, hist) for t, live, hist in rows}
    assert by_threshold[0.0][1] == 0          # no time splits at 0
    assert by_threshold[0.9][1] > 0           # heavy migration at 0.9
    assert by_threshold[0.9][0] <= by_threshold[0.0][0]


def test_fig4b_order_line(benchmark, tmp_path, capsys):
    keys = 400  # each updated exactly once: distinct fraction >= 0.5

    def sweep():
        rows = []
        for threshold in THRESHOLDS:
            engine = _build(tmp_path / f"o{threshold}", threshold)
            rng = random.Random(22)
            _populate(engine, keys)
            _order_line_updates(engine, keys, rng)
            live, hist = _measure(engine)
            rows.append([threshold, live, hist])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(capsys, format_table(
        "Figure 4(b): ORDER_LINE-style uniform updates — pages vs "
        "threshold",
        ["threshold", "live pages", "WORM pages"], rows,
        note="paper: no pages move to WORM below threshold 0.5; above "
             "it, historic pages grow and live pages shrink"))
    by_threshold = {t: (live, hist) for t, live, hist in rows}
    for threshold in (0.0, 0.2, 0.4, 0.5):
        assert by_threshold[threshold][1] == 0, \
            f"unexpected migration at threshold {threshold}"
    assert by_threshold[0.8][1] > 0
    assert by_threshold[0.9][1] >= by_threshold[0.8][1]
