"""Span-based tracing driven by an injected deterministic clock.

Spans are timestamped by a caller-supplied ``now()`` callable — in the
database this is :meth:`SimulatedClock.now <repro.common.clock.
SimulatedClock.now>` — so two replays of the same workload produce
byte-identical traces (and the tracer passes the ``replay-determinism``
lint rule: no wall-clock, no entropy).  Span ids are a deterministic
incrementing sequence; parentage comes from an explicit stack, not
thread-locals, because the engine is single-threaded by design.

Finished spans land in a bounded ring buffer (oldest dropped first, with
a drop counter) so tracing cannot grow memory without bound during long
benchmark runs.
"""

from __future__ import annotations

from collections import deque
from types import TracebackType
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
    Type,
    Union,
)

AttrValue = Union[str, int, float, bool]

# (span_id, parent_id, name, start, end, attrs)
FinishedSpan = Tuple[int, int, str, int, int, Dict[str, AttrValue]]


class Span:
    """An open span; use as a context manager or call :meth:`end`."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end_time",
        "attrs",
    )

    def __init__(
        self,
        tracer: Optional["Tracer"],
        span_id: int,
        parent_id: int,
        name: str,
        start: int,
        attrs: Dict[str, AttrValue],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end_time: Optional[int] = None
        self.attrs = attrs

    def set(self, **attrs: AttrValue) -> None:
        """Attach attributes to the open span."""
        self.attrs.update(attrs)

    def end(self) -> None:
        if self.tracer is not None and self.end_time is None:
            self.tracer._end(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.end()


class Tracer:
    """Collects spans into a bounded, deterministic trace log."""

    def __init__(
        self,
        now: Optional[Callable[[], int]] = None,
        capacity: int = 4096,
    ) -> None:
        self._now = now if now is not None else self._auto_now
        self._auto = 0
        self._next_id = 1
        self._stack: List[int] = []
        self._finished: Deque[FinishedSpan] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0

    def _auto_now(self) -> int:
        """Fallback clock: a deterministic step counter."""
        self._auto += 1
        return self._auto

    # -- recording ---------------------------------------------------

    def span(self, name: str, **attrs: AttrValue) -> Span:
        """Open a child of the current span (root if none is open)."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else 0
        self._stack.append(span_id)
        return Span(self, span_id, parent, name, self._now(), attrs)

    def event(self, name: str, **attrs: AttrValue) -> None:
        """Record a zero-duration span at the current time."""
        with self.span(name, **attrs):
            pass

    def _end(self, span: Span) -> None:
        span.end_time = self._now()
        # tolerate out-of-order ends: drop this id wherever it sits
        try:
            self._stack.remove(span.span_id)
        except ValueError:
            pass
        if len(self._finished) == self.capacity:
            self.dropped += 1
        self._finished.append(
            (
                span.span_id,
                span.parent_id,
                span.name,
                span.start,
                span.end_time,
                dict(span.attrs),
            )
        )

    # -- reading -----------------------------------------------------

    def finished(self) -> List[Dict[str, object]]:
        """Finished spans, oldest first, as plain dicts."""
        return [
            {
                "span_id": sid,
                "parent_id": pid,
                "name": name,
                "start": start,
                "end": end,
                "attrs": attrs,
            }
            for sid, pid, name, start, end, attrs in self._finished
        ]

    def span_counts(self) -> Dict[str, int]:
        """Finished-span tallies by name (sorted keys)."""
        counts: Dict[str, int] = {}
        for _, _, name, _, _, _ in self._finished:
            counts[name] = counts.get(name, 0) + 1
        return {name: counts[name] for name in sorted(counts)}

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()
        self._next_id = 1
        self._auto = 0
        self.dropped = 0


class _NullSpan(Span):
    __slots__ = ()

    def set(self, **attrs: AttrValue) -> None:
        pass

    def end(self) -> None:
        pass


_NULL_SPAN = _NullSpan(None, 0, 0, "", 0, {})


class NullTracer(Tracer):
    """Tracer that records nothing (disabled observability)."""

    def span(self, name: str, **attrs: AttrValue) -> Span:
        return _NULL_SPAN

    def event(self, name: str, **attrs: AttrValue) -> None:
        pass
