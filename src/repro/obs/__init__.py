"""``repro.obs`` — unified observability: metrics, tracing, exporters.

One registry + one tracer per database (injectable; see
:class:`Observability`).  Counters/gauges/histograms live in
:mod:`~repro.obs.registry`; deterministic SimulatedClock-driven spans in
:mod:`~repro.obs.tracing`; Prometheus/JSON exporters in
:mod:`~repro.obs.export`; legacy ``*Stats`` surfaces as registry views
in :mod:`~repro.obs.views`.  See DESIGN.md §8.
"""

from .export import metrics_report, prometheus_text
from .observability import Observability, global_obs
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NullTracer, Span, Tracer
from .views import (
    BufferStatsView,
    PagerStatsView,
    PluginStatsView,
    WormStatsView,
    publish_hash_stats,
)

__all__ = [
    "BufferStatsView",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "PagerStatsView",
    "PluginStatsView",
    "Span",
    "Tracer",
    "WormStatsView",
    "global_obs",
    "metrics_report",
    "prometheus_text",
    "publish_hash_stats",
]
