"""Legacy stats surfaces re-implemented as views over the registry.

PR 1 grew ad-hoc counter bags (``WormStats``, ``PluginStats``,
``PagerStats``, ``BufferStats``).  The observability redesign keeps
every attribute those classes exposed — benchmarks and tests read
``worm.stats.flushes``, ``plugin.stats.records`` etc. — but the values
now come straight from the shared :class:`MetricsRegistry`, so
``CompliantDB.metrics()``, the Prometheus exporter, and the legacy
attributes can never disagree.

The classes here are the *views* (constructed by the components that
own the counters).  The deprecated constructible aliases named after
the old classes live next to their components
(``repro.worm.server.WormStats``, ``repro.core.plugin.PluginStats``)
and emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Dict, Protocol, Sequence

from .registry import Counter, MetricsRegistry, Number


class NamedType(Protocol):
    """Anything with a ``name`` — e.g. a ``CLogType`` enum member."""

    @property
    def name(self) -> str: ...


class _CounterView:
    """Base: bind counters once, expose values, support reset()."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._bound: Dict[str, Counter] = {}

    def _bind(self, attr: str, metric: str, help_text: str = "") -> None:
        self._bound[attr] = self._registry.counter(metric, help=help_text)

    def _value(self, attr: str) -> Number:
        return self._bound[attr].value

    def _reset(self, attrs: Sequence[str]) -> None:
        for attr in attrs:
            self._bound[attr].reset()


class WormStatsView(_CounterView):
    """Round-trip counters for the WORM append path (view)."""

    _ATTRS = ("appends", "buffered_appends", "flushes", "fsyncs",
              "bytes_written")

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__(registry)
        self._bind("appends", "worm_appends_total",
                   "append() calls that carried data")
        self._bind("buffered_appends", "worm_buffered_appends_total",
                   "appends that only landed in the in-memory buffer")
        self._bind("flushes", "worm_flushes_total",
                   "physical write+flush round-trips to the volume")
        self._bind("fsyncs", "worm_fsyncs_total",
                   "fsync() system calls issued")
        self._bind("bytes_written", "worm_bytes_written_total",
                   "bytes physically written to the WORM volume")

    @property
    def appends(self) -> Number:
        return self._value("appends")

    @property
    def buffered_appends(self) -> Number:
        return self._value("buffered_appends")

    @property
    def flushes(self) -> Number:
        return self._value("flushes")

    @property
    def fsyncs(self) -> Number:
        return self._value("fsyncs")

    @property
    def bytes_written(self) -> Number:
        return self._value("bytes_written")

    def reset(self) -> None:
        """Zero all counters."""
        self._reset(self._ATTRS)


class PluginStatsView(_CounterView):
    """Compliance-plugin bookkeeping (view)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__(registry)
        self._bind("extra_disk_reads", "plugin_extra_disk_reads_total",
                   "old-page disk reads the pread cache missed")
        self._bind("witness_files", "plugin_witness_files_total",
                   "empty WORM witness files created")
        self._bind("buffered_appends", "clog_buffered_appends_total",
                   "records appended to the group-commit buffer")
        self._bind("barrier_flushes", "clog_barrier_flushes_total",
                   "barriers that actually flushed records to WORM")
        self._bind("hash_cache_hits", "plugin_hash_cache_hits_total",
                   "READ_HASH digests served from the page cache")
        self._bind("hash_cache_misses", "plugin_hash_cache_misses_total",
                   "READ_HASH digests recomputed on cache miss")
        self._bind("diff_cache_hits", "plugin_diff_cache_hits_total",
                   "pwrite diffs skipped via the cached page state")

    @property
    def records(self) -> Dict[str, Number]:
        """Record tallies by ``CLogType`` name (legacy dict shape)."""
        return self._registry.labelled_values("clog_records_total", "type")

    def bump(self, rtype: NamedType) -> None:
        """Count one compliance-log record of the given type."""
        self._registry.counter(
            "clog_records_total",
            help="compliance-log records appended, by type",
            type=rtype.name,
        ).inc()

    @property
    def extra_disk_reads(self) -> Number:
        return self._value("extra_disk_reads")

    @property
    def witness_files(self) -> Number:
        return self._value("witness_files")

    @property
    def buffered_appends(self) -> Number:
        return self._value("buffered_appends")

    @property
    def barrier_flushes(self) -> Number:
        return self._value("barrier_flushes")

    @property
    def hash_cache_hits(self) -> Number:
        return self._value("hash_cache_hits")

    @property
    def hash_cache_misses(self) -> Number:
        return self._value("hash_cache_misses")

    @property
    def diff_cache_hits(self) -> Number:
        return self._value("diff_cache_hits")


def publish_hash_stats(registry: MetricsRegistry) -> Dict[str, int]:
    """Publish the process-wide SHA-512 work counters into a registry.

    ``repro.crypto.HASH_STATS`` is process-global (the ``h`` memo is
    shared), so it cannot be registry-backed the way per-component
    counters are; instead exporters call this to mirror the current
    totals into ``hash_sha512_calls`` / ``hash_memo_hits`` gauges right
    before snapshotting.  Returns the snapshot it published.
    """
    from ..crypto.hashes import HASH_STATS

    snap = HASH_STATS.snapshot()
    registry.gauge(
        "hash_sha512_calls",
        help="process-wide real SHA-512 compressions (all threads)",
    ).set(snap["sha512_calls"])
    registry.gauge(
        "hash_memo_hits",
        help="process-wide memoised h() lookups served (all threads)",
    ).set(snap["memo_hits"])
    return snap


class PagerStatsView(_CounterView):
    """Pager I/O counters (view)."""

    _ATTRS = ("reads", "writes")

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__(registry)
        self._bind("reads", "pager_reads_total",
                   "raw page reads from the data file")
        self._bind("writes", "pager_writes_total",
                   "hooked page writes to the data file")

    @property
    def reads(self) -> Number:
        return self._value("reads")

    @property
    def writes(self) -> Number:
        return self._value("writes")

    def reset(self) -> None:
        """Zero all counters."""
        self._reset(self._ATTRS)


class BufferStatsView(_CounterView):
    """Buffer-cache counters (view)."""

    _ATTRS = ("hits", "misses", "flushes", "evictions")

    def __init__(self, registry: MetricsRegistry) -> None:
        super().__init__(registry)
        self._bind("hits", "buffer_hits_total",
                   "page requests served from memory")
        self._bind("misses", "buffer_misses_total",
                   "page requests that read from disk")
        self._bind("flushes", "buffer_flushes_total",
                   "dirty pages written back")
        self._bind("evictions", "buffer_evictions_total",
                   "pages evicted from the cache")

    @property
    def hits(self) -> Number:
        return self._value("hits")

    @property
    def misses(self) -> Number:
        return self._value("misses")

    @property
    def flushes(self) -> Number:
        return self._value("flushes")

    @property
    def evictions(self) -> Number:
        return self._value("evictions")

    @property
    def hit_ratio(self) -> float:
        """Fraction of page requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self._reset(self._ATTRS)
