"""Exporters for the metrics registry.

Two surfaces, per the observability redesign:

* :func:`prometheus_text` — Prometheus exposition text format, used by
  the ``repro-admin metrics`` subcommand.
* JSON — :meth:`MetricsRegistry.snapshot` already returns plain
  JSON-able dicts; :func:`metrics_report` bundles a snapshot with the
  tracer's span tallies, the shape embedded in BENCH files and
  returned by ``CompliantDB.metrics()``.

Output is byte-stable for a given registry state: families and children
are emitted in sorted order and floats use ``repr`` (shortest
round-trip form).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Number,
    format_labels,
)
from .tracing import Tracer


def _fmt(value: Number) -> str:
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus exposition text format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for metric in family.sorted_children():
            labels = format_labels(metric.labels)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{labels} {_fmt(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                for le, count in metric.cumulative():
                    pairs = list(metric.labels) + [("le", le)]
                    bucket_labels = format_labels(tuple(pairs))
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{labels} {_fmt(metric.sum)}"
                )
                lines.append(
                    f"{family.name}_count{labels} {metric.total}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_report(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> Dict[str, object]:
    """Snapshot + span tallies: the ``CompliantDB.metrics()`` payload."""
    report: Dict[str, object] = dict(registry.snapshot())
    if tracer is not None:
        report["spans"] = tracer.span_counts()
        report["spans_dropped"] = tracer.dropped
    return report
