"""The :class:`Observability` bundle: one registry plus one tracer.

Every instrumented component takes an ``obs`` parameter.  A
:class:`~repro.core.database.CompliantDB` builds a single bundle from
``DBConfig.obs`` and threads it through the WORM server, pager, buffer
cache, transaction manager, compliance plugin, shredder, and auditor,
so one ``db.metrics()`` call sees the whole stack.  Components built
standalone (unit tests, tools) default to a private bundle, keeping
their counters isolated.

A process-wide bundle is available via :func:`global_obs` for callers
that want several databases (or non-database components) aggregated
into one registry — pass it explicitly:
``CompliantDB.create(path, config, obs=global_obs())``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .registry import MetricsRegistry, NullRegistry
from .tracing import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config docs)
    from ..common.config import ObsConfig


class Observability:
    """A metrics registry and a tracer that travel together."""

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    @property
    def enabled(self) -> bool:
        return not isinstance(self.registry, NullRegistry)

    @classmethod
    def disabled(cls) -> "Observability":
        """A bundle whose registry and tracer are shared no-ops."""
        return cls(NullRegistry(), NullTracer())

    @classmethod
    def from_config(
        cls,
        config: "ObsConfig",
        now: Optional[Callable[[], int]] = None,
    ) -> "Observability":
        """Build a bundle from a validated ``ObsConfig``.

        ``now`` should be the database's ``SimulatedClock.now`` so span
        timestamps are replay-deterministic.
        """
        if not config.enabled:
            return cls.disabled()
        return cls(
            MetricsRegistry(),
            Tracer(now=now, capacity=config.trace_capacity),
        )


_GLOBAL = Observability()


def global_obs() -> Observability:
    """The opt-in process-wide bundle (see module docstring)."""
    return _GLOBAL
