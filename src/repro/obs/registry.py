"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Design goals, in priority order:

1. **Determinism.**  Nothing in here reads wall-clock time or entropy;
   metric values are pure functions of the operations applied to them.
   Snapshots iterate in sorted order so exported text is byte-stable.
2. **Cheap hot paths.**  Components bind child metrics once (at
   construction) and call ``inc()`` / ``observe()`` on the bound object;
   the fast path is a single attribute add with no dict lookups.
3. **Injectability.**  There is no import-time global registry baked
   into components; every component takes an
   :class:`~repro.obs.observability.Observability` (or defaults to a
   private one), and :class:`NullRegistry` provides a zero-cost stand-in
   used to measure instrumentation overhead.

Metric identity is ``name`` plus a sorted label set, Prometheus-style:
``clog_records_total{type="NEW_TUPLE"}``.  A name maps to exactly one
*family* with one kind (counter/gauge/histogram) and, for histograms,
one bucket-boundary tuple; conflicting re-registration raises
:class:`~repro.common.errors.ObsError`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..common.errors import ObsError

Number = Union[int, float]

#: default latency bucket boundaries, in (simulated or wall) seconds
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: default size bucket boundaries, in bytes
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted(labels.items()))


def format_labels(labels: LabelKey) -> str:
    """Render a label key as ``{k="v",...}`` (empty string if no labels)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically non-decreasing accumulator."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: LabelKey) -> None:
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ObsError("counter increments must be non-negative")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (test/bench support; not a Prometheus op)."""
        self.value = 0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: LabelKey) -> None:
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Fixed-boundary histogram (cumulative buckets, Prometheus-style).

    ``boundaries`` are the *upper* bounds of the finite buckets; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    """

    __slots__ = ("labels", "boundaries", "bucket_counts", "total", "sum")

    def __init__(
        self, labels: LabelKey, boundaries: Tuple[float, ...]
    ) -> None:
        self.labels = labels
        self.boundaries = boundaries
        # one slot per finite boundary plus the +Inf overflow slot
        self.bucket_counts: List[int] = [0] * (len(boundaries) + 1)
        self.total = 0
        self.sum: float = 0.0

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.total = 0
        self.sum = 0.0

    def cumulative(self) -> List[Tuple[str, int]]:
        """``[(le, cumulative_count), ...]`` ending with ``+Inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.boundaries, self.bucket_counts):
            running += n
            out.append((repr(bound), running))
        running += self.bucket_counts[-1]
        out.append(("+Inf", running))
        return out


Metric = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """All children (label combinations) of one metric name."""

    __slots__ = ("name", "kind", "help", "boundaries", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        boundaries: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.boundaries = boundaries
        self.children: Dict[LabelKey, Metric] = {}

    def child(self, labels: LabelKey) -> Metric:
        metric = self.children.get(labels)
        if metric is None:
            if self.kind == "counter":
                metric = Counter(labels)
            elif self.kind == "gauge":
                metric = Gauge(labels)
            else:
                assert self.boundaries is not None
                metric = Histogram(labels, self.boundaries)
            self.children[labels] = metric
        return metric

    def sorted_children(self) -> List[Metric]:
        return [self.children[k] for k in sorted(self.children)]


def _validate_buckets(boundaries: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in boundaries)
    if not bounds:
        raise ObsError("histogram needs at least one bucket boundary")
    if list(bounds) != sorted(set(bounds)):
        raise ObsError("histogram boundaries must be strictly increasing")
    return bounds


class MetricsRegistry:
    """Holds metric families and hands out bound children.

    Accessors are idempotent: asking for the same (name, labels) twice
    returns the same object, so components may freely re-bind.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        boundaries: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text, boundaries)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ObsError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        if kind == "histogram" and family.boundaries != boundaries:
            raise ObsError(
                f"histogram {name!r} re-registered with different "
                f"bucket boundaries"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        family = self._family(name, "counter", help)
        child = family.child(_label_key(labels))
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        family = self._family(name, "gauge", help)
        child = family.child(_label_key(labels))
        assert isinstance(child, Gauge)
        return child

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        bounds = _validate_buckets(buckets)
        family = self._family(name, "histogram", help, bounds)
        child = family.child(_label_key(labels))
        assert isinstance(child, Histogram)
        return child

    # -- introspection -----------------------------------------------

    def families(self) -> Iterable[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    def value(self, name: str, **labels: str) -> Number:
        """Read a counter/gauge value (0 if the child does not exist)."""
        family = self._families.get(name)
        if family is None:
            return 0
        metric = family.children.get(_label_key(labels))
        if metric is None or isinstance(metric, Histogram):
            return 0
        return metric.value

    def labelled_values(self, name: str, label: str) -> Dict[str, Number]:
        """Map one label's values to metric values for family ``name``.

        E.g. ``labelled_values("clog_records_total", "type")`` returns
        ``{"NEW_TUPLE": 10, ...}`` — the shape the legacy
        ``PluginStats.records`` dict had.
        """
        family = self._families.get(name)
        out: Dict[str, Number] = {}
        if family is None:
            return out
        for key, metric in family.children.items():
            if isinstance(metric, Histogram):
                continue
            for k, v in key:
                if k == label:
                    out[v] = metric.value
        return out

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deep, detached copy of every metric as plain JSON-able data.

        The snapshot never aliases live metric state: mutating the
        registry after the call does not change an earlier snapshot.
        """
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for family in self.families():
            for metric in family.sorted_children():
                key = family.name + format_labels(metric.labels)
                if isinstance(metric, Counter):
                    counters[key] = metric.value
                elif isinstance(metric, Gauge):
                    gauges[key] = metric.value
                else:
                    histograms[key] = {
                        "count": metric.total,
                        "sum": metric.sum,
                        "buckets": dict(metric.cumulative()),
                    }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Zero every metric (keeps registrations)."""
        for family in self._families.values():
            for metric in family.children.values():
                metric.reset()


# ---------------------------------------------------------------------------
# No-op variants (overhead baseline; disabled observability)
# ---------------------------------------------------------------------------


class NullCounter(Counter):
    """Counter that ignores increments; value is always 0."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class NullGauge(Gauge):
    """Gauge that ignores updates; value is always 0."""

    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass


class NullHistogram(Histogram):
    """Histogram that ignores observations."""

    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


_NULL_COUNTER = NullCounter(())
_NULL_GAUGE = NullGauge(())
_NULL_HISTOGRAM = NullHistogram((), (1.0,))


class NullRegistry(MetricsRegistry):
    """Registry whose children are shared no-ops and whose snapshots are
    empty.  Used when ``ObsConfig.enabled`` is false and as the baseline
    for the instrumentation-overhead benchmark."""

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        return _NULL_HISTOGRAM
