"""The paper's contribution: the log-consistent compliant DBMS layer."""

from .audit import (AuditReport, Auditor, Finding, ScanState,
                    sorted_completeness_check, validate_undos)
from .compliance_log import ComplianceLog, aux_name, log_name
from .database import CompliantDB, wal_mirror_name
from .plugin import CompliancePlugin, decode_index_content, \
    index_content_bytes
from .parallel_audit import ParallelAuditor
from .records import AuxStampEntry, CLogRecord, CLogType, peek_frame
from .shredding import (EXPIRY_RELATION, EXPIRY_SCHEMA, Shredder,
                        VacuumReport)
from .snapshot import Snapshot, load_snapshot, snapshot_name, \
    write_snapshot

__all__ = [
    "AuditReport", "Auditor", "AuxStampEntry", "CLogRecord", "CLogType",
    "ComplianceLog", "CompliancePlugin", "CompliantDB", "EXPIRY_RELATION",
    "EXPIRY_SCHEMA", "Finding", "Shredder", "Snapshot", "VacuumReport",
    "ParallelAuditor", "ScanState",
    "aux_name", "decode_index_content", "index_content_bytes", "log_name",
    "load_snapshot", "peek_frame", "snapshot_name",
    "sorted_completeness_check", "validate_undos",
    "wal_mirror_name", "write_snapshot",
]

from .attacks import Adversary, AttackFailed

__all__.extend(["Adversary", "AttackFailed"])

from .holds import HOLDS_RELATION, HOLDS_SCHEMA, Hold, HoldManager

__all__.extend(["HOLDS_RELATION", "HOLDS_SCHEMA", "Hold", "HoldManager"])
