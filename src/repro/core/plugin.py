"""The compliance logging plugin (Sections IV–V).

Mirrors the paper's implementation strategy: "we wrote a compliance logging
plugin that taps into the pread/pwrite system calls of Berkeley DB.  When a
page is written out with pwrite, this plugin parses the page, finds the
tuples that are present in the buffer-cache page but not on the disk page,
and logs them to L on WORM."

Responsibilities:

* **pwrite**: diff the outgoing page against its last logged state (falling
  back to an extra disk read when unknown — the paper's "additional storage
  server I/O", avoided by "caching a separate copy of the page … on each
  pread") and emit NEW_TUPLE records for additions; in hash-page-on-read
  mode also UNDO records for removals.  Lazy-timestamp transitions (txn id →
  commit time) are recognised via the plugin's commit map and produce no
  records.
* **pread**: remember the page's state, and in hash-page-on-read mode log a
  READ_HASH record with the sequential hash ``Hs`` of the page as read
  (tuples ordered by tuple order number; unstamped tuples of committed
  transactions hashed in stamped form so the auditor's replay — which knows
  commit times from earlier STAMP_TRANS records — agrees).
* **commit/abort**: append STAMP_TRANS / ABORT records, strictly after the
  outcome is durable.
* **splits & migrations**: PAGE_SPLIT records with post-split contents,
  MIGRATE records pointing at the WORM historical page.
* **regret-interval maintenance**: flush dirty pages (the paper calls
  db_checkpoint), create the empty WORM *witness file* proving liveness,
  and emit a heartbeat STAMP_TRANS if no transaction ended this interval.
* **crash recovery**: START_RECOVERY, replayed ABORT/STAMP_TRANS outcomes
  for transactions resolved by recovery, and PAGE_RESET records re-basing
  page replay at the crash boundary.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from ..common.config import ComplianceMode
from ..common.errors import PageFormatError
from ..btree.events import SplitEvent, TimeSplitEvent
from ..crypto import SeqHash, h
from ..storage.page import FREE, INTERNAL, LEAF, META, Page
from ..storage.record import TupleVersion
from ..temporal.engine import Engine
from ..txn import Transaction
from ..wal import RecoveryPlan
from .compliance_log import ComplianceLog
from .records import CLogRecord, CLogType

#: normalised identity of a tuple version: (relation, key, stamped?, time)
NormId = Tuple[int, bytes, bool, int]

_IDX_HEAD = struct.Struct("<iI")
_IDX_SEP = struct.Struct("<Hqi")


def index_content_bytes(children: List[int],
                        seps: List[Tuple[bytes, int]]) -> bytes:
    """Canonical encoding of an index page's routing content."""
    parts = [_IDX_HEAD.pack(children[0] if children else -1, len(seps))]
    for (key, start), child in zip(seps, children[1:]):
        parts.append(_IDX_SEP.pack(len(key), start, child))
        parts.append(key)
    return b"".join(parts)


def decode_index_content(raw: bytes) -> Tuple[List[int],
                                              List[Tuple[bytes, int]]]:
    """Inverse of :func:`index_content_bytes`."""
    leftmost, count = _IDX_HEAD.unpack_from(raw, 0)
    children = [leftmost]
    seps: List[Tuple[bytes, int]] = []
    cursor = _IDX_HEAD.size
    for _ in range(count):
        klen, start, child = _IDX_SEP.unpack_from(raw, cursor)
        cursor += _IDX_SEP.size
        seps.append((bytes(raw[cursor:cursor + klen]), start))
        children.append(child)
        cursor += klen
    return children, seps


class PluginStats:
    """Bookkeeping the space/overhead benchmarks read."""

    def __init__(self) -> None:
        self.records: Dict[str, int] = {}
        self.extra_disk_reads = 0
        self.witness_files = 0

    def bump(self, rtype: CLogType) -> None:
        self.records[rtype.name] = self.records.get(rtype.name, 0) + 1


class CompliancePlugin:
    """The pread/pwrite compliance logger."""

    def __init__(self, engine: Engine, clog: ComplianceLog,
                 mode: ComplianceMode, regret_interval: int,
                 witness_retention: Optional[int] = None):
        self.engine = engine
        self.clog = clog
        self.mode = mode
        self.regret_interval = regret_interval
        self._witness_retention = witness_retention
        self.stats = PluginStats()
        #: pgno -> tuple versions — the page state L currently implies.
        #: Stored raw and normalised lazily at diff time, because lazy
        #: timestamping changes a tuple's normalised identity after commit.
        self._logged: Dict[int, List[TupleVersion]] = {}
        #: txn id -> commit time, learned from STAMP_TRANS we wrote
        self.commit_map: Dict[int, int] = {}
        self.aborted: Set[int] = set()
        self._last_stamp_time = engine.clock.now()
        self._last_witness_time = engine.clock.now()
        self._witness_seq = 0
        self._attached = False

    # -- attachment ------------------------------------------------------------

    def attach(self) -> None:
        """Register on every engine seam (idempotent)."""
        if self._attached:
            return
        self.engine.pager.pread_hooks.append(self.on_pread)
        self.engine.pager.pwrite_hooks.append(self.on_pwrite)
        # the plugin must learn the commit time BEFORE the engine's own
        # commit listener runs the opportunistic stamper: a page flushed
        # mid-stamping would otherwise diff as an unexplained UNDO
        self.engine.txns.on_commit.insert(0, self.on_commit)
        self.engine.txns.on_abort.append(self.on_abort)
        self.engine.add_split_listener(self.on_split)
        self.engine.migration_listeners.append(self.on_migrate)
        self._attached = True

    @property
    def hash_on_read(self) -> bool:
        """Whether the Section V refinement is active."""
        return self.mode is ComplianceMode.HASH_ON_READ

    # -- tuple normalisation -----------------------------------------------------

    def _norm_id(self, version: TupleVersion) -> NormId:
        if version.stamped:
            return (version.relation_id, version.key, True, version.start)
        commit_time = self.commit_map.get(version.start)
        if commit_time is not None:
            return (version.relation_id, version.key, True, commit_time)
        return (version.relation_id, version.key, False, version.start)

    def _norm_bytes(self, version: TupleVersion) -> bytes:
        """Tuple bytes with the commit time substituted when known."""
        if version.stamped:
            return version.to_bytes()
        commit_time = self.commit_map.get(version.start)
        if commit_time is None:
            return version.to_bytes()
        return version.stamp(commit_time).to_bytes()

    # -- pread / pwrite hooks -------------------------------------------------------

    def on_pread(self, pgno: int, raw: bytes) -> None:
        """Cache the page's disk state; log its read hash (Section V)."""
        try:
            page = Page.from_bytes(raw)
        except PageFormatError:
            return  # a corrupted page: the audit's disk scan will flag it
        if page.ptype == LEAF:
            if pgno not in self._logged:
                self._logged[pgno] = list(page.entries)
            if self.hash_on_read:
                self._append(CLogRecord(
                    CLogType.READ_HASH, pgno=pgno,
                    page_hash=self._leaf_hash(page.entries),
                    timestamp=self.engine.clock.now()))
            return
        elif page.ptype == INTERNAL and self.hash_on_read:
            content = index_content_bytes(page.children, page.seps)
            self._append(CLogRecord(
                CLogType.READ_HASH, pgno=pgno, is_index=True,
                page_hash=h(content),
                timestamp=self.engine.clock.now()))

    def _leaf_hash(self, entries) -> bytes:
        # stamped tuples hash their canonical bytes verbatim; only tuples
        # still carrying a txn id need the commit-time substitution
        ordered = sorted(entries, key=lambda t: t.seq)
        return SeqHash(t.to_bytes() if t.stamped else self._norm_bytes(t)
                       for t in ordered).digest()

    def on_pwrite(self, pgno: int, raw: bytes) -> None:
        """Diff the outgoing page against its last logged state."""
        try:
            page = Page.from_bytes(raw)
        except PageFormatError:
            return
        if page.ptype != LEAF:
            return
        self._diff_and_log(pgno, page.entries)

    def _diff_and_log(self, pgno: int, entries) -> None:
        """Emit NEW_TUPLE (and UNDO) records for a page state transition.

        Used at pwrite time, and — crucially — *before* a split or
        migration redistributes a page, so that tuples that reached a page
        in memory but were never flushed still get their NEW_TUPLE records
        before the structure records that move them.
        """
        stored = self._logged.get(pgno)
        if stored is None:
            stored = self._disk_state(pgno)
        old = {self._norm_id(t): t for t in stored}
        new = {self._norm_id(t): t for t in entries}
        for norm_id, version in new.items():
            if norm_id not in old:
                self._append(CLogRecord(
                    CLogType.NEW_TUPLE, pgno=pgno,
                    tuple_bytes=version.to_bytes(),
                    timestamp=self.engine.clock.now()))
        if self.hash_on_read:
            for norm_id, version in old.items():
                if norm_id not in new:
                    self._append(CLogRecord(
                        CLogType.UNDO, pgno=pgno,
                        tuple_bytes=version.to_bytes(),
                        timestamp=self.engine.clock.now()))
        self._logged[pgno] = list(entries)

    def _disk_state(self, pgno: int) -> List[TupleVersion]:
        """Fetch the old on-disk page — the extra I/O the pread cache
        usually avoids."""
        self.stats.extra_disk_reads += 1
        try:
            page = Page.from_bytes(self.engine.pager.read_raw(pgno))
        except PageFormatError:
            return []
        if page.ptype != LEAF:
            return []
        return list(page.entries)

    # -- transaction outcomes ----------------------------------------------------------

    def on_commit(self, txn: Transaction, commit_time: int) -> None:
        """STAMP_TRANS after the commit is durable."""
        self.commit_map[txn.txn_id] = commit_time
        self._append(CLogRecord(CLogType.STAMP_TRANS, txn_id=txn.txn_id,
                                commit_time=commit_time,
                                timestamp=self.engine.clock.now()))
        self._last_stamp_time = commit_time

    def on_abort(self, txn: Transaction) -> None:
        """ABORT after the rollback is durable."""
        self.aborted.add(txn.txn_id)
        self._append(CLogRecord(CLogType.ABORT, txn_id=txn.txn_id,
                                timestamp=self.engine.clock.now()))

    # -- structure events ------------------------------------------------------------------

    def on_split(self, event: SplitEvent) -> None:
        """PAGE_SPLIT with post-split contents (data and index pages).

        For data pages, the pre-split page is first diffed-and-logged (as
        if flushed) so any tuple that reached the page only in memory gets
        its NEW_TUPLE record *before* the split record moves it.

        PAGE_SPLIT records themselves belong to the hash-page-on-read
        refinement (Section V introduces them for page replay); the basic
        log-consistent architecture needs no per-split log traffic.
        """
        if not event.is_index:
            self._diff_and_log(event.old_pgno,
                               event.left_entries + event.right_entries)
            self._logged[event.left_pgno] = list(event.left_entries)
            self._logged[event.right_pgno] = list(event.right_entries)
            if event.old_pgno not in (event.left_pgno, event.right_pgno):
                self._logged.pop(event.old_pgno, None)
        if not self.hash_on_read:
            return
        record = CLogRecord(
            CLogType.PAGE_SPLIT, relation_id=event.relation_id,
            pgno=event.old_pgno, left_pgno=event.left_pgno,
            right_pgno=event.right_pgno, parent_pgno=event.parent_pgno,
            is_index=event.is_index, timestamp=self.engine.clock.now())
        if event.sep is not None:
            record.sep_key, record.sep_start = event.sep
        if event.is_index:
            record.left_content = [self._index_bytes(event.left_pgno)]
            record.right_content = [self._index_bytes(event.right_pgno)]
        else:
            record.left_content = [t.to_bytes() for t in event.left_entries]
            record.right_content = [t.to_bytes()
                                    for t in event.right_entries]
        self._append(record)

    def _index_bytes(self, pgno: int) -> bytes:
        page = self.engine.buffer.get(pgno)
        return index_content_bytes(page.children, page.seps)

    def on_migrate(self, event: TimeSplitEvent) -> None:
        """MIGRATE: history moved to a WORM page (Section VI).

        As with splits, the pre-split page is diffed-and-logged first so
        that a version which was inserted and superseded between flushes
        still has a NEW_TUPLE record before migrating.
        """
        self._diff_and_log(event.leaf_pgno,
                           event.hist_entries + event.live_entries)
        self._append(CLogRecord(
            CLogType.MIGRATE, relation_id=event.relation_id,
            pgno=event.leaf_pgno, hist_ref=event.hist_ref,
            split_time=event.split_time,
            timestamp=self.engine.clock.now()))
        state = self._logged.get(event.leaf_pgno)
        if state is not None:
            gone = {self._norm_id(v) for v in event.hist_entries}
            self._logged[event.leaf_pgno] = [
                v for v in state if self._norm_id(v) not in gone]

    # -- shredding hooks (called by the vacuum process) ---------------------------------------

    def log_shredded(self, version: TupleVersion, pgno: int,
                     timestamp: int) -> None:
        """SHREDDED: announce a tuple's erasure before it happens."""
        self._append(CLogRecord(
            CLogType.SHREDDED, relation_id=version.relation_id,
            key=version.key, start=version.start, pgno=pgno,
            tuple_bytes=version.to_bytes(), timestamp=timestamp))

    # -- regret-interval maintenance ------------------------------------------------------------

    def maintenance(self, force: bool = False) -> bool:
        """Regret-interval duties; returns True if an interval elapsed.

        The paper: "we implemented this feature by calling db_checkpoint
        once every regret interval", plus one empty witness file per
        interval and a dummy STAMP_TRANS if the system was otherwise idle.
        """
        now = self.engine.clock.now()
        if not force and now - self._last_witness_time < \
                self.regret_interval:
            return False
        self.engine.run_stamper()  # lazy timestamps ride the checkpoint
        self.engine.wal.flush()
        self.engine.buffer.flush_all()
        self._witness_seq += 1
        self.clog.worm.create_file(self.witness_name(self._witness_seq),
                                   retention=self._witness_retention)
        self.stats.witness_files += 1
        self._last_witness_time = now
        if now - self._last_stamp_time >= self.regret_interval:
            self._append(CLogRecord(CLogType.STAMP_TRANS, txn_id=0,
                                    commit_time=now, heartbeat=True,
                                    timestamp=now))
            self._last_stamp_time = now
        return True

    def witness_name(self, seq: int) -> str:
        """WORM name of the seq-th witness file of this epoch."""
        return f"witness/epoch-{self.clog.epoch:06d}-{seq:06d}"

    # -- crash recovery ---------------------------------------------------------------------------

    def load_epoch_state(self) -> None:
        """Rebuild commit map / aborted set from the epoch's log on WORM.

        Used when re-attaching to an existing epoch (process restart or
        crash recovery): the plugin's volatile state died with the old
        process, but L survives on WORM.
        """
        self._logged.clear()
        self.commit_map.clear()
        self.aborted.clear()
        for _, record in self.clog.records():
            if record.rtype == CLogType.STAMP_TRANS and \
                    not record.heartbeat:
                self.commit_map[record.txn_id] = record.commit_time
            elif record.rtype == CLogType.ABORT:
                self.aborted.add(record.txn_id)

    def begin_recovery(self) -> None:
        """START_RECOVERY plus page re-basing (run before engine redo).

        Rebuilds the commit map and aborted set from the existing epoch log
        (the plugin's volatile state died with the process), then emits a
        PAGE_RESET for every data/index page so the auditor's replay
        re-bases at the crash boundary.
        """
        self.load_epoch_state()
        self._append(CLogRecord(CLogType.START_RECOVERY,
                                timestamp=self.engine.clock.now()))
        if self.hash_on_read:
            self._emit_page_resets()
        else:
            self._rebase_from_disk()

    def _rebase_from_disk(self) -> None:
        for pgno in range(1, self.engine.pager.page_count):
            try:
                page = Page.from_bytes(self.engine.pager.read_raw(pgno))
            except PageFormatError:
                continue
            if page.ptype == LEAF:
                self._logged[pgno] = list(page.entries)

    def _emit_page_resets(self) -> None:
        for pgno in range(1, self.engine.pager.page_count):
            try:
                page = Page.from_bytes(self.engine.pager.read_raw(pgno))
            except PageFormatError:
                continue
            if page.ptype == LEAF:
                self._logged[pgno] = list(page.entries)
                self._append(CLogRecord(
                    CLogType.PAGE_RESET, pgno=pgno,
                    left_content=[t.to_bytes() for t in page.entries],
                    timestamp=self.engine.clock.now()))
            elif page.ptype == INTERNAL:
                self._append(CLogRecord(
                    CLogType.PAGE_RESET, pgno=pgno, is_index=True,
                    left_content=[index_content_bytes(page.children,
                                                      page.seps)],
                    timestamp=self.engine.clock.now()))

    def recovery_outcomes(self, plan: RecoveryPlan) -> None:
        """Append the ABORT/STAMP_TRANS records recovery resolved.

        Only outcomes not already on L are appended (at most the final
        pre-crash transaction's record can be missing, since outcome
        records are written synchronously), keeping the aux log's commit
        times monotone.
        """
        missing = sorted((ct, txn) for txn, ct in plan.committed.items()
                         if txn not in self.commit_map)
        for commit_time, txn_id in missing:
            self.commit_map[txn_id] = commit_time
            self._append(CLogRecord(CLogType.STAMP_TRANS, txn_id=txn_id,
                                    commit_time=commit_time,
                                    timestamp=self.engine.clock.now()))
            self._last_stamp_time = max(self._last_stamp_time, commit_time)
        for txn_id in sorted(plan.aborted | plan.losers):
            if txn_id in self.aborted:
                continue
            self.aborted.add(txn_id)
            self._append(CLogRecord(CLogType.ABORT, txn_id=txn_id,
                                    timestamp=self.engine.clock.now()))

    # -- epoch rotation -----------------------------------------------------------------------------

    def rotate_epoch(self, clog: ComplianceLog) -> None:
        """Switch to the next epoch's log after an audit."""
        self.clog = clog
        self._witness_seq = 0
        self._last_stamp_time = self.engine.clock.now()
        self._last_witness_time = self.engine.clock.now()

    # -- internals ------------------------------------------------------------------------------------

    def _append(self, record: CLogRecord) -> None:
        self.clog.append(record)
        self.stats.bump(record.rtype)
