"""The compliance logging plugin (Sections IV–V).

Mirrors the paper's implementation strategy: "we wrote a compliance logging
plugin that taps into the pread/pwrite system calls of Berkeley DB.  When a
page is written out with pwrite, this plugin parses the page, finds the
tuples that are present in the buffer-cache page but not on the disk page,
and logs them to L on WORM."

Responsibilities:

* **pwrite**: diff the outgoing page against its last logged state (falling
  back to an extra disk read when unknown — the paper's "additional storage
  server I/O", avoided by "caching a separate copy of the page … on each
  pread") and emit NEW_TUPLE records for additions; in hash-page-on-read
  mode also UNDO records for removals.  Lazy-timestamp transitions (txn id →
  commit time) are recognised via the plugin's commit map and produce no
  records.
* **pread**: remember the page's state, and in hash-page-on-read mode log a
  READ_HASH record with the sequential hash ``Hs`` of the page as read
  (tuples ordered by tuple order number; unstamped tuples of committed
  transactions hashed in stamped form so the auditor's replay — which knows
  commit times from earlier STAMP_TRANS records — agrees).
* **commit/abort**: append STAMP_TRANS / ABORT records, strictly after the
  outcome is durable.
* **splits & migrations**: PAGE_SPLIT records with post-split contents,
  MIGRATE records pointing at the WORM historical page.
* **regret-interval maintenance**: flush dirty pages (the paper calls
  db_checkpoint), create the empty WORM *witness file* proving liveness,
  and emit a heartbeat STAMP_TRANS if no transaction ended this interval.
* **crash recovery**: START_RECOVERY, replayed ABORT/STAMP_TRANS outcomes
  for transactions resolved by recovery, and PAGE_RESET records re-basing
  page replay at the crash boundary.

Compliance records are **group-committed**: appends land in the WORM
server's in-memory buffer and a single flush at each durability barrier
covers all of them.  Barriers sit at exactly the Section IV ordering
points — commit/abort durability, before a data page with still-buffered
records is physically written (tracked per page in ``_pending_pages``),
regret-interval maintenance, recovery, and shredding — so a crash at any
instant still satisfies ``Df = Ds ∪ L``.  Per-page memos
(:class:`_PageCache`) make repeated flushes and reads of an unchanged
page O(1) instead of O(tuples).
"""

from __future__ import annotations

import struct
import warnings
from typing import Dict, List, Optional, Set, Tuple

from ..common.config import ComplianceMode
from ..common.errors import PageFormatError
from ..btree.events import SplitEvent, TimeSplitEvent
from ..crypto.hashes import Buffer
from ..crypto.pool import PageDigest
from ..obs import (Counter, MetricsRegistry, Observability,
                   PluginStatsView)
from ..storage.page import INTERNAL, LEAF, PAGE_MAGIC, Page
from ..storage.record import TupleVersion
from ..temporal.engine import Engine
from ..txn import Transaction
from ..wal import RecoveryPlan
from .compliance_log import ComplianceLog
from .records import CLogRecord, CLogType

#: normalised identity of a tuple version: (relation, key, stamped?, time)
NormId = Tuple[int, bytes, bool, int]

_IDX_HEAD = struct.Struct("<iI")
_IDX_SEP = struct.Struct("<Hqi")
_PAGE_PEEK = struct.Struct("<HB")  # magic, page type

#: record types whose pgno fields gate that page's physical write-back
_PAGE_RECORD_TYPES = frozenset({
    CLogType.NEW_TUPLE, CLogType.UNDO, CLogType.SHREDDED,
    CLogType.MIGRATE, CLogType.PAGE_RESET})


def _page_type(raw: bytes) -> Optional[int]:
    """Page type from the header bytes alone — no full parse."""
    if len(raw) < _PAGE_PEEK.size:
        return None
    magic, ptype = _PAGE_PEEK.unpack_from(raw, 0)
    return ptype if magic == PAGE_MAGIC else None


def index_content_bytes(children: List[int],
                        seps: List[Tuple[bytes, int]]) -> bytes:
    """Canonical encoding of an index page's routing content."""
    parts = [_IDX_HEAD.pack(children[0] if children else -1, len(seps))]
    for (key, start), child in zip(seps, children[1:]):
        parts.append(_IDX_SEP.pack(len(key), start, child))
        parts.append(key)
    return b"".join(parts)


def decode_index_content(raw: bytes) -> Tuple[List[int],
                                              List[Tuple[bytes, int]]]:
    """Inverse of :func:`index_content_bytes`."""
    leftmost, count = _IDX_HEAD.unpack_from(raw, 0)
    children = [leftmost]
    seps: List[Tuple[bytes, int]] = []
    cursor = _IDX_HEAD.size
    for _ in range(count):
        klen, start, child = _IDX_SEP.unpack_from(raw, cursor)
        cursor += _IDX_SEP.size
        seps.append((bytes(raw[cursor:cursor + klen]), start))
        children.append(child)
        cursor += klen
    return children, seps


class PluginStats(PluginStatsView):
    """Deprecated alias for the registry-backed stats view.

    ``CompliancePlugin.stats`` is now a :class:`~repro.obs.views.
    PluginStatsView` over the plugin's metrics registry.  Constructing
    a standalone ``PluginStats`` (the PR 1 counter bag) is deprecated;
    the instance wraps a private registry so the legacy attribute
    surface keeps working.
    """

    def __init__(self) -> None:
        warnings.warn(
            "PluginStats is deprecated; read CompliancePlugin.stats "
            "(a view over the repro.obs metrics registry) or "
            "CompliantDB.metrics() instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(MetricsRegistry())


class _PageCache:
    """Per-page memo killing redundant diffing and hashing.

    ``raw``/``norm_map``/``unresolved`` describe the page image as of the
    last pwrite diff; ``read_raw``/``read_digest``/``read_unresolved``
    the image and ``Hs`` digest of the last disk read.  ``unresolved``
    sets hold txn ids whose commit time was unknown when the entry was
    built — lazy timestamping changes those tuples' normalised identity
    the moment the commit map learns the time, so a cache entry is only
    valid while its unresolved set stays disjoint from the commit map.
    """

    __slots__ = ("raw", "norm_map", "unresolved", "read_raw",
                 "read_digest", "read_unresolved", "read_items")

    def __init__(self) -> None:
        self.raw: Optional[bytes] = None
        self.norm_map: Optional[Dict[NormId, TupleVersion]] = None
        self.unresolved: Set[int] = frozenset()
        self.read_raw: Optional[bytes] = None
        self.read_digest: Optional[bytes] = None
        self.read_unresolved: Set[int] = frozenset()
        #: the exact byte items of the last ``Hs`` fold — lets the next
        #: fold of a page that merely gained tuples resume the chain
        #: from ``read_digest`` instead of re-hashing every tuple
        self.read_items: Optional[List[Buffer]] = None


class CompliancePlugin:
    """The pread/pwrite compliance logger."""

    def __init__(self, engine: Engine, clog: ComplianceLog,
                 mode: ComplianceMode, regret_interval: int,
                 witness_retention: Optional[int] = None,
                 obs: Optional[Observability] = None):
        self.engine = engine
        self.clog = clog
        self.mode = mode
        #: the engine's shared digest workers (``hash_workers`` knob);
        #: every page digest the plugin emits goes through this pool
        self._pool = engine.digest_pool
        self.regret_interval = regret_interval
        self._witness_retention = witness_retention
        #: defaults to the engine's bundle so plugin metrics land in the
        #: same registry as the storage layer's
        self.obs = obs if obs is not None else engine.obs
        registry = self.obs.registry
        self.stats = PluginStatsView(registry)
        self._c_buffered = registry.counter(
            "clog_buffered_appends_total",
            help="records appended to the group-commit buffer")
        self._c_barrier_flushes = registry.counter(
            "clog_barrier_flushes_total",
            help="barriers that actually flushed records to WORM")
        self._c_extra_reads = registry.counter(
            "plugin_extra_disk_reads_total",
            help="old-page disk reads the pread cache missed")
        self._c_witness = registry.counter(
            "plugin_witness_files_total",
            help="empty WORM witness files created")
        self._c_hash_hits = registry.counter(
            "plugin_hash_cache_hits_total",
            help="READ_HASH digests served from the page cache")
        self._c_hash_misses = registry.counter(
            "plugin_hash_cache_misses_total",
            help="READ_HASH digests recomputed on cache miss")
        self._c_diff_hits = registry.counter(
            "plugin_diff_cache_hits_total",
            help="pwrite diffs skipped via the cached page state")
        self._c_maintenance = registry.counter(
            "maintenance_runs_total",
            help="regret-interval maintenance rounds that ran")
        #: per-record-type children of clog_records_total, bound lazily
        self._record_counters: Dict[CLogType, Counter] = {}
        #: pgno -> tuple versions — the page state L currently implies.
        #: Stored raw and normalised lazily at diff time, because lazy
        #: timestamping changes a tuple's normalised identity after commit.
        self._logged: Dict[int, List[TupleVersion]] = {}
        #: per-page diff/hash memo (see :class:`_PageCache`)
        self._page_caches: Dict[int, _PageCache] = {}
        #: pages whose buffered compliance records must reach WORM before
        #: the page's own write-back (the Section IV ordering rule)
        self._pending_pages: Set[int] = set()
        #: txn id -> commit time, learned from STAMP_TRANS we wrote
        self.commit_map: Dict[int, int] = {}
        self.aborted: Set[int] = set()
        self._last_stamp_time = engine.clock.now()
        self._last_witness_time = engine.clock.now()
        self._witness_seq = 0
        self._attached = False

    # -- attachment ------------------------------------------------------------

    def attach(self) -> None:
        """Register on every engine seam (idempotent)."""
        if self._attached:
            return
        self.engine.pager.pread_hooks.append(self.on_pread)
        self.engine.pager.pread_batch_hooks.append(self.on_pread_batch)
        self.engine.pager.pwrite_hooks.append(self.on_pwrite)
        self.engine.pager.pwrite_barriers.append(self._page_barrier)
        # the plugin must learn the commit time BEFORE the engine's own
        # commit listener runs the opportunistic stamper: a page flushed
        # mid-stamping would otherwise diff as an unexplained UNDO
        self.engine.txns.on_commit.insert(0, self.on_commit)
        self.engine.txns.on_abort.append(self.on_abort)
        self.engine.add_split_listener(self.on_split)
        self.engine.migration_listeners.append(self.on_migrate)
        self._attached = True

    @property
    def hash_on_read(self) -> bool:
        """Whether the Section V refinement is active."""
        return self.mode is ComplianceMode.HASH_ON_READ

    # -- durability barriers -----------------------------------------------------

    def barrier(self) -> None:
        """Drain buffered compliance records to WORM (group commit).

        Placed at the protocol's ordering points: commit/abort
        durability, before a data page with pending records is written
        back, regret-interval maintenance, and recovery.
        """
        if self.clog.barrier():
            self._c_barrier_flushes.inc()
        self._pending_pages.clear()

    def _page_barrier(self, pgno: int) -> None:
        """Pager pwrite barrier: NEW_TUPLE et al. reach WORM before the
        data page they describe reaches the disk."""
        if pgno in self._pending_pages:
            self.barrier()

    def _stale(self, unresolved: Set[int]) -> bool:
        """Whether a cache entry's unresolved txns have since committed."""
        return bool(unresolved) and \
            not self.commit_map.keys().isdisjoint(unresolved)

    # -- tuple normalisation -----------------------------------------------------

    def _norm_id(self, version: TupleVersion) -> NormId:
        if version.stamped:
            return (version.relation_id, version.key, True, version.start)
        commit_time = self.commit_map.get(version.start)
        if commit_time is not None:
            return (version.relation_id, version.key, True, commit_time)
        return (version.relation_id, version.key, False, version.start)

    def _norm_bytes(self, version: TupleVersion) -> bytes:
        """Tuple bytes with the commit time substituted when known."""
        if version.stamped:
            return version.to_bytes()
        commit_time = self.commit_map.get(version.start)
        if commit_time is None:
            return version.to_bytes()
        return version.stamp(commit_time).to_bytes()

    # -- pread / pwrite hooks -------------------------------------------------------

    def on_pread(self, pgno: int, raw: bytes,
                 _precomputed: PageDigest = None) -> None:
        """Cache the page's disk state; log its read hash (Section V).

        ``_precomputed`` is a ``(digest, unresolved)`` pair the batched
        hook computed on the digest pool for this exact page image —
        accepted only on the cache-miss path.
        """
        ptype = _page_type(raw)
        if ptype == LEAF:
            if not self.hash_on_read:
                # the pread copy only matters while the page is unknown —
                # repeat reads skip the parse entirely
                if pgno not in self._logged:
                    entries = self._parse_leaf(raw)
                    if entries is not None:
                        self._logged[pgno] = list(entries)
                return
            cache = self._page_caches.get(pgno)
            if cache is not None and cache.read_digest is not None and \
                    cache.read_raw == raw and pgno in self._logged and \
                    not self._stale(cache.read_unresolved):
                digest = cache.read_digest
                self._c_hash_hits.inc()
            else:
                result = self._leaf_read_digest(pgno, raw, cache,
                                                _precomputed)
                if result is None:
                    return  # corrupted: the audit's disk scan flags it
                digest = result
            self._append(CLogRecord(
                CLogType.READ_HASH, pgno=pgno, page_hash=digest,
                timestamp=self.engine.clock.now()))
        elif ptype == INTERNAL and self.hash_on_read:
            cache = self._page_caches.get(pgno)
            if cache is not None and cache.read_digest is not None and \
                    cache.read_raw == raw:
                digest = cache.read_digest
                self._c_hash_hits.inc()
            else:
                try:
                    page = Page.from_bytes(raw)
                except PageFormatError:
                    return
                digest = self._pool.h(
                    index_content_bytes(page.children, page.seps))
                if cache is None:
                    cache = self._page_caches.setdefault(pgno,
                                                         _PageCache())
                cache.read_raw = raw
                cache.read_digest = digest
                cache.read_unresolved = frozenset()
                self._c_hash_misses.inc()
            self._append(CLogRecord(
                CLogType.READ_HASH, pgno=pgno, is_index=True,
                page_hash=digest, timestamp=self.engine.clock.now()))

    def on_pread_batch(self, pages: List[Tuple[int, bytes]]) -> None:
        """Batched pread hook (buffer-pool prefetch, Section V).

        Different pages' ``Hs`` chains share no state, so the
        cache-missing leaves of a prefetch batch are digested
        concurrently on the digest pool; the READ_HASH records are then
        appended strictly in page order, because a record's *position*
        in L fixes the commit-map state the auditor's replay will hash
        against (DESIGN.md §10).  The commit map cannot move while this
        runs — the engine is single-writer and blocks here.
        """
        precomputed: Dict[int, PageDigest] = {}
        if self.hash_on_read and self._pool.workers > 0 and len(pages) > 1:
            todo: List[Tuple[int, bytes]] = []
            for pgno, raw in pages:
                if _page_type(raw) != LEAF:
                    continue
                cache = self._page_caches.get(pgno)
                if cache is not None and cache.read_digest is not None \
                        and cache.read_raw == raw \
                        and pgno in self._logged \
                        and not self._stale(cache.read_unresolved):
                    continue  # on_pread will serve it from the cache
                todo.append((pgno, raw))
            if todo:
                digests = self._pool.seq_hash_pages(
                    [raw for _, raw in todo], self.commit_map.get)
                for (pgno, _), digest in zip(todo, digests):
                    if digest is not None:
                        precomputed[pgno] = digest
        for pgno, raw in pages:
            self.on_pread(pgno, raw, _precomputed=precomputed.get(pgno))

    @staticmethod
    def _parse_leaf(raw: bytes):
        try:
            page = Page.from_bytes(raw)
        except PageFormatError:
            return None
        return page.entries if page.ptype == LEAF else None

    def _leaf_read_digest(self, pgno: int, raw: bytes,
                          cache: Optional[_PageCache],
                          precomputed: PageDigest = None
                          ) -> Optional[bytes]:
        """Cache-miss ``Hs`` of a leaf read; ``None`` for corrupt pages.

        The digest comes from the batched extent walk
        (:meth:`~repro.crypto.pool.DigestPool.seq_hash_page`): stamped
        tuples hash their on-page bytes verbatim — the page encoding
        *is* the canonical encoding — and only tuples still carrying a
        txn id get the commit-time substitution.  The unresolved set
        names txns whose commit time was still unknown; the digest must
        be recomputed once they commit.  When the page changed only by
        gaining tuples since the last fold, the chain resumes from the
        cached digest and hashes just the new suffix.
        """
        items: Optional[List[Buffer]] = None
        try:
            if precomputed is not None:
                digest, unresolved = precomputed
            else:
                # memoryview items borrow the raw buffer; it stays alive
                # (and immutable) for as long as the cache holds them
                digest, unresolved, items = \
                    self._pool.seq_hash_page_resumed(
                        raw, self.commit_map.get,
                        cache.read_items if cache is not None else None,
                        cache.read_digest if cache is not None else None)
        except PageFormatError:
            return None
        if pgno not in self._logged:
            entries = self._parse_leaf(raw)
            if entries is None:
                return None
            self._logged[pgno] = list(entries)
        if cache is None:
            cache = self._page_caches.setdefault(pgno, _PageCache())
        cache.read_raw = raw
        cache.read_digest = digest
        cache.read_unresolved = unresolved
        cache.read_items = items  # None on the batch-precomputed path
        self._c_hash_misses.inc()
        return digest

    def on_pwrite(self, pgno: int, raw: bytes) -> None:
        """Diff the outgoing page against its last logged state."""
        cache = self._page_caches.get(pgno)
        if cache is not None and cache.raw == raw:
            # byte-identical to the image of the last diff: the diff is
            # empty by construction, whatever the commit map learned
            # since (normalisation shifts both sides identically)
            self._c_diff_hits.inc()
            return
        if _page_type(raw) != LEAF:
            return
        entries = self._parse_leaf(raw)
        if entries is None:
            return
        self._diff_and_log(pgno, entries, raw=raw)

    def _diff_and_log(self, pgno: int, entries, raw=None) -> None:
        """Emit NEW_TUPLE (and UNDO) records for a page state transition.

        Used at pwrite time, and — crucially — *before* a split or
        migration redistributes a page, so that tuples that reached a page
        in memory but were never flushed still get their NEW_TUPLE records
        before the structure records that move them.

        ``raw`` is the serialised image being written (pwrite path only);
        when given, the computed normalised map is cached against it so
        the next flush of an unchanged page skips the re-parse and
        re-normalisation entirely.
        """
        cache = self._page_caches.get(pgno)
        stored = self._logged.get(pgno)
        if stored is None:
            stored = self._disk_state(pgno)
            old = {self._norm_id(t): t for t in stored}
        elif cache is not None and cache.norm_map is not None and \
                not self._stale(cache.unresolved):
            old = cache.norm_map
            self._c_diff_hits.inc()
        else:
            old = {self._norm_id(t): t for t in stored}
        new: Dict[NormId, TupleVersion] = {}
        unresolved: Set[int] = set()
        for version in entries:
            norm_id = self._norm_id(version)
            new[norm_id] = version
            if not norm_id[2]:  # commit time still unknown
                unresolved.add(version.start)
        for norm_id, version in new.items():
            if norm_id not in old:
                self._append(CLogRecord(
                    CLogType.NEW_TUPLE, pgno=pgno,
                    tuple_bytes=version.to_bytes(),
                    timestamp=self.engine.clock.now()))
        if self.hash_on_read:
            for norm_id, version in old.items():
                if norm_id not in new:
                    self._append(CLogRecord(
                        CLogType.UNDO, pgno=pgno,
                        tuple_bytes=version.to_bytes(),
                        timestamp=self.engine.clock.now()))
        self._logged[pgno] = list(entries)
        if raw is None:
            # split/migrate reshuffles: the image on disk no longer
            # matches what we diffed — drop the page's memo
            self._page_caches.pop(pgno, None)
        else:
            if cache is None:
                cache = self._page_caches.setdefault(pgno, _PageCache())
            cache.raw = raw
            cache.norm_map = new
            cache.unresolved = unresolved

    def _disk_state(self, pgno: int) -> List[TupleVersion]:
        """Fetch the old on-disk page — the extra I/O the pread cache
        usually avoids."""
        self._c_extra_reads.inc()
        try:
            page = Page.from_bytes(self.engine.pager.read_raw(pgno))
        except PageFormatError:
            return []
        if page.ptype != LEAF:
            return []
        return list(page.entries)

    # -- transaction outcomes ----------------------------------------------------------

    def on_commit(self, txn: Transaction, commit_time: int) -> None:
        """STAMP_TRANS after the commit is durable.

        The trailing barrier is the group-commit payoff: one WORM flush
        covers this STAMP_TRANS *and* every record buffered since the
        last barrier (NEW_TUPLEs, READ_HASHes of the whole transaction).
        """
        self.commit_map[txn.txn_id] = commit_time
        self._append(CLogRecord(CLogType.STAMP_TRANS, txn_id=txn.txn_id,
                                commit_time=commit_time,
                                timestamp=self.engine.clock.now()))
        self._last_stamp_time = commit_time
        self.barrier()

    def on_abort(self, txn: Transaction) -> None:
        """ABORT after the rollback is durable."""
        self.aborted.add(txn.txn_id)
        self._append(CLogRecord(CLogType.ABORT, txn_id=txn.txn_id,
                                timestamp=self.engine.clock.now()))
        self.barrier()

    # -- structure events ------------------------------------------------------------------

    def on_split(self, event: SplitEvent) -> None:
        """PAGE_SPLIT with post-split contents (data and index pages).

        For data pages, the pre-split page is first diffed-and-logged (as
        if flushed) so any tuple that reached the page only in memory gets
        its NEW_TUPLE record *before* the split record moves it.

        PAGE_SPLIT records themselves belong to the hash-page-on-read
        refinement (Section V introduces them for page replay); the basic
        log-consistent architecture needs no per-split log traffic.
        """
        if not event.is_index:
            self._diff_and_log(event.old_pgno,
                               event.left_entries + event.right_entries)
            self._logged[event.left_pgno] = list(event.left_entries)
            self._logged[event.right_pgno] = list(event.right_entries)
            if event.old_pgno not in (event.left_pgno, event.right_pgno):
                self._logged.pop(event.old_pgno, None)
            # the redistribution invalidates both halves' page memos
            self._page_caches.pop(event.left_pgno, None)
            self._page_caches.pop(event.right_pgno, None)
        if not self.hash_on_read:
            return
        record = CLogRecord(
            CLogType.PAGE_SPLIT, relation_id=event.relation_id,
            pgno=event.old_pgno, left_pgno=event.left_pgno,
            right_pgno=event.right_pgno, parent_pgno=event.parent_pgno,
            is_index=event.is_index, timestamp=self.engine.clock.now())
        if event.sep is not None:
            record.sep_key, record.sep_start = event.sep
        if event.is_index:
            record.left_content = [self._index_bytes(event.left_pgno)]
            record.right_content = [self._index_bytes(event.right_pgno)]
        else:
            record.left_content = [t.to_bytes() for t in event.left_entries]
            record.right_content = [t.to_bytes()
                                    for t in event.right_entries]
        self._append(record)

    def _index_bytes(self, pgno: int) -> bytes:
        page = self.engine.buffer.get(pgno)
        return index_content_bytes(page.children, page.seps)

    def on_migrate(self, event: TimeSplitEvent) -> None:
        """MIGRATE: history moved to a WORM page (Section VI).

        As with splits, the pre-split page is diffed-and-logged first so
        that a version which was inserted and superseded between flushes
        still has a NEW_TUPLE record before migrating.
        """
        self._diff_and_log(event.leaf_pgno,
                           event.hist_entries + event.live_entries)
        self._append(CLogRecord(
            CLogType.MIGRATE, relation_id=event.relation_id,
            pgno=event.leaf_pgno, hist_ref=event.hist_ref,
            split_time=event.split_time,
            timestamp=self.engine.clock.now()))
        state = self._logged.get(event.leaf_pgno)
        if state is not None:
            gone = {self._norm_id(v) for v in event.hist_entries}
            self._logged[event.leaf_pgno] = [
                v for v in state if self._norm_id(v) not in gone]
        self._page_caches.pop(event.leaf_pgno, None)

    # -- shredding hooks (called by the vacuum process) ---------------------------------------

    def log_shredded(self, version: TupleVersion, pgno: int,
                     timestamp: int) -> None:
        """SHREDDED: announce a tuple's erasure before it happens."""
        self._append(CLogRecord(
            CLogType.SHREDDED, relation_id=version.relation_id,
            key=version.key, start=version.start, pgno=pgno,
            tuple_bytes=version.to_bytes(), timestamp=timestamp))

    # -- regret-interval maintenance ------------------------------------------------------------

    def maintenance(self, force: bool = False) -> bool:
        """Regret-interval duties; returns True if an interval elapsed.

        The paper: "we implemented this feature by calling db_checkpoint
        once every regret interval", plus one empty witness file per
        interval and a dummy STAMP_TRANS if the system was otherwise idle.
        """
        now = self.engine.clock.now()
        if not force and now - self._last_witness_time < \
                self.regret_interval:
            return False
        with self.obs.tracer.span("plugin.maintenance"):
            self.engine.run_stamper()  # lazy stamps ride the checkpoint
            self.engine.wal.flush()
            self.engine.buffer.flush_all()
            self._witness_seq += 1
            self.clog.worm.create_file(
                self.witness_name(self._witness_seq),
                retention=self._witness_retention)
            self._c_witness.inc()
            self._last_witness_time = now
            if now - self._last_stamp_time >= self.regret_interval:
                self._append(CLogRecord(CLogType.STAMP_TRANS, txn_id=0,
                                        commit_time=now, heartbeat=True,
                                        timestamp=now))
                self._last_stamp_time = now
            # regret-interval barrier: nothing buffered may outlive the
            # interval that promised its durability
            self.barrier()
        self._c_maintenance.inc()
        return True

    def witness_name(self, seq: int) -> str:
        """WORM name of the seq-th witness file of this epoch."""
        return f"witness/epoch-{self.clog.epoch:06d}-{seq:06d}"

    # -- crash recovery ---------------------------------------------------------------------------

    def load_epoch_state(self) -> None:
        """Rebuild commit map / aborted set from the epoch's log on WORM.

        Used when re-attaching to an existing epoch (process restart or
        crash recovery): the plugin's volatile state died with the old
        process, but L survives on WORM.
        """
        self._logged.clear()
        self._page_caches.clear()
        self._pending_pages.clear()
        self.commit_map.clear()
        self.aborted.clear()
        for _, record in self.clog.records():
            if record.rtype == CLogType.STAMP_TRANS and \
                    not record.heartbeat:
                self.commit_map[record.txn_id] = record.commit_time
            elif record.rtype == CLogType.ABORT:
                self.aborted.add(record.txn_id)

    def begin_recovery(self) -> None:
        """START_RECOVERY plus page re-basing (run before engine redo).

        Rebuilds the commit map and aborted set from the existing epoch log
        (the plugin's volatile state died with the process), then emits a
        PAGE_RESET for every data/index page so the auditor's replay
        re-bases at the crash boundary.
        """
        with self.obs.tracer.span("plugin.begin_recovery"):
            self.load_epoch_state()
            self._append(CLogRecord(CLogType.START_RECOVERY,
                                    timestamp=self.engine.clock.now()))
            if self.hash_on_read:
                self._emit_page_resets()
            else:
                self._rebase_from_disk()
            # recovery records must be on WORM before redo writes a page
            self.barrier()

    def _rebase_from_disk(self) -> None:
        for pgno in range(1, self.engine.pager.page_count):
            try:
                page = Page.from_bytes(self.engine.pager.read_raw(pgno))
            except PageFormatError:
                continue
            if page.ptype == LEAF:
                self._logged[pgno] = list(page.entries)

    def _emit_page_resets(self) -> None:
        for pgno in range(1, self.engine.pager.page_count):
            try:
                page = Page.from_bytes(self.engine.pager.read_raw(pgno))
            except PageFormatError:
                continue
            if page.ptype == LEAF:
                self._logged[pgno] = list(page.entries)
                self._append(CLogRecord(
                    CLogType.PAGE_RESET, pgno=pgno,
                    left_content=[t.to_bytes() for t in page.entries],
                    timestamp=self.engine.clock.now()))
            elif page.ptype == INTERNAL:
                self._append(CLogRecord(
                    CLogType.PAGE_RESET, pgno=pgno, is_index=True,
                    left_content=[index_content_bytes(page.children,
                                                      page.seps)],
                    timestamp=self.engine.clock.now()))

    def recovery_outcomes(self, plan: RecoveryPlan) -> None:
        """Append the ABORT/STAMP_TRANS records recovery resolved.

        Only outcomes not already on L are appended (at most the final
        pre-crash transaction's record can be missing, since outcome
        records are written synchronously), keeping the aux log's commit
        times monotone.
        """
        missing = sorted((ct, txn) for txn, ct in plan.committed.items()
                         if txn not in self.commit_map)
        for commit_time, txn_id in missing:
            self.commit_map[txn_id] = commit_time
            self._append(CLogRecord(CLogType.STAMP_TRANS, txn_id=txn_id,
                                    commit_time=commit_time,
                                    timestamp=self.engine.clock.now()))
            self._last_stamp_time = max(self._last_stamp_time, commit_time)
        for txn_id in sorted(plan.aborted | plan.losers):
            if txn_id in self.aborted:
                continue
            self.aborted.add(txn_id)
            self._append(CLogRecord(CLogType.ABORT, txn_id=txn_id,
                                    timestamp=self.engine.clock.now()))
        self.barrier()

    # -- epoch rotation -----------------------------------------------------------------------------

    def rotate_epoch(self, clog: ComplianceLog) -> None:
        """Switch to the next epoch's log after an audit."""
        self.clog = clog
        self._pending_pages.clear()  # the seal drained the old buffer
        self._witness_seq = 0
        self._last_stamp_time = self.engine.clock.now()
        self._last_witness_time = self.engine.clock.now()

    def on_crash(self) -> None:
        """Crash simulation: buffered records and page memos are gone.

        Called by :meth:`CompliantDB.crash` after the WORM server drops
        its buffers; :meth:`begin_recovery` rebuilds everything from L.
        """
        self._pending_pages.clear()
        self._page_caches.clear()

    # -- internals ------------------------------------------------------------------------------------

    def _append(self, record: CLogRecord) -> None:
        self.clog.append(record)
        rtype = record.rtype
        counter = self._record_counters.get(rtype)
        if counter is None:
            counter = self.obs.registry.counter(
                "clog_records_total",
                help="compliance-log records appended, by type",
                type=rtype.name)
            self._record_counters[rtype] = counter
        counter.inc()
        self._c_buffered.inc()
        if rtype in _PAGE_RECORD_TYPES:
            if record.pgno >= 0:
                self._pending_pages.add(record.pgno)
        elif rtype == CLogType.PAGE_SPLIT:
            for pgno in (record.pgno, record.left_pgno, record.right_pgno,
                         record.parent_pgno):
                if pgno >= 0:
                    self._pending_pages.add(pgno)
