"""Mala's toolkit — the threat model of Section II, made executable.

"An attacker might have or assume the identity of any legitimate user or
superuser in the system … she may take over root on the platform where the
DBMS runs and issue any possible command to the WORM server in an attempt
to modify one or more historical versions of that tuple … Mala can target
any database file, including data, indexes, logs, and metadata."

Every method here edits the database's on-disk state *directly* — through
the raw (hook-free) pager interface, exactly like the paper's adversary
with a file editor — or appends records to WORM (which the adversary can
do: she holds the DBMS host's WORM credentials; what she cannot do is
rewrite or early-delete committed WORM bytes).

The test suite and the attack-gallery example pair each of these with the
audit that detects it.  Nothing in this module is useful outside the
simulation: it only works against this library's own page format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..common.codec import encode_key
from ..common.errors import ReproError
from ..storage.page import INTERNAL, LEAF, Page
from ..storage.record import TupleVersion
from .records import CLogRecord, CLogType


class AttackFailed(ReproError):
    """The attack's precondition did not hold (nothing to tamper)."""


class Adversary:
    """A superuser editing the database files behind the DBMS's back."""

    def __init__(self, db):
        self._db = db
        self._engine = db.engine
        self._pager = db.engine.pager

    # -- plumbing -------------------------------------------------------------

    def settle(self) -> None:
        """Wait out the write-behind: flush everything, cold cache.

        Mala strikes *after* the regret interval — data is on disk and the
        DBMS can be restarted so its cache is cold.  (Buffer-cache attacks
        are excluded by the threat model.)
        """
        self._engine.run_stamper()
        self._engine.checkpoint()
        self._engine.buffer.drop_all()

    def _read(self, pgno: int) -> Page:
        return Page.from_bytes(self._pager.read_raw(pgno))

    def _write(self, page: Page) -> None:
        self._pager.write_raw(page.pgno,  # repro-lint: disable=barrier-dominance -- Mala IS the adversary: tampering deliberately bypasses the compliance barrier
                              page.to_bytes(self._pager.page_size))

    def _leaf_pages(self):
        for pgno in range(1, self._pager.page_count):
            try:
                page = self._read(pgno)
            except ReproError:
                continue
            if page.ptype == LEAF:
                yield page

    def _locate(self, relation: str, key: Tuple[Any, ...]
                ) -> List[Tuple[Page, int]]:
        """(page, slot) of every on-disk version of a key, oldest first."""
        info = self._engine.relation(relation)
        key_bytes = encode_key(key)
        hits: List[Tuple[Page, int]] = []
        for page in self._leaf_pages():
            for slot, entry in enumerate(page.entries):
                if entry.relation_id == info.relation_id and \
                        entry.key == key_bytes:
                    hits.append((page, slot))
        if not hits:
            raise AttackFailed(
                f"no on-disk version of {relation}{key!r} to tamper")
        return hits

    # -- threat 1: retroactive shredding / alteration ---------------------------------

    def shred_tuple(self, relation: str, key: Tuple[Any, ...],
                    version_index: Optional[int] = None) -> int:
        """Erase committed version(s) of a tuple from the database file.

        The CEO's cover-up: make the record never have existed.  Removes
        all versions, or just the ``version_index``-th oldest.
        """
        hits = self._locate(relation, key)
        if version_index is not None:
            hits = [hits[version_index]]
        removed = 0
        # remove from the highest slot down so indices stay valid
        for page, slot in sorted(hits, key=lambda h: -h[1]):
            del page.entries[slot]
            self._write(page)
            removed += 1
        return removed

    def alter_tuple(self, relation: str, key: Tuple[Any, ...],
                    row: Dict[str, Any],
                    version_index: int = -1) -> None:
        """Rewrite a committed version's payload in place (same key, same
        commit time — the subtlest alteration)."""
        info = self._engine.relation(relation)
        page, slot = self._locate(relation, key)[version_index]
        old = page.entries[slot]
        page.entries[slot] = TupleVersion(
            relation_id=old.relation_id, key=old.key, start=old.start,
            stamped=old.stamped, eol=old.eol, seq=old.seq,
            payload=info.schema.encode_payload(row))
        self._write(page)

    # -- threat 2: post-hoc insertion --------------------------------------------------

    def backdate_insert(self, relation: str, row: Dict[str, Any],
                        start: int) -> None:
        """Plant a tuple with an already-passed commit time.

        The forged-government-record attack: make it appear an activity
        took place, at a chosen past time, though it never did.
        """
        from bisect import bisect_right
        info = self._engine.relation(relation)
        key_bytes = info.schema.encode_key_from_row(row)
        version = TupleVersion(
            relation_id=info.relation_id, key=key_bytes, start=start,
            stamped=True, eol=False, seq=0,
            payload=info.schema.encode_payload(row))
        # descend the relation's own tree on disk so the forgery lands
        # exactly where a lookup would expect it — the subtlest placement
        page = self._read(info.root_pgno)
        while page.ptype == INTERNAL:
            idx = bisect_right(page.seps, (key_bytes, start))
            page = self._read(page.children[idx])
        if not page.fits(self._pager.page_size,
                         extra=version.encoded_size()):
            raise AttackFailed("no room on the target page for the "
                               "forgery")
        page.entries.insert(page.find_slot(key_bytes, start), version)
        self._write(page)

    # -- Fig. 2 index attacks ------------------------------------------------------------

    def swap_leaf_entries(self, relation: str) -> int:
        """Fig. 2(b): swap two leaf elements so lookups miss them."""
        info = self._engine.relation(relation)
        for page in self._leaf_pages():
            ours = [i for i, e in enumerate(page.entries)
                    if e.relation_id == info.relation_id]
            if len(ours) >= 2:
                i, j = ours[0], ours[-1]
                page.entries[i], page.entries[j] = \
                    page.entries[j], page.entries[i]
                self._write(page)
                return page.pgno
        raise AttackFailed("no leaf with two entries to swap")

    def tamper_separator(self, relation: str) -> int:
        """Fig. 2(c): overwrite an internal-node key to hide a subtree."""
        info = self._engine.relation(relation)
        root = self._read(info.root_pgno)
        node = root
        while node.ptype == INTERNAL:
            if node.seps:
                key, start = node.seps[0]
                node.seps[0] = (key[:-1] + b"\xff" if key else b"\xff",
                                start)
                self._write(node)
                return node.pgno
            node = self._read(node.children[0])
        raise AttackFailed("tree has no internal node yet")

    # -- state reversion (Section V's motivating attack) -----------------------------------

    class _Reversion:
        def __init__(self, adversary: "Adversary", pgno: int,
                     original: bytes):
            self._adversary = adversary
            self.pgno = pgno
            self._original = original

        def revert(self) -> None:
            """Put the original bytes back before anyone audits."""
            self._adversary._pager.write_raw(self.pgno, self._original)  # repro-lint: disable=barrier-dominance -- state-reversion attack: unlogged restore is the point

    def begin_state_reversion(self, relation: str, key: Tuple[Any, ...],
                              row: Dict[str, Any]) -> "_Reversion":
        """Tamper a tuple now, planning to undo it before the next audit.

        Returns a handle whose ``revert()`` restores the original bytes —
        the attack the log-consistent architecture alone cannot see, and
        hash-page-on-read exists to catch.
        """
        page, slot = self._locate(relation, key)[-1]
        original = self._pager.read_raw(page.pgno)
        info = self._engine.relation(relation)
        old = page.entries[slot]
        page.entries[slot] = TupleVersion(
            relation_id=old.relation_id, key=old.key, start=old.start,
            stamped=old.stamped, eol=old.eol, seq=old.seq,
            payload=info.schema.encode_payload(row))
        self._write(page)
        return Adversary._Reversion(self, page.pgno, original)

    # -- log / recovery attacks -------------------------------------------------------------

    def append_spurious_abort(self, txn_id: int) -> None:
        """Append a fake ABORT to L to disown a committed transaction."""
        self._db.plugin.clog.append(CLogRecord(
            CLogType.ABORT, txn_id=txn_id,
            timestamp=self._db.clock.now()))

    def append_spurious_stamp(self, txn_id: int, commit_time: int) -> None:
        """Append a fake STAMP_TRANS to legitimise a forged transaction."""
        self._db.plugin.clog.append(CLogRecord(
            CLogType.STAMP_TRANS, txn_id=txn_id, commit_time=commit_time,
            timestamp=self._db.clock.now()))

    def append_spurious_shredded(self, relation: str,
                                 key: Tuple[Any, ...]) -> None:
        """Append a SHREDDED record for an unexpired tuple, then erase it —
        shredding-as-a-cover-up."""
        info = self._engine.relation(relation)
        page, slot = self._locate(relation, key)[-1]
        version = page.entries[slot]
        self._db.plugin.clog.append(CLogRecord(
            CLogType.SHREDDED, relation_id=info.relation_id,
            key=version.key, start=version.start, pgno=page.pgno,
            tuple_bytes=version.to_bytes(),
            timestamp=self._db.clock.now()))
        del page.entries[slot]
        self._write(page)

    def truncate_wal(self) -> None:
        """Destroy the on-disk transaction log before recovery runs.

        The WORM mirror of the tail is exactly the defence against this.
        """
        self._engine.wal.truncate()

    def crash_and_silent_recovery(self) -> None:
        """Crash the DBMS and recover *without* the compliance routines.

        No START_RECOVERY, no replayed outcomes, no PAGE_RESETs — the
        crash-hiding attack.  The liveness/witness checks and the WAL
        mirror cross-check are the countermeasures.
        """
        self._engine.crash()
        self._engine.recover()
