"""The compliance log ``L`` — an append-only file per audit epoch on WORM.

Lifecycle (Section IV): the log for the current epoch receives every
compliance record; at audit time "the current file for L is permanently
closed [sealed], a new one is opened".  Old epochs become deletable once
their retention lapses after the following audit.

Alongside each epoch's log lives the **auxiliary stamp index**: "the
compliance logger creates an auxiliary WORM log file listing the
transaction ID and location in L of each STAMP_TRANS record", which lets
the auditor build its txn→commit-time table without a preliminary scan of
the (much larger) main log.

If the WORM server cannot be written, :class:`ComplianceHaltError` is
raised and transaction processing must halt — exactly the paper's rule.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..common.errors import ComplianceHaltError, WormError
from ..worm import WormServer
from .records import (AuxStampEntry, CLogRecord, CLogType, iter_aux,
                      iter_records)


def log_name(epoch: int) -> str:
    """WORM file name of an epoch's compliance log."""
    return f"clog/epoch-{epoch:06d}.log"


def aux_name(epoch: int) -> str:
    """WORM file name of an epoch's auxiliary stamp index."""
    return f"clog/epoch-{epoch:06d}.aux"


class ComplianceLog:
    """Writer/reader for one epoch of ``L`` plus its stamp index."""

    def __init__(self, worm: WormServer, epoch: int,
                 retention: Optional[int] = None):
        self.worm = worm
        self.epoch = epoch
        self._retention = retention
        for name in (self.name, self.aux):
            if not worm.exists(name):
                worm.create_append_file(name, retention=retention)

    @property
    def name(self) -> str:
        """Main log file name."""
        return log_name(self.epoch)

    @property
    def aux(self) -> str:
        """Auxiliary stamp-index file name."""
        return aux_name(self.epoch)

    # -- writing --------------------------------------------------------------

    def append(self, record: CLogRecord) -> int:
        """Append one record; returns its offset in L.

        STAMP_TRANS records are also indexed in the auxiliary log.
        """
        try:
            offset = self.worm.append(self.name, record.to_bytes())
            if record.rtype == CLogType.STAMP_TRANS:
                entry = AuxStampEntry(record.txn_id, offset,
                                      record.commit_time, record.heartbeat)
                self.worm.append(self.aux, entry.to_bytes())
            return offset
        except WormError as exc:
            raise ComplianceHaltError(
                "compliance log unwritable — transaction processing must "
                f"halt: {exc}") from exc

    def seal(self) -> None:
        """Permanently close this epoch's files (audit completion)."""
        self.worm.seal(self.name)
        self.worm.seal(self.aux)

    # -- reading --------------------------------------------------------------

    def records(self) -> Iterator[Tuple[int, CLogRecord]]:
        """(offset, record) pairs for the whole epoch so far."""
        return iter_records(self.worm.read(self.name))

    def aux_entries(self) -> List[AuxStampEntry]:
        """Parsed auxiliary stamp index."""
        return list(iter_aux(self.worm.read(self.aux)))

    def size(self) -> int:
        """Bytes appended to L so far (the §VII(a) space metric)."""
        return self.worm.size(self.name)

    def record_counts(self) -> dict:
        """Histogram of record types (used by the space benchmarks)."""
        counts: dict = {}
        for _, record in self.records():
            counts[record.rtype.name] = counts.get(record.rtype.name, 0) + 1
        return counts
