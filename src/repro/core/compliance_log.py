"""The compliance log ``L`` — an append-only file per audit epoch on WORM.

Lifecycle (Section IV): the log for the current epoch receives every
compliance record; at audit time "the current file for L is permanently
closed [sealed], a new one is opened".  Old epochs become deletable once
their retention lapses after the following audit.

Alongside each epoch's log lives the **auxiliary stamp index**: "the
compliance logger creates an auxiliary WORM log file listing the
transaction ID and location in L of each STAMP_TRANS record", which lets
the auditor build its txn→commit-time table without a preliminary scan of
the (much larger) main log.

If the WORM server cannot be written, :class:`ComplianceHaltError` is
raised and transaction processing must halt — exactly the paper's rule.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ..common.errors import ComplianceHaltError, ComplianceLogError, \
    WormError
from ..worm import WormServer
from .records import AuxStampEntry, CLogRecord, CLogType, iter_aux

_LEN = struct.Struct("<I")
_STREAM_CHUNK = 256 * 1024


def log_name(epoch: int) -> str:
    """WORM file name of an epoch's compliance log."""
    return f"clog/epoch-{epoch:06d}.log"


def aux_name(epoch: int) -> str:
    """WORM file name of an epoch's auxiliary stamp index."""
    return f"clog/epoch-{epoch:06d}.aux"


class ComplianceLog:
    """Writer/reader for one epoch of ``L`` plus its stamp index."""

    def __init__(self, worm: WormServer, epoch: int,
                 retention: Optional[int] = None):
        self.worm = worm
        self.epoch = epoch
        self._retention = retention
        for name in (self.name, self.aux):
            if not worm.exists(name):
                worm.create_append_file(name, retention=retention)

    @property
    def name(self) -> str:
        """Main log file name."""
        return log_name(self.epoch)

    @property
    def aux(self) -> str:
        """Auxiliary stamp-index file name."""
        return aux_name(self.epoch)

    # -- writing --------------------------------------------------------------

    def append(self, record: CLogRecord) -> int:
        """Append one record (group-commit buffered); returns its offset
        in L.

        STAMP_TRANS records are also indexed in the auxiliary log.  The
        bytes accumulate in the WORM server's in-memory buffer until the
        next :meth:`barrier` makes them durable — callers place barriers
        at the protocol's ordering points (commit/abort durability,
        before dependent data-page write-back, maintenance intervals).
        """
        try:
            offset = self.worm.append(self.name, record.to_bytes(),
                                      durable=False)
            if record.rtype == CLogType.STAMP_TRANS:
                entry = AuxStampEntry(record.txn_id, offset,
                                      record.commit_time, record.heartbeat)
                self.worm.append(self.aux, entry.to_bytes(),
                                 durable=False)
            return offset
        except WormError as exc:
            raise ComplianceHaltError(
                "compliance log unwritable — transaction processing must "
                f"halt: {exc}") from exc

    def barrier(self) -> bool:
        """Durability barrier: drain the group-commit buffer to WORM.

        Returns True if anything was actually flushed.
        """
        try:
            flushed = self.worm.sync(self.name)
            return self.worm.sync(self.aux) or flushed
        except WormError as exc:
            raise ComplianceHaltError(
                "compliance log unwritable — transaction processing must "
                f"halt: {exc}") from exc

    def pending_bytes(self) -> int:
        """Bytes appended but not yet made durable by a barrier."""
        return self.worm.buffered(self.name) + self.worm.buffered(self.aux)

    def seal(self, close_time: int = 0) -> None:
        """Permanently close this epoch's files (audit completion).

        A CLOSE_EPOCH record terminates the log before sealing, so a
        sealed epoch is self-delimiting: a replay of a sealed epoch that
        does not end on CLOSE_EPOCH saw a truncated log.  Idempotent —
        re-sealing an already-sealed epoch appends nothing.
        """
        if not self.worm.meta(self.name).sealed:
            self.append(CLogRecord(rtype=CLogType.CLOSE_EPOCH,
                                   timestamp=close_time))
            self.barrier()
        self.worm.seal(self.name)
        self.worm.seal(self.aux)

    # -- reading --------------------------------------------------------------

    def records(self) -> Iterator[Tuple[int, CLogRecord]]:
        """(offset, record) pairs for the whole epoch so far.

        Streams the log in bounded chunks — the auditor's single pass
        never materialises the (much larger) epoch blob in memory.
        """
        name = self.name
        total = self.worm.size(name)
        buf = b""
        base = 0          # absolute offset of buf[0] in L
        cursor = 0        # parse position within buf
        fetched = 0       # bytes read from WORM so far
        while base + cursor < total:
            while True:   # ensure one whole frame is buffered
                avail = len(buf) - cursor
                if avail >= _LEN.size:
                    (length,) = _LEN.unpack_from(buf, cursor)
                    if avail >= _LEN.size + length:
                        break
                if fetched >= total:
                    raise ComplianceLogError("truncated record frame")
                chunk = self.worm.read(name, fetched, _STREAM_CHUNK)
                if not chunk:
                    raise ComplianceLogError("truncated record frame")
                fetched += len(chunk)
                if cursor:
                    buf = buf[cursor:]
                    base += cursor
                    cursor = 0
                buf = buf + chunk if buf else chunk
            record, next_cursor = CLogRecord.from_bytes(buf, cursor)
            yield base + cursor, record
            cursor = next_cursor

    def aux_entries(self) -> List[AuxStampEntry]:
        """Parsed auxiliary stamp index."""
        return list(iter_aux(self.worm.read(self.aux)))

    def size(self) -> int:
        """Bytes appended to L so far (the §VII(a) space metric)."""
        return self.worm.size(self.name)

    def record_counts(self) -> dict:
        """Histogram of record types, from a streaming pass over L.

        Callers holding a plugin should prefer the continuously
        maintained ``clog_records_total`` counters (see
        ``CompliantDB.metrics()`` or ``plugin.stats.records``) — this
        re-parse exists for readers (auditor-side tools) that only have
        the log.
        """
        counts: dict = {}
        for _, record in self.records():
            counts[record.rtype.name] = counts.get(record.rtype.name, 0) + 1
        return counts
