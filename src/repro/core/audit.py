"""The auditor (Sections IV–VI, VIII).

A single pass over the compliance log plus a single pass over the final
database state decides whether the database is compliant:

* **Tuple completeness** — ``Df = Ds ∪ L`` (minus legally shredded and
  WORM-migrated versions), checked with the incremental commutative
  ADD-HASH so neither the log nor the final state needs sorting.  (The
  sort-merge variant the paper describes first is also provided, for the
  audit-cost ablation benchmark.)
* **STAMP_TRANS discipline** — via the auxiliary index: at most one commit
  record per transaction, strictly increasing commit times, no transaction
  both committed and aborted.
* **Liveness** — commits, heartbeats, and witness-file create times must
  never leave a gap longer than the regret interval (with slack), except
  across an honestly declared crash (START_RECOVERY), whose downtime the
  auditor excuses exactly as the paper prescribes.
* **Structure** — every page parses, leaf entries are sorted with versions
  threaded in commit-time order, and every B+-tree's internal keys are
  consistent with its leaves (the Fig. 2 attacks).
* **Read verification** (hash-page-on-read) — the auditor replays every
  page's state from the snapshot forward through NEW_TUPLE / UNDO /
  PAGE_SPLIT / PAGE_RESET / MIGRATE records and checks each READ_HASH,
  closing the state-reversion attack.
* **Recovery consistency** — the WAL mirror on WORM must tell the same
  story as L: identical commit/abort outcomes and identical tuple sets.
  This is the paper's "verify that the sequence of NEW_TUPLE and
  STAMP_TRANS records appended to L during recovery is consistent with the
  transaction log", and it also catches post-hoc insertion of records.
* **Shredding legality** — every SHREDDED tuple existed, had expired under
  the Expiry policy in force at shred time, and is truly gone.

On success the auditor writes the next signed snapshot, seals the epoch's
log files, and rotates the database to the next epoch.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..btree.integrity import check_leaf_entries, check_tree
from ..common.config import ComplianceMode
from ..common.errors import (AuditError, ComplianceLogError,
                             PageFormatError, SnapshotError, WalError,
                             WormFileNotFoundError)
from ..crypto import AddHash, AuditorKey, SeqHash, h
from ..storage.page import LEAF, Page
from ..storage.record import TupleVersion
from ..temporal.catalog import CATALOG_RELATION_ID, CATALOG_SCHEMA
from ..temporal.history import decode_hist_page
from ..wal import WalRecord, WalRecordType, analyse
from .compliance_log import ComplianceLog
from .plugin import decode_index_content, index_content_bytes
from .records import AuxStampEntry, CLogRecord, CLogType
from .shredding import EXPIRY_RELATION
from .snapshot import Snapshot, load_snapshot, write_snapshot

NormId = Tuple[int, bytes, bool, int]


@dataclass
class Finding:
    """One compliance violation discovered by the audit."""

    code: str
    detail: str
    pgno: Optional[int] = None
    #: which audit phase raised it (snapshot/log/final/checks); part of
    #: the deterministic report ordering, not of the human rendering
    phase: str = ""

    def sort_key(self) -> Tuple[str, str, str, int]:
        """Deterministic ordering key, independent of discovery order."""
        return (self.phase, self.code, self.detail,
                -1 if self.pgno is None else self.pgno)

    def __str__(self) -> str:
        where = f" (page {self.pgno})" if self.pgno is not None else ""
        return f"[{self.code}]{where} {self.detail}"


@dataclass
class AuditReport:
    """Outcome of one audit run."""

    epoch: int
    ok: bool = True
    findings: List[Finding] = field(default_factory=list)
    snapshot_tuples: int = 0
    final_tuples: int = 0
    log_records: int = 0
    new_tuples: int = 0
    read_hashes_checked: int = 0
    pages_scanned: int = 0
    shredded_verified: int = 0
    migrations_verified: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    new_epoch: Optional[int] = None
    #: hex ADD-HASH digests of the two sides of ``Df = Ds ∪ L``
    expected_digest: str = ""
    final_digest: str = ""
    #: parallel-audit provenance (0 = serial single-pass auditor)
    workers: int = 0
    tasks_total: int = 0
    tasks_resumed: int = 0
    #: phase stamped onto findings as they are added (set by the
    #: auditor's phase loop; excluded from report comparisons)
    current_phase: str = field(default="", repr=False, compare=False)

    def add(self, code: str, detail: str,
            pgno: Optional[int] = None) -> None:
        """Record a violation."""
        self.findings.append(Finding(code, detail, pgno,
                                     phase=self.current_phase))
        self.ok = False

    def extend(self, findings: List[Finding]) -> None:
        """Merge findings produced elsewhere (e.g. by audit workers).

        Findings that were created without a phase inherit the report's
        current phase, so serial and partitioned audits tag identically.
        """
        for finding in findings:
            if not finding.phase:
                finding.phase = self.current_phase
            self.findings.append(finding)
        if findings:
            self.ok = False

    def finalize(self) -> None:
        """Put findings into their canonical deterministic order.

        Sorting by (phase, code, detail, pgno) makes the report
        independent of discovery order — a serial scan and any worker
        interleaving of the partitioned scan produce the same list.
        """
        self.findings.sort(key=Finding.sort_key)

    def comparable(self) -> Dict[str, object]:
        """The report's decision-relevant content, for equality checks.

        Excludes wall-clock timings and parallel-execution provenance
        (worker/task counts), which legitimately differ between a serial
        and a partitioned run of the same audit.
        """
        return {
            "epoch": self.epoch,
            "ok": self.ok,
            "findings": [(f.phase, f.code, f.detail, f.pgno)
                         for f in sorted(self.findings,
                                         key=Finding.sort_key)],
            "snapshot_tuples": self.snapshot_tuples,
            "final_tuples": self.final_tuples,
            "log_records": self.log_records,
            "new_tuples": self.new_tuples,
            "read_hashes_checked": self.read_hashes_checked,
            "pages_scanned": self.pages_scanned,
            "shredded_verified": self.shredded_verified,
            "migrations_verified": self.migrations_verified,
            "expected_digest": self.expected_digest,
            "final_digest": self.final_digest,
            "new_epoch": self.new_epoch,
        }

    def codes(self) -> Set[str]:
        """Distinct finding codes (handy in tests)."""
        return {f.code for f in self.findings}

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        status = "COMPLIANT" if self.ok else \
            f"TAMPERING DETECTED ({len(self.findings)} findings)"
        lines = [f"Audit of epoch {self.epoch}: {status}",
                 f"  snapshot tuples: {self.snapshot_tuples}, "
                 f"final tuples: {self.final_tuples}, "
                 f"log records: {self.log_records}, "
                 f"read hashes checked: {self.read_hashes_checked}"]
        lines.extend(f"  - {finding}" for finding in self.findings[:20])
        if len(self.findings) > 20:
            lines.append(f"  … and {len(self.findings) - 20} more")
        return "\n".join(lines)


class Auditor:
    """Runs compliance audits against a :class:`CompliantDB`."""

    #: liveness gaps up to slack × regret interval are tolerated
    GAP_SLACK = 2.0

    def __init__(self, db, key: Optional[AuditorKey] = None):
        self._db = db
        self._key = key if key is not None else db.auditor_key
        registry = db.obs.registry
        self._c_pass = registry.counter(
            "audits_total", help="audit runs by outcome", outcome="pass")
        self._c_fail = registry.counter(
            "audits_total", help="audit runs by outcome", outcome="fail")
        self._phase_buckets = tuple(db.config.obs.latency_buckets)

    def _end_phase(self, report: AuditReport, name: str,
                   started: float) -> None:
        """Record a phase's wall-clock cost (report + histogram).

        Wall-clock feeds *metrics only* — nothing on the audit decision
        path depends on it, so replay determinism is preserved.
        """
        elapsed = time.perf_counter() - started
        report.phase_seconds[name] = elapsed
        self._db.obs.registry.histogram(
            "audit_phase_seconds", buckets=self._phase_buckets,
            help="audit wall-clock cost by phase",
            phase=name).observe(elapsed)

    # -- entry point --------------------------------------------------------------

    def audit(self, rotate: bool = True) -> AuditReport:
        """Run a full audit of the current epoch.

        With ``rotate=True`` (the default) a passing audit writes the next
        snapshot, seals the epoch, and advances the database to the next
        epoch — the paper's full audit protocol.  ``rotate=False`` is a
        dry run (an *unannounced spot audit*).
        """
        db = self._db
        if db.mode is ComplianceMode.REGULAR:
            raise AuditError("a REGULAR-mode database cannot be audited")
        db.prepare_for_audit()
        report = AuditReport(epoch=db.epoch)
        with db.obs.tracer.span("audit", epoch=db.epoch) as span:
            self._run_phases(report, rotate)
            span.set(ok=report.ok, findings=len(report.findings))
        report.finalize()
        (self._c_pass if report.ok else self._c_fail).inc()
        return report

    def _run_phases(self, report: AuditReport, rotate: bool) -> None:
        db = self._db
        tracer = db.obs.tracer

        started = time.perf_counter()
        report.current_phase = "snapshot"
        with tracer.span("audit.snapshot"):
            try:
                snapshot = load_snapshot(db.worm, self._key, db.epoch)
            except (SnapshotError, WormFileNotFoundError) as exc:
                report.add("snapshot",
                           f"previous snapshot unusable: {exc}")
                self._end_phase(report, "snapshot", started)
                return
            report.snapshot_tuples = snapshot.tuple_count
        self._end_phase(report, "snapshot", started)

        started = time.perf_counter()
        report.current_phase = "log"
        with tracer.span("audit.log"):
            scan = self._scan_log(snapshot, report)
        self._end_phase(report, "log", started)

        started = time.perf_counter()
        report.current_phase = "final"
        with tracer.span("audit.final"):
            final = self._scan_final_state(report)
        self._end_phase(report, "final", started)

        started = time.perf_counter()
        report.current_phase = "checks"
        with tracer.span("audit.checks"):
            self._check_completeness(snapshot, scan, final, report)
            self._check_shredding(scan, final, report)
            self._check_wal_mirror(scan, report)
            self._check_liveness(snapshot, scan, report)
            self._check_directory(scan, report)
        self._end_phase(report, "checks", started)

        if report.ok and rotate:
            started = time.perf_counter()
            report.current_phase = "rotate"
            with tracer.span("audit.rotate"):
                write_snapshot(
                    db.worm, self._key, db.engine, epoch=db.epoch + 1,
                    retention=db.config.compliance.worm_retention)
                report.new_epoch = db.rotate_epoch()
            self._end_phase(report, "rotate", started)

    def _scan_log(self, snapshot: Snapshot,
                  report: AuditReport) -> ScanState:
        """Single-threaded forward pass over L (overridden by the
        partitioned auditor)."""
        scan = _LogScan(self._db, snapshot, report)
        scan.run()
        return scan

    def verify_tuple(self, relation: str, key: Tuple) -> List[Finding]:
        """Targeted spot check of one tuple's version history.

        The lightweight "unannounced audit" primitive: verify that every
        on-disk version of (relation, key) is accounted for by the current
        snapshot or a committed NEW_TUPLE record, without a full audit.
        Returns the findings (empty = consistent).  Note this is strictly
        weaker than :meth:`audit` — it cannot see *missing* versions the
        log knows nothing about being absent elsewhere.
        """
        from ..common.codec import encode_key
        db = self._db
        if db.mode is ComplianceMode.REGULAR:
            raise AuditError("a REGULAR-mode database cannot be audited")
        db.prepare_for_audit()
        findings: List[Finding] = []
        snapshot = load_snapshot(db.worm, self._key, db.epoch)
        key_bytes = encode_key(key)
        accounted: Dict[Tuple[bytes, int], bytes] = {}
        for version in snapshot.all_tuples():
            if version.key == key_bytes:
                accounted[(version.key, version.start)] = \
                    version.to_bytes()
        commit_map: Dict[int, int] = {}
        pending: List[TupleVersion] = []
        for _, record in db.clog.records():
            if record.rtype == CLogType.STAMP_TRANS and \
                    not record.heartbeat:
                commit_map[record.txn_id] = record.commit_time
            elif record.rtype == CLogType.NEW_TUPLE:
                version = TupleVersion.from_bytes(record.tuple_bytes)[0]
                if version.key == key_bytes:
                    pending.append(version)
        for version in pending:
            if not version.stamped:
                commit_time = commit_map.get(version.start)
                if commit_time is None:
                    continue
                version = version.stamp(commit_time)
            accounted[(version.key, version.start)] = version.to_bytes()
        info = db.engine.relation(relation)
        for view in db.engine.versions(relation, key,
                                       include_history=False):
            raw = view.raw
            if not raw.stamped:
                continue
            known = accounted.get((raw.key, raw.start))
            if known is None:
                findings.append(Finding(
                    "spot-unaccounted",
                    f"{relation}{key!r} version @{raw.start} has no "
                    "snapshot or log provenance"))
            elif known != raw.to_bytes():
                findings.append(Finding(
                    "spot-altered",
                    f"{relation}{key!r} version @{raw.start} differs "
                    "from its logged content"))
        return findings

    # -- final state scan ------------------------------------------------------------

    def _scan_final_state(self, report: AuditReport) -> "_FinalState":
        engine = self._db.engine
        final = _FinalState()
        page_cache: Dict[int, Page] = {}

        def fetch(pgno: int) -> Page:
            page = page_cache.get(pgno)
            if page is None:
                page = Page.from_bytes(engine.pager.read_raw(pgno))
                page_cache[pgno] = page
            return page

        for pgno in range(1, engine.pager.page_count):
            report.pages_scanned += 1
            try:
                page = fetch(pgno)
            except PageFormatError as exc:
                report.add("page-unparseable", str(exc), pgno=pgno)
                continue
            if page.ptype != LEAF or page.historical:
                continue
            for issue in check_leaf_entries(page):
                report.add(issue.kind, issue.detail, pgno=issue.pgno)
            for version in page.entries:
                if not version.stamped:
                    report.add("unstamped-at-audit",
                               "tuple still holds a transaction id after "
                               "quiesce", pgno=pgno)
                    continue
                nid = (version.relation_id, version.key, True,
                       version.start)
                if nid in final.tuples:
                    report.add("duplicate-tuple",
                               f"version {nid!r} appears on two pages",
                               pgno=pgno)
                final.tuples[nid] = version.to_bytes()
                if version.relation_id == CATALOG_RELATION_ID and \
                        not version.eol:
                    row = CATALOG_SCHEMA.decode_payload(version.payload)
                    final.roots[row["relation_id"]] = row["root_pgno"]
                    final.names[row["relation_id"]] = row["name"]
                    final.root_by_name[row["name"]] = row["relation_id"]
        report.final_tuples = len(final.tuples)

        # index consistency of every tree ever recorded in the catalog
        meta = Page.from_bytes(engine.pager.read_raw(0))
        roots = dict(final.roots)
        roots[CATALOG_RELATION_ID] = meta.meta["catalog_root"]
        for relation_id, root in sorted(roots.items()):
            try:
                for issue in check_tree(fetch, root):
                    report.add(issue.kind,
                               f"relation {relation_id}: {issue.detail}",
                               pgno=issue.pgno)
            except PageFormatError as exc:
                report.add("tree-unreadable",
                           f"relation {relation_id}: {exc}", pgno=root)
        return final

    # -- completeness -------------------------------------------------------------------

    def _check_completeness(self, snapshot: Snapshot, scan: ScanState,
                            final: "_FinalState",
                            report: AuditReport) -> None:
        expected: Dict[NormId, bytes] = {}
        for version in snapshot.all_tuples():
            expected[(version.relation_id, version.key, True,
                      version.start)] = version.to_bytes()

        for version in scan.new_tuples:
            if version.stamped:
                nid = (version.relation_id, version.key, True,
                       version.start)
                expected[nid] = version.to_bytes()
                continue
            commit_time = scan.commit_map.get(version.start)
            if commit_time is not None:
                stamped = version.stamp(commit_time)
                expected[(stamped.relation_id, stamped.key, True,
                          stamped.start)] = stamped.to_bytes()
            elif version.start not in scan.aborted:
                report.add("tuple-of-unresolved-txn",
                           f"NEW_TUPLE for txn {version.start} with "
                           "neither STAMP_TRANS nor ABORT")
        report.new_tuples = len(scan.new_tuples)

        for nid in scan.migrated_ids:
            if expected.pop(nid, None) is None:
                report.add("migrated-unknown-tuple",
                           f"MIGRATE moved a version never seen live: "
                           f"{nid!r}")
        for nid, tuple_bytes, _, _ in scan.shredded:
            known = expected.pop(nid, None)
            if known is None:
                if nid not in scan.migrated_ids:
                    report.add("shredded-unknown-tuple",
                               f"SHREDDED names an unknown version "
                               f"{nid!r}")
            elif known != tuple_bytes:
                report.add("shredded-content-mismatch",
                           f"SHREDDED content differs for {nid!r}")

        # both folds go through the digest pool's chunked batch path;
        # ADD-HASH is commutative, so neither dict-iteration order nor
        # the pool's chunking can change the digest
        pool = self._db.engine.digest_pool
        expected_hash = pool.add_hash_many(expected.values())
        if final.add_hash is not None:
            # partitioned scan: the union of the per-chunk partial
            # hashes, sound because ADD-HASH is commutative
            final_hash = final.add_hash
        else:
            final_hash = pool.add_hash_many(final.tuples.values())
        report.expected_digest = expected_hash.hexdigest()
        report.final_digest = final_hash.hexdigest()
        if expected_hash != final_hash:
            missing = [nid for nid in expected if nid not in final.tuples]
            extra = [nid for nid in final.tuples if nid not in expected]
            changed = [nid for nid in expected
                       if nid in final.tuples and
                       expected[nid] != final.tuples[nid]]
            report.add(
                "completeness",
                f"Df != Ds ∪ L: {len(missing)} missing, {len(extra)} "
                f"extra, {len(changed)} altered version(s); e.g. "
                f"missing={missing[:3]!r} extra={extra[:3]!r} "
                f"altered={changed[:3]!r}")

    # -- shredding legality -----------------------------------------------------------------

    def _check_shredding(self, scan: ScanState, final: "_FinalState",
                         report: AuditReport) -> None:
        if not scan.shredded:
            return
        expiry_rel = final.root_by_name.get(EXPIRY_RELATION)
        # reconstruct the Expiry relation's history from the final state
        policies: Dict[str, List[Tuple[int, int]]] = {}
        if expiry_rel is not None:
            from .shredding import EXPIRY_SCHEMA
            live = [version for nid, raw in final.tuples.items()
                    if nid[0] == expiry_rel
                    and not (version := TupleVersion.from_bytes(raw)[0]).eol]
            rows = EXPIRY_SCHEMA.decode_batch(
                [version.payload for version in live])
            for version, row in zip(live, rows):
                policies.setdefault(row["relation"], []).append(
                    (version.start, row["retention"]))
        for history in policies.values():
            history.sort()

        # litigation holds, reconstructed from the audited final state:
        # the latest version of each hold as of the shred time governs
        from .holds import HOLDS_RELATION, holds_history_from_final_state
        holds_rel = final.root_by_name.get(HOLDS_RELATION)
        hold_versions = (holds_history_from_final_state(
            final.tuples, holds_rel) if holds_rel is not None else [])
        by_hold: Dict[int, List] = {}
        for start, hold in hold_versions:
            by_hold.setdefault(hold.hold_id, []).append((start, hold))
        for versions in by_hold.values():
            versions.sort(key=lambda pair: pair[0])

        def held_at(name: str, key: bytes, when: int) -> bool:
            for versions in by_hold.values():
                current = None
                for start, hold in versions:
                    if start <= when:
                        current = hold
                if current is not None and current.covers(name, key, when):
                    return True
            return False

        for nid, _, timestamp, record in scan.shredded:
            if nid in final.tuples:
                report.add("shredded-still-present",
                           f"SHREDDED version {nid!r} is still in the "
                           "database — vacuum incomplete")
            name = final.names.get(record.relation_id)
            if name is not None and held_at(name, record.key, timestamp):
                report.add("shred-under-hold",
                           f"a litigation hold covered this {name} tuple "
                           "at shred time — subpoenaed evidence was "
                           "destroyed")
                continue
            history = policies.get(name or "", [])
            retention = None
            for start, value in history:
                if start <= timestamp:
                    retention = value
            if retention is None:
                report.add("shred-without-policy",
                           f"no Expiry policy covered relation "
                           f"{name!r} at shred time")
                continue
            if record.start + retention > timestamp:
                report.add("premature-shred",
                           f"version committed at {record.start} shredded "
                           f"at {timestamp}, before retention "
                           f"{retention} elapsed")
            else:
                report.shredded_verified += 1

    # -- WAL mirror cross-check ---------------------------------------------------------------

    def _check_wal_mirror(self, scan: ScanState,
                          report: AuditReport) -> None:
        from .database import wal_mirror_name
        name = wal_mirror_name(self._db.epoch)
        if not self._db.worm.exists(name):
            report.add("wal-mirror-missing",
                       "no transaction-log tail on WORM for this epoch")
            return
        data = self._db.worm.read(name)
        records: List[WalRecord] = []
        offset = 0
        while offset < len(data):
            try:
                record, offset = WalRecord.from_bytes(data, offset)
            except WalError:
                break
            records.append(record)
        plan = analyse(records)

        if plan.committed != scan.commit_map:
            only_l = set(scan.commit_map) - set(plan.committed)
            only_wal = set(plan.committed) - set(scan.commit_map)
            drift = {txn for txn in set(scan.commit_map) &
                     set(plan.committed)
                     if scan.commit_map[txn] != plan.committed[txn]}
            report.add("recovery-inconsistent",
                       "L and the WORM transaction-log tail disagree on "
                       f"commits: stamped-not-committed={sorted(only_l)}, "
                       f"committed-not-stamped={sorted(only_wal)}, "
                       f"time-drift={sorted(drift)}")
        wal_aborted = plan.aborted | plan.losers
        if wal_aborted != scan.aborted:
            report.add("recovery-inconsistent",
                       "L and the WORM transaction-log tail disagree on "
                       f"aborts: {sorted(wal_aborted ^ scan.aborted)}")

        wal_ids: Set[NormId] = set()
        for record in plan.records:
            if record.rtype != WalRecordType.INSERT:
                continue
            commit_time = plan.committed.get(record.txn_id)
            if commit_time is None:
                continue
            version = TupleVersion.from_bytes(record.tuple_bytes)[0]
            wal_ids.add((version.relation_id, version.key, True,
                         commit_time))
        l_ids: Set[NormId] = set()
        for version in scan.new_tuples:
            if version.stamped:
                l_ids.add((version.relation_id, version.key, True,
                           version.start))
            else:
                commit_time = scan.commit_map.get(version.start)
                if commit_time is not None:
                    l_ids.add((version.relation_id, version.key, True,
                               commit_time))
        if wal_ids != l_ids:
            report.add("log-wal-divergence",
                       f"{len(l_ids - wal_ids)} tuple(s) on L without a "
                       f"WAL insert, {len(wal_ids - l_ids)} WAL insert(s) "
                       "never logged to L")

    # -- liveness ------------------------------------------------------------------------------

    def _check_liveness(self, snapshot: Snapshot, scan: ScanState,
                        report: AuditReport) -> None:
        regret = self._db.config.compliance.regret_interval
        events: List[Tuple[int, str]] = [(snapshot.created_at, "start")]
        events.extend((t, "stamp") for t in scan.stamp_times)
        events.extend((t, "recovery") for t in scan.recovery_times)
        prefix = f"witness/epoch-{self._db.epoch:06d}-"
        for name in self._db.worm.list_files(prefix):
            events.append((self._db.worm.meta(name).create_time,
                           "witness"))
        events.append((self._db.clock.now(), "audit"))
        by_time: Dict[int, Set[str]] = {}
        for when, kind in events:
            by_time.setdefault(when, set()).add(kind)
        times = sorted(by_time)
        threshold = int(regret * self.GAP_SLACK)
        for prev_time, cur_time in zip(times, times[1:]):
            gap = cur_time - prev_time
            if gap > threshold and "recovery" not in by_time[cur_time]:
                report.add("liveness-gap",
                           f"{gap} µs of silence ending at {cur_time} "
                           "with no witness, heartbeat, or declared "
                           "recovery — a crash may have been hidden")

        # strict STAMP_TRANS discipline from the auxiliary index
        last_time = None
        seen: Dict[int, int] = {}
        for entry in scan.aux_entries:
            if last_time is not None and entry.commit_time < last_time:
                report.add("stamp-order",
                           f"commit time {entry.commit_time} after "
                           f"{last_time} in the aux index")
            last_time = max(last_time or 0, entry.commit_time)
            if entry.heartbeat:
                continue
            if entry.txn_id in seen and \
                    seen[entry.txn_id] != entry.commit_time:
                report.add("stamp-duplicate",
                           f"two different commit times for txn "
                           f"{entry.txn_id}")
            seen[entry.txn_id] = entry.commit_time

    # -- historical directory ------------------------------------------------------------------

    def _check_directory(self, scan: ScanState,
                         report: AuditReport) -> None:
        engine = self._db.engine
        for entry in engine.histdir.all_entries():
            if not self._db.worm.exists(entry.ref):
                report.add("directory-dangling",
                           f"historical directory points at missing WORM "
                           f"file {entry.ref}")
                continue
            if entry.ref not in scan.migrate_refs:
                report.add("directory-unlogged",
                           f"historical page {entry.ref} has no MIGRATE "
                           "record on L")
            else:
                report.migrations_verified += 1


class ScanState:
    """The log-scan state the audit's check phases consume.

    Produced either by the serial :class:`_LogScan` single pass or by
    the parallel coordinator's merge of partitioned slice scans
    (:mod:`repro.core.parallel_audit`); the check methods only ever see
    this shape.
    """

    def __init__(self) -> None:
        self.hash_on_read = False
        self.commit_map: Dict[int, int] = {}
        self.aborted: Set[int] = set()
        self.stamp_times: List[int] = []
        self.recovery_times: List[int] = []
        self.new_tuples: List[TupleVersion] = []
        self.shredded: List[Tuple[NormId, bytes, int, CLogRecord]] = []
        self.shredded_ids: Set[NormId] = set()
        self.migrated_ids: Set[NormId] = set()
        self.migrate_refs: Set[str] = set()
        self.aux_entries: List[AuxStampEntry] = []
        self.undos: List[Tuple[CLogRecord, TupleVersion, NormId]] = []


@dataclass
class _FinalState:
    """Accumulator for the final-state disk scan."""

    tuples: Dict[NormId, bytes] = field(default_factory=dict)
    roots: Dict[int, int] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)
    root_by_name: Dict[str, int] = field(default_factory=dict)
    #: precomputed ADD-HASH of ``tuples`` (set by the partitioned scan
    #: from the per-chunk partials; None = compute from ``tuples``)
    add_hash: Optional[AddHash] = None


class _LogScan(ScanState):
    """Forward pass over the epoch's compliance log.

    With the default partition (``slice_index=0, slice_count=1``) this is
    the serial auditor's single pass.  A partitioned scan (the parallel
    auditor) runs ``slice_count`` instances, each owning the pages with
    ``pgno % slice_count == slice_index``: every slice streams the whole
    log and applies *control* records (STAMP_TRANS / ABORT /
    START_RECOVERY / CLOSE_EPOCH) so its commit-map timeline matches the
    serial scan at every record position — READ_HASH replay must resolve
    transaction ids against the commit map *as of the read*, not the
    final one — while page-keyed records (NEW_TUPLE, UNDO, PAGE_SPLIT,
    READ_HASH, SHREDDED, PAGE_RESET, MIGRATE) are handled only by their
    owning slice.  Slice 0 additionally emits the global (page-less)
    findings and counters, so the union over slices of findings and
    collected state is exactly the serial scan's.
    """

    def __init__(self, db, snapshot: Optional[Snapshot],
                 report: AuditReport, slice_index: int = 0,
                 slice_count: int = 1):
        super().__init__()
        self._db = db
        self.report = report
        self._slice_index = slice_index
        self._slice_count = slice_count
        #: slice 0 owns the global findings/counters of the scan
        self._primary = slice_index == 0
        self.hash_on_read = \
            self._db.mode is ComplianceMode.HASH_ON_READ
        #: log position of each collected new_tuples/shredded/undos item
        #: — lets a coordinator merge slices back into log order
        self.new_tuple_order: List[int] = []
        self.shredded_order: List[int] = []
        self.undo_order: List[int] = []
        # hash-page-on-read replay state (owned pages only)
        snap_leaves = snapshot.leaf_pages if snapshot is not None else {}
        snap_index = snapshot.index_pages if snapshot is not None else {}
        self.leaf_models: Dict[int, Dict[NormId, TupleVersion]] = {
            pgno: {(t.relation_id, t.key, True, t.start): t
                   for t in entries}
            for pgno, entries in snap_leaves.items()
            if self._owns_page(pgno)}
        self.index_models: Dict[int, Tuple[List[int],
                                           List[Tuple[bytes, int]]]] = {
            pgno: decode_index_content(raw)
            for pgno, raw in snap_index.items()
            if self._owns_page(pgno)}
        self._unstamped_index: Dict[int, List[Tuple[int, NormId]]] = {}
        self._saw_recovery = False
        self._closed = False
        self._idx = -1
        # per-version normalisation memo (satellite: the replay hot
        # path re-encoded every tuple on each READ_HASH dispatch)
        self._ni_cache: Dict[int, Tuple[TupleVersion, int, NormId]] = {}
        self._nb_cache: Dict[int, Tuple[TupleVersion, int, bytes]] = {}
        self.norm_memo_hits = 0

    # -- helpers ----------------------------------------------------------------

    def _owns_page(self, pgno: int) -> bool:
        """Does this slice own ``pgno``?  (Always true when serial.)

        Python's floored modulo keeps the rule total even for the
        sentinel ``pgno == -1`` a spurious record may carry, and every
        slice agrees on the owner, so each record is handled exactly
        once.
        """
        return self._slice_count == 1 or \
            pgno % self._slice_count == self._slice_index

    def _add_global(self, code: str, detail: str,
                    pgno: Optional[int] = None) -> None:
        """Record a page-less violation (primary slice only, so a
        partitioned scan reports it exactly once)."""
        if self._primary:
            self.report.add(code, detail, pgno)

    def _norm_id(self, version: TupleVersion) -> NormId:
        if version.stamped:
            return (version.relation_id, version.key, True, version.start)
        commit_time = self.commit_map.get(version.start)
        if commit_time is not None:
            cached = self._ni_cache.get(id(version))
            if cached is not None and cached[0] is version and \
                    cached[1] == commit_time:
                self.norm_memo_hits += 1
                return cached[2]
            nid: NormId = (version.relation_id, version.key, True,
                           commit_time)
            self._ni_cache[id(version)] = (version, commit_time, nid)
            return nid
        return (version.relation_id, version.key, False, version.start)

    def _norm_bytes(self, version: TupleVersion) -> bytes:
        if version.stamped:
            return version.to_bytes()
        commit_time = self.commit_map.get(version.start)
        if commit_time is None:
            return version.to_bytes()
        # memoised per (version, resolved commit time): stamping creates
        # a fresh TupleVersion and re-encodes it, which dominated the
        # READ_HASH replay (every tuple of the page, on every read).
        # The cache pins the version object so an id() reuse after GC
        # cannot alias, and re-resolves if a later STAMP_TRANS changes
        # the commit time this version normalises to.
        cached = self._nb_cache.get(id(version))
        if cached is not None and cached[0] is version and \
                cached[1] == commit_time:
            self.norm_memo_hits += 1
            return cached[2]
        raw = version.stamp(commit_time).to_bytes()
        self._nb_cache[id(version)] = (version, commit_time, raw)
        return raw

    def _model_set(self, pgno: int, version: TupleVersion) -> None:
        nid = self._norm_id(version)
        self.leaf_models.setdefault(pgno, {})[nid] = version
        if not nid[2]:
            self._unstamped_index.setdefault(version.start, []).append(
                (pgno, nid))

    def _rebuild_model(self, pgno: int, entries) -> None:
        model: Dict[NormId, TupleVersion] = {}
        for version in entries:
            nid = self._norm_id(version)
            model[nid] = version
            if not nid[2]:
                self._unstamped_index.setdefault(
                    version.start, []).append((pgno, nid))
        self.leaf_models[pgno] = model

    # -- the pass --------------------------------------------------------------------

    def run(self) -> None:
        clog: ComplianceLog = self._db.clog
        try:
            self.aux_entries = clog.aux_entries()
        except ComplianceLogError as exc:
            self.report.add("aux-log", f"stamp index unreadable: {exc}")
        try:
            for idx, (_, record) in enumerate(clog.records()):
                self.report.log_records += 1
                self.dispatch(idx, record)
        except ComplianceLogError as exc:
            self.report.add("log-corrupt", str(exc))
        self.finish()

    def dispatch(self, idx: int, record: CLogRecord) -> None:
        """Apply one log record (position ``idx`` in L) to the scan."""
        self._idx = idx
        if self._closed:
            self._record_after_close(record.rtype.name)
        handler = getattr(self, f"_on_{record.rtype.name.lower()}", None)
        if handler is not None:
            handler(record)

    def note_skipped(self, idx: int, rtype_name: str) -> None:
        """Advance past a record another slice owns (peek-skip path).

        The partitioned scan avoids fully decoding unowned page-keyed
        records, but the record-after-close invariant must still see
        every log position.
        """
        self._idx = idx
        if self._closed:
            self._record_after_close(rtype_name)

    def _record_after_close(self, rtype_name: str) -> None:
        self._add_global("record-after-close",
                         f"{rtype_name} record appended after "
                         "CLOSE_EPOCH — a closed epoch's log was "
                         "extended")

    def _on_new_tuple(self, record: CLogRecord) -> None:
        if not self._owns_page(record.pgno):
            return
        version = TupleVersion.from_bytes(record.tuple_bytes)[0]
        self.new_tuples.append(version)
        self.new_tuple_order.append(self._idx)
        if self.hash_on_read:
            self._model_set(record.pgno, version)

    def _on_stamp_trans(self, record: CLogRecord) -> None:
        # control record: every slice applies it (the commit-map
        # timeline must match the serial scan's at each log position),
        # but only the primary voices the findings
        self.stamp_times.append(record.commit_time)
        if record.heartbeat:
            return
        if record.txn_id in self.aborted:
            self._add_global("abort-and-commit",
                            f"txn {record.txn_id} has both STAMP_TRANS "
                            "and ABORT records")
            return
        known = self.commit_map.get(record.txn_id)
        if known is not None:
            if known != record.commit_time:
                self._add_global("stamp-duplicate",
                                f"conflicting commit times for txn "
                                f"{record.txn_id}")
            return
        self.commit_map[record.txn_id] = record.commit_time
        # re-key replay entries that were logged before the commit
        for pgno, old_nid in self._unstamped_index.pop(record.txn_id, []):
            model = self.leaf_models.get(pgno)
            if model is None:
                continue
            version = model.pop(old_nid, None)
            if version is not None:
                model[(old_nid[0], old_nid[1], True,
                       record.commit_time)] = version

    def _on_abort(self, record: CLogRecord) -> None:
        if record.txn_id in self.commit_map:
            self._add_global("abort-and-commit",
                            f"txn {record.txn_id} has both STAMP_TRANS "
                            "and ABORT records")
            return
        self.aborted.add(record.txn_id)

    def _on_undo(self, record: CLogRecord) -> None:
        if not self._owns_page(record.pgno):
            return
        version = TupleVersion.from_bytes(record.tuple_bytes)[0]
        nid = self._norm_id(version)
        # validation is deferred to end-of-scan: the write-behind of an
        # aborting transaction's pages can reach disk (steal) moments
        # before its ABORT record is appended, so UNDO-before-ABORT is a
        # legal interleaving
        self.undos.append((record, version, nid))
        self.undo_order.append(self._idx)
        model = self.leaf_models.get(record.pgno)
        if model is not None:
            model.pop(nid, None)

    def finish(self) -> None:
        """End-of-scan validation of deferred UNDO records.

        Identities are re-resolved against the *final* commit map, since
        a commit's STAMP_TRANS may trail its tuples' page flushes.  A
        partitioned scan must NOT run this per slice: the SHREDDED record
        explaining an UNDO can live on a different page (hence a
        different slice), so the coordinator calls
        :func:`validate_undos` once over the merged state instead.
        """
        validate_undos(self.undos, self.commit_map, self.aborted,
                       self.shredded_ids, self.report)

    def _on_page_split(self, record: CLogRecord) -> None:
        # a split touches up to four pages (split page, both result
        # pages, parent), possibly owned by different slices: each slice
        # performs exactly the sub-operations for the pages it owns, in
        # the serial order.  Pages that coincide (e.g. the split page
        # reused as the left result) share one owner, so their relative
        # order of effects is preserved.
        if not self.hash_on_read:
            return
        if record.is_index:
            if self._owns_page(record.pgno) and \
                    record.pgno == record.parent_pgno:  # root index split
                self.index_models[record.pgno] = (
                    [record.left_pgno, record.right_pgno],
                    [(record.sep_key, record.sep_start)])
            elif record.pgno != record.parent_pgno and \
                    self._owns_page(record.parent_pgno):
                self._parent_insert(record)
            if self._owns_page(record.left_pgno):
                self.index_models[record.left_pgno] = \
                    decode_index_content(record.left_content[0])
            if self._owns_page(record.right_pgno):
                self.index_models[record.right_pgno] = \
                    decode_index_content(record.right_content[0])
            return
        left: List[TupleVersion] = []
        right: List[TupleVersion] = []
        if self._owns_page(record.pgno) or \
                self._owns_page(record.left_pgno):
            left = [TupleVersion.from_bytes(b)[0]
                    for b in record.left_content]
        if self._owns_page(record.pgno) or \
                self._owns_page(record.right_pgno):
            right = [TupleVersion.from_bytes(b)[0]
                     for b in record.right_content]
        if self._owns_page(record.pgno):
            old_model = self.leaf_models.get(record.pgno)
            if old_model is not None:
                combined = {self._norm_id(t) for t in left + right}
                if set(old_model) != combined:
                    self.report.add("split-content-mismatch",
                                    "PAGE_SPLIT contents do not match the "
                                    "page's replayed state",
                                    pgno=record.pgno)
            if record.pgno == record.parent_pgno:
                # root leaf became an internal node
                self.leaf_models.pop(record.pgno, None)
                self.index_models[record.pgno] = (
                    [record.left_pgno, record.right_pgno],
                    [(record.sep_key, record.sep_start)])
        if record.pgno != record.parent_pgno and \
                self._owns_page(record.parent_pgno):
            self._parent_insert(record)
        if self._owns_page(record.left_pgno):
            self._rebuild_model(record.left_pgno, left)
        if self._owns_page(record.right_pgno):
            self._rebuild_model(record.right_pgno, right)

    def _parent_insert(self, record: CLogRecord) -> None:
        parent = self.index_models.get(record.parent_pgno)
        if parent is None:
            self.report.add("split-orphan-parent",
                            "PAGE_SPLIT names a parent the auditor has "
                            "never seen", pgno=record.parent_pgno)
            return
        children, seps = parent
        sep = (record.sep_key, record.sep_start)
        idx = bisect_right(seps, sep)
        seps.insert(idx, sep)
        children.insert(idx + 1, record.right_pgno)

    def _on_read_hash(self, record: CLogRecord) -> None:
        if not self.hash_on_read:
            return
        if not self._owns_page(record.pgno):
            return
        self.report.read_hashes_checked += 1
        if record.is_index:
            model = self.index_models.get(record.pgno)
            if model is None:
                self.report.add("read-unknown-page",
                                "READ of an index page the auditor "
                                "cannot replay", pgno=record.pgno)
                return
            expected = h(index_content_bytes(model[0], model[1]))
        else:
            # a data page never seen in the snapshot or on L is replayed
            # as empty: a legitimately blank page hashes equal, while any
            # smuggled contents mismatch below
            model = self.leaf_models.setdefault(record.pgno, {})
            ordered = sorted(model.values(), key=lambda t: t.seq)
            expected = SeqHash().add_many(
                self._norm_bytes(t) for t in ordered).digest()
        if expected != record.page_hash:
            self.report.add("read-hash-mismatch",
                            "a transaction read page contents that L "
                            "cannot explain — state-reversion or direct "
                            "page tampering", pgno=record.pgno)

    def _on_shredded(self, record: CLogRecord) -> None:
        if not self._owns_page(record.pgno):
            return
        nid = (record.relation_id, record.key, True, record.start)
        self.shredded.append((nid, record.tuple_bytes, record.timestamp,
                              record))
        self.shredded_order.append(self._idx)
        self.shredded_ids.add(nid)

    def _on_start_recovery(self, record: CLogRecord) -> None:
        self._saw_recovery = True
        self.recovery_times.append(record.timestamp)

    def _on_page_reset(self, record: CLogRecord) -> None:
        if not self._owns_page(record.pgno):
            return
        if not self._saw_recovery:
            self.report.add("reset-outside-recovery",
                            "PAGE_RESET with no preceding START_RECOVERY",
                            pgno=record.pgno)
        if not self.hash_on_read:
            return
        if record.is_index:
            self.index_models[record.pgno] = decode_index_content(
                record.left_content[0])
        else:
            entries = [TupleVersion.from_bytes(b)[0]
                       for b in record.left_content]
            self._rebuild_model(record.pgno, entries)

    def _on_close_epoch(self, record: CLogRecord) -> None:
        # seal() terminates the epoch with this record; a live epoch's
        # audit never sees one, and nothing may follow it (checked in
        # _dispatch)
        self._closed = True

    def _on_migrate(self, record: CLogRecord) -> None:
        if not self._owns_page(record.pgno):
            return
        if record.hist_ref:
            self.migrate_refs.add(record.hist_ref)
        if record.key:
            return  # re-migration after WORM shredding: chain record only
        try:
            entries = decode_hist_page(
                self._db.worm.read(record.hist_ref))
        except WormFileNotFoundError:
            self.report.add("migrate-missing-page",
                            f"MIGRATE names WORM file {record.hist_ref} "
                            "which does not exist")
            return
        model = self.leaf_models.get(record.pgno)
        for version in entries:
            nid = self._norm_id(version)
            self.migrated_ids.add(nid)
            if model is not None:
                model.pop(nid, None)


def validate_undos(undos: List[Tuple[CLogRecord, TupleVersion, NormId]],
                   commit_map: Dict[int, int], aborted: Set[int],
                   shredded_ids: Set[NormId],
                   report: AuditReport) -> None:
    """End-of-scan validation of deferred UNDO records.

    Identities are re-resolved against the *final* commit map, since a
    commit's STAMP_TRANS may trail its tuples' page flushes.  Shared by
    the serial scan's :meth:`_LogScan.finish` and the parallel
    coordinator, which calls it once over the merged slices — the UNDO
    and the SHREDDED record that explains it may live on pages owned by
    different slices.
    """
    for record, version, _ in undos:
        if version.stamped:
            nid: NormId = (version.relation_id, version.key, True,
                           version.start)
        else:
            commit_time = commit_map.get(version.start)
            if commit_time is not None:
                nid = (version.relation_id, version.key, True,
                       commit_time)
            else:
                nid = (version.relation_id, version.key, False,
                       version.start)
        if nid[2]:
            if nid not in shredded_ids:
                report.add(
                    "undo-unexplained",
                    f"UNDO of committed version {nid!r} with no "
                    "SHREDDED record", pgno=record.pgno)
        elif version.start not in aborted:
            report.add(
                "undo-unexplained",
                f"UNDO for txn {version.start} which never aborted",
                pgno=record.pgno)


# --------------------------------------------------------------------------
# The paper's baseline completeness check (for the audit-cost ablation)
# --------------------------------------------------------------------------


def sorted_completeness_check(snapshot_tuples: List[bytes],
                              log_tuples: List[bytes],
                              final_tuples: List[bytes]) -> bool:
    """The sort-merge tuple completeness check of Section IV-A.

    O(|L| log |L|) sort of the log, then a merge against the snapshot and a
    comparison with the final state — the approach ADD-HASH renders
    unnecessary.  Exists so the audit-time benchmark can compare the two.
    """
    merged = sorted(log_tuples)
    combined = sorted(snapshot_tuples + merged)
    return combined == sorted(final_tuples)
