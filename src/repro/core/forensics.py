"""Forensic analysis of a failed audit.

The paper's related work ("Forensic Analysis of Database Tampering",
Pavlou & Snodgrass) pinpoints *when* and *where* a detected tampering
occurred; the paper notes that keeping the snapshot on WORM "enables
fine-grained forensic analysis if the next audit finds evidence of
tampering".  This module is that analyzer for the log-consistent
architecture.

Given a failing audit, it classifies each anomalous tuple version and
bounds the tampering:

* **where** — the page that held (or holds) the version, from the
  NEW_TUPLE record's PGNO, the snapshot's page map, or the final disk
  state;
* **when** — a `(not-before, not-after)` window: a version is known good
  at its NEW_TUPLE/ snapshot time and at every READ_HASH of its page that
  verified; the window closes at the first failing READ of that page (in
  hash-page-on-read mode) or at audit time.

The analyzer never *excuses* anything — it only annotates a failed audit
so an investigator knows where to subpoena next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..common.config import ComplianceMode
from ..common.errors import PageFormatError
from ..storage.page import LEAF, Page
from ..storage.record import TupleVersion
from .audit import AuditReport, Auditor
from .records import CLogType
from .snapshot import load_snapshot

NormId = Tuple[int, bytes, bool, int]

#: record types that carry no tuple provenance for forensics: outcome
#: markers, page-replay records, and epoch bookkeeping are consumed by
#: the audit itself and never localise a tampered version
_NO_PROVENANCE = frozenset({
    CLogType.ABORT,
    CLogType.UNDO,
    CLogType.PAGE_SPLIT,
    CLogType.START_RECOVERY,
    CLogType.PAGE_RESET,
    CLogType.CLOSE_EPOCH,
})


@dataclass
class TamperEvidence:
    """One localised piece of tampering evidence."""

    kind: str                 # missing | extra | altered | read-mismatch
    nid: Optional[NormId]
    pgno: Optional[int]
    #: tampering happened inside (not_before, not_after]
    not_before: int
    not_after: int
    detail: str = ""

    def __str__(self) -> str:
        where = f"page {self.pgno}" if self.pgno is not None else "?"
        return (f"[{self.kind}] {where}, window "
                f"({self.not_before} … {self.not_after}]: {self.detail}")


@dataclass
class ForensicReport:
    """Everything the analyzer could localise."""

    audit: AuditReport
    evidence: List[TamperEvidence] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"Forensic analysis of epoch {self.audit.epoch}: "
                 f"{len(self.evidence)} localised finding(s)"]
        lines.extend(f"  - {item}" for item in self.evidence)
        return "\n".join(lines)


class ForensicAnalyzer:
    """Post-mortem for a failed audit."""

    def __init__(self, db, key=None):
        self._db = db
        self._auditor = Auditor(db, key=key)

    def analyze(self,
                report: Optional[AuditReport] = None) -> ForensicReport:
        """Run (or reuse) a dry-run audit and localise its findings."""
        if report is None:
            report = self._auditor.audit(rotate=False)
        forensic = ForensicReport(audit=report)
        if report.ok:
            return forensic
        db = self._db
        snapshot = load_snapshot(db.worm, self._auditor._key, db.epoch)
        now = db.clock.now()

        # index the log: per-version provenance and per-page read timeline
        first_seen: Dict[NormId, Tuple[int, int]] = {}  # nid -> (t, pgno)
        commit_map: Dict[int, int] = {}
        read_times: Dict[int, List[int]] = {}
        for _, record in db.clog.records():
            if record.rtype in _NO_PROVENANCE:
                continue
            if record.rtype == CLogType.STAMP_TRANS and \
                    not record.heartbeat:
                commit_map.setdefault(record.txn_id, record.commit_time)
            elif record.rtype == CLogType.READ_HASH and \
                    not record.is_index:
                read_times.setdefault(record.pgno, []).append(
                    record.timestamp)
        for _, record in db.clog.records():
            if record.rtype != CLogType.NEW_TUPLE:
                continue
            version = TupleVersion.from_bytes(record.tuple_bytes)[0]
            if version.stamped:
                nid = (version.relation_id, version.key, True,
                       version.start)
            else:
                commit_time = commit_map.get(version.start)
                if commit_time is None:
                    continue
                nid = (version.relation_id, version.key, True, commit_time)
            first_seen.setdefault(nid, (record.timestamp, record.pgno))
        for pgno, entries in snapshot.leaf_pages.items():
            for version in entries:
                nid = (version.relation_id, version.key, True,
                       version.start)
                first_seen.setdefault(nid, (snapshot.created_at, pgno))

        # current disk placement of every version
        on_disk: Dict[NormId, int] = {}
        for pgno in range(1, db.engine.pager.page_count):
            try:
                page = Page.from_bytes(db.engine.pager.read_raw(pgno))
            except PageFormatError:
                continue
            if page.ptype != LEAF or page.historical:
                continue
            for version in page.entries:
                if version.stamped:
                    on_disk[(version.relation_id, version.key, True,
                             version.start)] = pgno

        hash_on_read = db.mode is ComplianceMode.HASH_ON_READ
        mismatched_reads = [f for f in report.findings
                            if f.code == "read-hash-mismatch"]
        first_bad_read: Dict[int, int] = {}
        if hash_on_read:
            for finding in mismatched_reads:
                if finding.pgno is None:
                    continue
                times = read_times.get(finding.pgno, [])
                if times:
                    first_bad_read.setdefault(finding.pgno, times[-1])

        for finding in report.findings:
            if finding.code == "completeness":
                self._localise_completeness(
                    forensic, finding, snapshot, first_seen, on_disk,
                    first_bad_read, now)
            elif finding.code == "read-hash-mismatch":
                good = [t for t in read_times.get(finding.pgno, [])]
                forensic.evidence.append(TamperEvidence(
                    kind="read-mismatch", nid=None, pgno=finding.pgno,
                    not_before=snapshot.created_at,
                    not_after=good[-1] if good else now,
                    detail="a transaction observed unexplained contents "
                           "on this page"))
        return forensic

    def _localise_completeness(self, forensic, finding, snapshot,
                               first_seen, on_disk, first_bad_read,
                               now) -> None:
        # versions that legally left the live set are not evidence
        legally_gone: Set[NormId] = set()
        for _, record in self._db.clog.records():
            if record.rtype in _NO_PROVENANCE:
                continue
            if record.rtype == CLogType.SHREDDED:
                legally_gone.add((record.relation_id, record.key, True,
                                  record.start))
            elif record.rtype == CLogType.MIGRATE and record.hist_ref \
                    and not record.key:
                from ..temporal.history import decode_hist_page
                try:
                    for version in decode_hist_page(
                            self._db.worm.read(record.hist_ref)):
                        legally_gone.add((version.relation_id,
                                          version.key, True,
                                          version.start))
                except Exception:
                    pass
        missing = [nid for nid in first_seen
                   if nid not in on_disk and nid not in legally_gone]
        extra = [nid for nid in on_disk if nid not in first_seen]
        for nid in missing:
            seen_at, pgno = first_seen[nid]
            not_after = first_bad_read.get(pgno, now)
            forensic.evidence.append(TamperEvidence(
                kind="missing", nid=nid, pgno=pgno, not_before=seen_at,
                detail="version present at not_before, gone by not_after",
                not_after=not_after))
        for nid in extra:
            forensic.evidence.append(TamperEvidence(
                kind="extra", nid=nid, pgno=on_disk[nid],
                not_before=snapshot.created_at, not_after=now,
                detail="version on disk that no snapshot or log record "
                       "accounts for (post-hoc insertion)"))
