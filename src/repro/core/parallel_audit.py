"""Partitioned, resumable audit engine (Section VI audit cost).

The paper's headline audit expense is the two big sequential passes: the
final-state page scan establishing ``Df`` and the forward replay of the
compliance log ``L``.  Both are embarrassingly parallel *because* the
completeness condition ``Df = Ds ∪ L`` is checked with the commutative
ADD-HASH: any partition of the tuple multiset hashes to partial digests
whose :meth:`~repro.crypto.AddHash.union` equals the digest of the whole,
so the order in which partitions complete cannot affect the verdict.

:class:`ParallelAuditor` partitions the work across a ``multiprocessing``
worker pool:

* the **final-state scan** by contiguous page ranges — each worker reads
  its chunk of ``data.db`` directly from disk (the audit quiesce flushed
  every dirty page first) and returns the chunk's findings, tuple
  occurrences, catalog rows, and a partial ADD-HASH;
* the **tree checks** one relation per task, after the chunk barrier
  (the catalog roots come out of the chunk scan);
* the **log scan** by page ownership — slice *i* of *n* owns the pages
  with ``pgno % n == i``.  Every slice streams the whole log so its
  commit-map timeline matches the serial scan at every record position
  (a READ_HASH resolves transaction ids as of the read, not the final
  state), but fully decodes only records whose pages it owns; unowned
  page-keyed records are skipped after a cheap fixed-header peek
  (:func:`repro.core.records.peek_frame`).

The coordinator merges worker results back into exactly the serial
auditor's state, so every check phase — and the resulting
:class:`~repro.core.audit.AuditReport` — is content-identical to the
serial run (compare with :meth:`AuditReport.comparable`).

Progress is checkpointed at task granularity: completed task results are
pickled to ``audit-checkpoint.bin`` under the database directory every
``checkpoint_every`` completions, so an interrupted audit re-run with
``resume=True`` replays the finished tasks from the checkpoint instead
of recomputing them.  A fingerprint (epoch, mode, file sizes, partition
shape) guards against resuming onto a different database state.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Optional, Set,
                    Tuple, TypeVar, cast)

from ..common.config import ComplianceMode
from ..common.errors import (AuditError, ComplianceLogError,
                             PageFormatError, PageNotFoundError,
                             WormFileNotFoundError)
from ..crypto import AddHash, AuditorKey
from ..storage.page import LEAF, Page
from ..storage.record import TupleVersion
from ..temporal.catalog import CATALOG_RELATION_ID, CATALOG_SCHEMA
from ..btree.integrity import check_leaf_entries, check_tree
from ..worm.server import WormServer
from .audit import (AuditReport, Auditor, Finding, NormId, ScanState,
                    _FinalState, _LogScan, validate_undos)
from .records import CLogRecord, CLogType, peek_frame
from .snapshot import Snapshot, load_snapshot

_LEN = struct.Struct("<I")
_STREAM_CHUNK = 256 * 1024

#: record types a slice may skip (without full decode) when it does not
#: own ``record.pgno``; control records are never skipped
_SKIP_BY_PGNO = frozenset({
    CLogType.NEW_TUPLE, CLogType.UNDO, CLogType.READ_HASH,
    CLogType.SHREDDED, CLogType.MIGRATE, CLogType.PAGE_RESET,
})

_R = TypeVar("_R")


# --------------------------------------------------------------------------
# Worker-process environment
# --------------------------------------------------------------------------


@dataclass
class _WorkerEnv:
    """Everything a worker needs, shipped once at pool initialisation."""

    data_path: str
    page_size: int
    page_count: int
    io_delay: float
    mode: ComplianceMode
    epoch: int
    key: AuditorKey
    worm_root: str
    #: buffered (not-yet-durable) tails of WORM files, by name — workers
    #: read durable bytes straight from disk and splice these on top
    overlays: Dict[str, bytes]
    log_file: str
    log_disk_size: int
    log_total_size: int

    def log_tail(self) -> bytes:
        """The compliance log's buffered (not-yet-durable) suffix."""
        return self.overlays.get(self.log_file, b"")


class _WormReader:
    """Read-only WORM access for worker processes.

    Mirrors :meth:`WormServer.read` — durable prefix from the volume
    directory plus the coordinator-shipped buffered tail — without the
    server's metadata journal, so workers can never mutate durability
    state.  Only the methods the audit scan needs are provided.
    """

    def __init__(self, root: Path, overlays: Dict[str, bytes]) -> None:
        self._root = root
        self._overlays = overlays

    def _extent(self, name: str) -> Tuple[Path, int, bytes]:
        path = self._root / name
        tail = self._overlays.get(name, b"")
        disk = path.stat().st_size if path.exists() else 0
        if disk == 0 and not tail and not path.exists():
            raise WormFileNotFoundError(f"no WORM file named {name!r}")
        return path, disk, tail

    def read(self, name: str, offset: int = 0,
             length: Optional[int] = None) -> bytes:
        path, disk, tail = self._extent(name)
        total = disk + len(tail)
        offset = max(0, offset)
        end = total if length is None \
            else min(offset + max(0, length), total)
        if offset >= end:
            return b""
        parts: List[bytes] = []
        if offset < disk:
            with open(path, "rb") as handle:
                handle.seek(offset)
                parts.append(handle.read(min(end, disk) - offset))
        if end > disk:
            parts.append(tail[max(0, offset - disk):end - disk])
        return b"".join(parts)

    def exists(self, name: str) -> bool:
        return (self._root / name).exists() or name in self._overlays


class _DbShim:
    """The minimal database surface :class:`_LogScan` consumes."""

    def __init__(self, mode: ComplianceMode, worm: _WormReader) -> None:
        self.mode = mode
        self.worm = worm
        self.clog = None


class _LogStream:
    """Frame-by-frame pass over L from disk plus the buffered tail.

    Chunked exactly like :meth:`ComplianceLog.records` so a truncated
    log raises the identical ``truncated record frame`` error at the
    identical position in every slice and in the serial scan.
    """

    def __init__(self, path: Path, disk_size: int, tail: bytes) -> None:
        self._path = path
        self._disk_size = disk_size
        self._tail = tail
        self._total = disk_size + len(tail)

    def _read(self, offset: int, length: int) -> bytes:
        end = min(offset + length, self._total)
        if offset >= end:
            return b""
        parts: List[bytes] = []
        disk = self._disk_size
        if offset < disk:
            with open(self._path, "rb") as handle:
                handle.seek(offset)
                parts.append(handle.read(min(end, disk) - offset))
        if end > disk:
            parts.append(self._tail[max(0, offset - disk):end - disk])
        return b"".join(parts)

    def frames(self) -> Iterator[Tuple[bytes, int]]:
        """Yield ``(buffer, cursor)`` with one whole frame buffered.

        ``cursor`` points at the frame's u32 length prefix, so callers
        can either :func:`peek_frame` at ``cursor + 4`` or fully decode
        with :meth:`CLogRecord.from_bytes`.
        """
        total = self._total
        buf = b""
        base = 0          # absolute offset of buf[0] in L
        cursor = 0        # parse position within buf
        fetched = 0       # bytes read so far
        while base + cursor < total:
            while True:   # ensure one whole frame is buffered
                avail = len(buf) - cursor
                if avail >= _LEN.size:
                    (length,) = _LEN.unpack_from(buf, cursor)
                    if avail >= _LEN.size + length:
                        break
                if fetched >= total:
                    raise ComplianceLogError("truncated record frame")
                chunk = self._read(fetched, _STREAM_CHUNK)
                if not chunk:
                    raise ComplianceLogError("truncated record frame")
                fetched += len(chunk)
                if cursor:
                    buf = buf[cursor:]
                    base += cursor
                    cursor = 0
                buf = buf + chunk if buf else chunk
            yield buf, cursor
            cursor += _LEN.size + length


class _WorkerState:
    """Per-process lazily built handles (data file, WORM reader,
    snapshot) shared by every task the worker executes."""

    def __init__(self, env: _WorkerEnv) -> None:
        self.env = env
        self._file = open(env.data_path, "rb")
        self.worm = _WormReader(Path(env.worm_root), env.overlays)
        self.log_path = Path(env.worm_root) / env.log_file
        self._snapshot: Optional[Snapshot] = None

    def read_page(self, pgno: int, charge_delay: bool = True) -> bytes:
        """Replicates :meth:`Pager.read_raw` semantics and simulated
        I/O cost.

        The delay is served with ``time.sleep`` rather than the pager's
        calibrated spin: a worker blocked on (simulated) I/O must yield
        the core to its siblings, exactly like real blocking disk reads
        — overlapping that latency across partitions is the property the
        partitioned scan exploits.  (The pager spins because sub-ms
        determinism matters for single-process transaction benchmarks;
        each audit read still costs its full latency on the issuing
        worker's timeline either way.)

        ``charge_delay=False`` models a shared-buffer-pool hit: the
        serial auditor fetches every page exactly once into its scan
        cache and the tree walk rides on those cached pages, so a
        worker re-reading a page the chunk scan already fetched charges
        no additional device latency — only the scan itself pays.
        """
        env = self.env
        if not 0 <= pgno < env.page_count:
            raise PageNotFoundError(
                f"page {pgno} out of range (file has {env.page_count})")
        if charge_delay and env.io_delay:
            time.sleep(env.io_delay)
        self._file.seek(pgno * env.page_size)
        raw = self._file.read(env.page_size)
        if len(raw) != env.page_size:
            raise PageNotFoundError(f"short read of page {pgno}")
        return raw

    def snapshot(self) -> Snapshot:
        if self._snapshot is None:
            self._snapshot = load_snapshot(
                cast(WormServer, self.worm), self.env.key, self.env.epoch)
        return self._snapshot

    def close(self) -> None:
        self._file.close()


_ENV: Optional[_WorkerEnv] = None
_STATE: Optional[_WorkerState] = None


def _init_worker(env: Optional[_WorkerEnv]) -> None:
    """Pool initializer: (re)bind this process's audit environment."""
    global _ENV, _STATE
    if _STATE is not None:
        _STATE.close()
    _ENV = env
    _STATE = None


def _state() -> _WorkerState:
    global _STATE
    if _STATE is None:
        if _ENV is None:
            raise AuditError("audit worker used before initialisation")
        _STATE = _WorkerState(_ENV)
    return _STATE


# --------------------------------------------------------------------------
# Task result shapes (pickled worker → coordinator, and checkpointed)
# --------------------------------------------------------------------------


@dataclass
class _FinalChunkResult:
    """One page-range chunk of the final-state scan."""

    lo: int
    hi: int
    pages: int
    findings: List[Finding]
    #: every stamped version in page order: (nid, pgno, canonical bytes)
    #: — the coordinator re-derives duplicate-tuple findings from these
    occurrences: List[Tuple[NormId, int, bytes]]
    #: live catalog rows in page order: (relation_id, root_pgno, name)
    catalog_rows: List[Tuple[int, int, str]]
    #: ADD-HASH over the chunk-local deduplicated tuple dict
    partial_hash: AddHash


@dataclass
class _TreeCheckResult:
    """Index-consistency walk of one relation's tree."""

    relation_id: int
    root: int
    findings: List[Finding]


@dataclass
class _LogSliceResult:
    """One ownership slice of the compliance-log scan.

    List entries are ``(log position, item)`` pairs so the coordinator
    can merge slices back into exact log order.
    """

    slice_index: int
    findings: List[Finding]
    log_records: int
    read_hashes: int
    new_tuples: List[Tuple[int, TupleVersion]]
    shredded: List[Tuple[int, Tuple[NormId, bytes, int, CLogRecord]]]
    undos: List[Tuple[int, Tuple[CLogRecord, TupleVersion, NormId]]]
    migrated_ids: Set[NormId]
    migrate_refs: Set[str]
    commit_map: Dict[int, int]
    aborted: Set[int]
    stamp_times: List[int]
    recovery_times: List[int]
    norm_memo_hits: int


# --------------------------------------------------------------------------
# Worker task functions (module-level: pickled by reference)
# --------------------------------------------------------------------------


def _final_chunk_task(lo: int, hi: int) -> _FinalChunkResult:
    """Scan pages ``[lo, hi)`` of the final state.

    Byte-for-byte the serial :meth:`Auditor._scan_final_state` page
    loop, except duplicate-tuple findings are *not* emitted here — a
    duplicate may span chunks, so the coordinator re-derives them from
    the occurrence lists in global page order.
    """
    state = _state()
    findings: List[Finding] = []
    occurrences: List[Tuple[NormId, int, bytes]] = []
    rows: List[Tuple[int, int, str]] = []
    chunk_tuples: Dict[NormId, bytes] = {}
    for pgno in range(lo, hi):
        try:
            page = Page.from_bytes(state.read_page(pgno))
        except PageFormatError as exc:
            findings.append(Finding("page-unparseable", str(exc),
                                    pgno=pgno))
            continue
        if page.ptype != LEAF or page.historical:
            continue
        for issue in check_leaf_entries(page):
            findings.append(Finding(issue.kind, issue.detail,
                                    pgno=issue.pgno))
        for version in page.entries:
            if not version.stamped:
                findings.append(Finding(
                    "unstamped-at-audit",
                    "tuple still holds a transaction id after quiesce",
                    pgno=pgno))
                continue
            nid: NormId = (version.relation_id, version.key, True,
                           version.start)
            raw = version.to_bytes()
            occurrences.append((nid, pgno, raw))
            chunk_tuples[nid] = raw
            if version.relation_id == CATALOG_RELATION_ID and \
                    not version.eol:
                row = CATALOG_SCHEMA.decode_payload(version.payload)
                rows.append((row["relation_id"], row["root_pgno"],
                             row["name"]))
    # batched fold; ADD-HASH is commutative, so dict-iteration order
    # cannot change the digest
    partial = AddHash().add_many(chunk_tuples.values())
    return _FinalChunkResult(lo, hi, hi - lo, findings, occurrences,
                             rows, partial)


def _tree_check_task(relation_id: int, root: int) -> _TreeCheckResult:
    """Index-consistency check of one relation (serial check replica).

    Every page a tree walk touches was already fetched — and its device
    latency charged — by the final-state chunk scan, so these reads are
    buffer-pool hits (``charge_delay=False``), exactly as they are for
    the serial auditor's shared scan cache.
    """
    state = _state()
    cache: Dict[int, Page] = {}

    def fetch(pgno: int) -> Page:
        page = cache.get(pgno)
        if page is None:
            page = Page.from_bytes(
                state.read_page(pgno, charge_delay=False))
            cache[pgno] = page
        return page

    findings: List[Finding] = []
    try:
        for issue in check_tree(fetch, root):
            findings.append(Finding(
                issue.kind, f"relation {relation_id}: {issue.detail}",
                pgno=issue.pgno))
    except PageFormatError as exc:
        findings.append(Finding(
            "tree-unreadable", f"relation {relation_id}: {exc}",
            pgno=root))
    return _TreeCheckResult(relation_id, root, findings)


def _log_slice_task(slice_index: int, slice_count: int
                    ) -> _LogSliceResult:
    """Run one ownership slice of the compliance-log scan.

    Drives the shared :class:`_LogScan` record handlers over every log
    frame, peek-skipping records owned by other slices.  End-of-scan
    UNDO validation is *not* run here — the SHREDDED record explaining
    an UNDO may live on another slice, so the coordinator validates the
    merged state once.
    """
    env = _ENV
    if env is None:
        raise AuditError("audit worker used before initialisation")
    state = _state()
    report = AuditReport(epoch=env.epoch)
    hash_on_read = env.mode is ComplianceMode.HASH_ON_READ
    snapshot = state.snapshot() if hash_on_read else None
    scan = _LogScan(_DbShim(env.mode, state.worm), snapshot, report,
                    slice_index=slice_index, slice_count=slice_count)
    primary = slice_index == 0
    stream = _LogStream(state.log_path, env.log_disk_size,
                        env.log_tail())
    owns = scan._owns_page
    try:
        for idx, (buf, cursor) in enumerate(stream.frames()):
            if primary:
                report.log_records += 1
            rtype_i, pgno, left, right, parent = \
                peek_frame(buf, cursor + _LEN.size)
            try:
                rtype = CLogType(rtype_i)
            except ValueError:
                # unknown record type: decode fully so the failure is
                # the serial scan's failure
                rtype = None
            if rtype is not None and slice_count > 1:
                if rtype in _SKIP_BY_PGNO:
                    skip = not owns(pgno)
                elif rtype is CLogType.PAGE_SPLIT:
                    skip = not (owns(pgno) or owns(left) or
                                owns(right) or owns(parent))
                else:
                    skip = False
                if skip:
                    scan.note_skipped(idx, rtype.name)
                    continue
            record, _ = CLogRecord.from_bytes(buf, cursor)
            scan.dispatch(idx, record)
    except ComplianceLogError as exc:
        # every slice stops at the same frame; one voice reports it
        if primary:
            report.add("log-corrupt", str(exc))
    return _LogSliceResult(
        slice_index=slice_index,
        findings=report.findings,
        log_records=report.log_records,
        read_hashes=report.read_hashes_checked,
        new_tuples=list(zip(scan.new_tuple_order, scan.new_tuples)),
        shredded=list(zip(scan.shredded_order, scan.shredded)),
        undos=list(zip(scan.undo_order, scan.undos)),
        migrated_ids=scan.migrated_ids,
        migrate_refs=scan.migrate_refs,
        commit_map=scan.commit_map,
        aborted=scan.aborted,
        stamp_times=scan.stamp_times,
        recovery_times=scan.recovery_times,
        norm_memo_hits=scan.norm_memo_hits,
    )


# --------------------------------------------------------------------------
# Checkpointing
# --------------------------------------------------------------------------

_CHECKPOINT_VERSION = 1


class _AuditCheckpoint:
    """Task-granular audit progress, persisted with atomic replace.

    Keys are stable task identities (``final:lo:hi``, ``tree:rid:root``,
    ``log:i:n``); values are the pickled task results.  A fingerprint of
    the audited state (epoch, mode, file sizes, partition shape) guards
    resume: progress against a different database state is discarded.
    ``every == 0`` disables persistence entirely (the in-memory map
    still serves same-run lookups).
    """

    def __init__(self, path: Path, every: int,
                 on_flush: Callable[[], object]) -> None:
        self.path = path
        self.every = every
        self._on_flush = on_flush
        self._fingerprint: Tuple[object, ...] = ()
        self._results: Dict[str, object] = {}
        self._pending = 0

    def reset(self, fingerprint: Tuple[object, ...]) -> None:
        """Start fresh (no resume): forget any on-disk progress."""
        self._fingerprint = fingerprint
        self._results = {}
        self._pending = 0
        self.path.unlink(missing_ok=True)

    def try_resume(self, fingerprint: Tuple[object, ...]) -> int:
        """Load prior progress if it matches ``fingerprint``.

        Returns the number of resumable task results.
        """
        self._fingerprint = fingerprint
        self._results = {}
        self._pending = 0
        try:
            with open(self.path, "rb") as handle:
                saved = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ValueError):
            return 0
        if not isinstance(saved, dict) or \
                saved.get("version") != _CHECKPOINT_VERSION or \
                saved.get("fingerprint") != fingerprint:
            return 0
        results = saved.get("results")
        if isinstance(results, dict):
            self._results = results
        return len(self._results)

    def lookup(self, key: str) -> Tuple[bool, object]:
        if key in self._results:
            return True, self._results[key]
        return False, None

    def record(self, key: str, value: object) -> None:
        self._results[key] = value
        self._pending += 1
        if self.every and self._pending >= self.every:
            self.flush()

    def flush(self) -> None:
        """Persist progress (atomic tmp + replace); no-op when disabled
        or when nothing changed since the last write."""
        if not self.every or not self._pending:
            return
        tmp = self.path.with_suffix(".tmp")
        blob = pickle.dumps({"version": _CHECKPOINT_VERSION,
                             "fingerprint": self._fingerprint,
                             "results": self._results})
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            # the rename below may become durable before the data pages
            # do; fsync first or a crash can publish a torn checkpoint
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._pending = 0
        self._on_flush()

    def discard(self) -> None:
        """Audit completed: progress is no longer needed."""
        self._results = {}
        self._pending = 0
        self.path.unlink(missing_ok=True)


# --------------------------------------------------------------------------
# The coordinator
# --------------------------------------------------------------------------


class ParallelAuditor(Auditor):
    """Partitioned :class:`Auditor`: same report, many processes.

    ``workers=1`` runs the partitioned algorithm in-process (no pool) —
    useful for testing the partition/merge logic and as the resume path
    on a single-core box.  ``workers>1`` forks a ``multiprocessing``
    pool; each worker reads the quiesced database files directly.
    """

    def __init__(self, db: Any, key: Optional[AuditorKey] = None, *,
                 workers: Optional[int] = None,
                 chunk_pages: Optional[int] = None,
                 log_slices: Optional[int] = None,
                 checkpoint_every: Optional[int] = None,
                 resume: bool = False,
                 checkpoint_path: Optional[Path] = None) -> None:
        super().__init__(db, key)
        compliance = db.config.compliance
        self._workers: int = workers if workers is not None \
            else max(1, compliance.audit_workers)
        if self._workers < 1:
            raise AuditError("audit workers must be >= 1")
        self._chunk_pages: int = chunk_pages if chunk_pages is not None \
            else compliance.audit_chunk_pages
        if self._chunk_pages < 1:
            raise AuditError("audit chunk_pages must be >= 1")
        slices = log_slices if log_slices is not None \
            else compliance.audit_log_slices
        self._log_slices: int = slices if slices > 0 else self._workers
        every = checkpoint_every if checkpoint_every is not None \
            else compliance.audit_checkpoint_every
        path = checkpoint_path if checkpoint_path is not None \
            else Path(db.path) / "audit-checkpoint.bin"
        self._resume = resume
        registry = db.obs.registry
        self._g_workers = registry.gauge(
            "audit_workers", help="worker processes of the running "
            "partitioned audit")
        self._c_pages = registry.counter(
            "audit_pages_scanned_total",
            help="final-state pages scanned by partitioned audits")
        self._c_ckpt_writes = registry.counter(
            "audit_checkpoint_writes_total",
            help="audit progress checkpoints persisted")
        self._c_tasks_executed = registry.counter(
            "audit_tasks_total", help="partitioned audit tasks by how "
            "their result was obtained", source="executed")
        self._c_tasks_resumed = registry.counter(
            "audit_tasks_total", help="partitioned audit tasks by how "
            "their result was obtained", source="resumed")
        self._ckpt = _AuditCheckpoint(path, every,
                                      on_flush=self._c_ckpt_writes.inc)
        self._pool: Optional[Any] = None
        self._tasks_total = 0
        self._tasks_resumed = 0

    # -- environment / lifecycle ---------------------------------------------

    def _build_env(self) -> _WorkerEnv:
        db = self._db
        pager = db.engine.pager
        clog = db.clog
        assert clog is not None  # audit() rejects REGULAR mode first
        overlays = db.worm.buffered_files()
        log_file: str = clog.name
        total: int = clog.size()
        tail = overlays.get(log_file, b"")
        return _WorkerEnv(
            data_path=str(pager.path), page_size=pager.page_size,
            page_count=pager.page_count, io_delay=pager.io_delay,
            mode=db.mode, epoch=db.epoch, key=self._key,
            worm_root=str(db.worm.root), overlays=overlays,
            log_file=log_file, log_disk_size=total - len(tail),
            log_total_size=total)

    def _fingerprint(self, env: _WorkerEnv) -> Tuple[object, ...]:
        return (env.epoch, env.mode.value, env.page_count,
                env.page_size, env.log_total_size, env.log_disk_size,
                self._chunk_pages, self._log_slices)

    def _run_phases(self, report: AuditReport, rotate: bool) -> None:
        db = self._db
        self._tasks_total = 0
        self._tasks_resumed = 0
        report.workers = self._workers
        self._g_workers.set(self._workers)
        env = self._build_env()
        fingerprint = self._fingerprint(env)
        if self._resume:
            resumable = self._ckpt.try_resume(fingerprint)
            if resumable:
                with db.obs.tracer.span("audit.resume",
                                        tasks=resumable):
                    pass
        else:
            self._ckpt.reset(fingerprint)
        _init_worker(env)
        pool: Optional[Any] = None
        try:
            if self._workers > 1:
                context = multiprocessing.get_context("fork")
                pool = context.Pool(self._workers,
                                    initializer=_init_worker,
                                    initargs=(env,))
            self._pool = pool
            with db.obs.tracer.span("audit.parallel",
                                    workers=self._workers,
                                    log_slices=self._log_slices):
                super()._run_phases(report, rotate)
            self._ckpt.discard()
        finally:
            self._pool = None
            if pool is not None:
                pool.terminate()
                pool.join()
            report.tasks_total = self._tasks_total
            report.tasks_resumed = self._tasks_resumed
            self._g_workers.set(0)
            _init_worker(None)

    # -- task execution ------------------------------------------------------

    def _run_tasks(self, fn: Callable[..., _R],
                   tasks: List[Tuple[str, Tuple[Any, ...]]]) -> List[_R]:
        """Run ``tasks`` (``(checkpoint key, args)`` pairs) through the
        pool, reusing checkpointed results; returns results in task
        order."""
        out: Dict[int, _R] = {}
        live: List[Tuple[int, str, Optional[Any], Tuple[Any, ...]]] = []
        for position, (key, args) in enumerate(tasks):
            hit, value = self._ckpt.lookup(key)
            if hit:
                out[position] = cast(_R, value)
                self._c_tasks_resumed.inc()
                self._tasks_resumed += 1
                continue
            handle = None if self._pool is None \
                else self._pool.apply_async(fn, args)
            live.append((position, key, handle, args))
        for position, key, handle, args in live:
            result: _R = fn(*args) if handle is None else handle.get()
            out[position] = result
            self._c_tasks_executed.inc()
            self._ckpt.record(key, result)
            self._after_task(key, result)
        self._tasks_total += len(tasks)
        self._ckpt.flush()
        return [out[i] for i in range(len(tasks))]

    def _after_task(self, key: str, result: object) -> None:
        """Hook fired after each freshly executed task (test seam for
        simulating an interrupt mid-audit)."""

    # -- partitioned phases ---------------------------------------------------

    def _scan_final_state(self, report: AuditReport) -> _FinalState:
        engine = self._db.engine
        final = _FinalState()
        page_count: int = engine.pager.page_count
        chunk = self._chunk_pages
        spans = [(lo, min(lo + chunk, page_count))
                 for lo in range(1, page_count, chunk)]
        tasks = [(f"final:{lo}:{hi}", (lo, hi)) for lo, hi in spans]
        with self._db.obs.tracer.span("audit.final.chunks",
                                      chunks=len(tasks)):
            results = self._run_tasks(_final_chunk_task, tasks)

        first_chunk_of: Dict[NormId, int] = {}
        cross_chunk_duplicate = False
        partial = AddHash()
        for index, res in enumerate(results):
            report.pages_scanned += res.pages
            self._c_pages.inc(res.pages)
            report.extend(res.findings)
            for nid, pgno, raw in res.occurrences:
                if nid in final.tuples:
                    report.add("duplicate-tuple",
                               f"version {nid!r} appears on two pages",
                               pgno=pgno)
                final.tuples[nid] = raw
                seen_in = first_chunk_of.setdefault(nid, index)
                if seen_in != index:
                    cross_chunk_duplicate = True
            for relation_id, root_pgno, name in res.catalog_rows:
                final.roots[relation_id] = root_pgno
                final.names[relation_id] = name
                final.root_by_name[name] = relation_id
            partial = partial.union(res.partial_hash)
        # the union of per-chunk partial hashes equals the hash of the
        # deduplicated tuple dict only when no version id spans chunks;
        # on the (tampering) corner case, fall back to hashing the
        # merged dict so the digest matches the serial auditor's
        final.add_hash = None if cross_chunk_duplicate else partial
        report.final_tuples = len(final.tuples)

        meta = Page.from_bytes(engine.pager.read_raw(0))
        roots = dict(final.roots)
        roots[CATALOG_RELATION_ID] = meta.meta["catalog_root"]
        tree_tasks = [(f"tree:{relation_id}:{root}",
                       (relation_id, root))
                      for relation_id, root in sorted(roots.items())]
        with self._db.obs.tracer.span("audit.final.trees",
                                      trees=len(tree_tasks)):
            for tree in self._run_tasks(_tree_check_task, tree_tasks):
                report.extend(tree.findings)
        return final

    def _scan_log(self, snapshot: Snapshot,
                  report: AuditReport) -> ScanState:
        db = self._db
        merged = ScanState()
        merged.hash_on_read = db.mode is ComplianceMode.HASH_ON_READ
        try:
            merged.aux_entries = db.clog.aux_entries()
        except ComplianceLogError as exc:
            report.add("aux-log", f"stamp index unreadable: {exc}")
        slices = self._log_slices
        tasks = [(f"log:{index}:{slices}", (index, slices))
                 for index in range(slices)]
        with db.obs.tracer.span("audit.log.slices", slices=slices):
            results = self._run_tasks(_log_slice_task, tasks)

        new_tuples: List[Tuple[int, TupleVersion]] = []
        shredded: List[Tuple[int,
                             Tuple[NormId, bytes, int, CLogRecord]]] = []
        undos: List[Tuple[int,
                          Tuple[CLogRecord, TupleVersion, NormId]]] = []
        memo_hits = 0
        for res in results:
            report.extend(res.findings)
            report.read_hashes_checked += res.read_hashes
            if res.slice_index == 0:
                # control state is identical across slices by
                # construction; take the primary's copy
                report.log_records += res.log_records
                merged.commit_map = res.commit_map
                merged.aborted = res.aborted
                merged.stamp_times = res.stamp_times
                merged.recovery_times = res.recovery_times
            new_tuples.extend(res.new_tuples)
            shredded.extend(res.shredded)
            undos.extend(res.undos)
            merged.migrated_ids |= res.migrated_ids
            merged.migrate_refs |= res.migrate_refs
            memo_hits += res.norm_memo_hits
        new_tuples.sort(key=lambda pair: pair[0])
        shredded.sort(key=lambda pair: pair[0])
        undos.sort(key=lambda pair: pair[0])
        merged.new_tuples = [version for _, version in new_tuples]
        merged.shredded = [entry for _, entry in shredded]
        merged.undos = [entry for _, entry in undos]
        merged.shredded_ids = {entry[0] for entry in merged.shredded}
        self._db.obs.registry.counter(
            "audit_norm_memo_hits_total",
            help="READ-hash replay normalisations served from the "
            "per-version memo").inc(memo_hits)
        validate_undos(merged.undos, merged.commit_map, merged.aborted,
                       merged.shredded_ids, report)
        return merged
