"""Auditable shredding of expired tuples (Section VIII).

The **Expiry relation** records a retention period per relation ("for
current regulations, it usually suffices to remember a single retention
period per relation, and we take that approach").  It is itself an
ordinary transaction-time relation, so retention-policy changes are
versioned and audited like any other data, and the auditor can ask "what
was the policy *when this tuple was shredded*?".

The **vacuum process** physically erases expired versions: it first
appends a timestamped SHREDDED record to the compliance log for every
victim ("the SHREDDED record must be sent to WORM before the tuple(s)
listed on it can be vacuumed"), then removes them from the live tree —
WAL-logged, so a crash mid-vacuum is finished by recovery ("the simplest
implementation is just to re-vacuum after recovery"; all tuples listed in
SHREDDED records must be gone before the next audit or the audit fails).

Expired tuples that migrated to WORM historical pages are *re-migrated*:
a replacement WORM page holding only the survivors is written and
documented with a MIGRATE record, the directory is repointed, and the old
WORM file lingers until its own retention lapses — "one cannot truly
delete a page on WORM until the file in which it resides has expired".

Eligibility: a version may be shredded once its commit time plus the
relation's retention has passed, **unless** it is the newest version of a
still-live tuple — active business records stay, history expires.  If the
tuple's life has ended (newest version is end-of-life), the whole expired
history including the end-of-life marker may go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..common.codec import Field, FieldType, Schema
from ..common.errors import RelationNotFoundError, ShreddingError
from ..storage.record import TupleVersion
from ..temporal.history import HistPageRef, decode_hist_page, \
    encode_hist_page
from .records import CLogType

EXPIRY_RELATION = "__expiry__"

EXPIRY_SCHEMA = Schema(EXPIRY_RELATION, [
    Field("relation", FieldType.STR),
    Field("retention", FieldType.INT),
], key_fields=["relation"])


@dataclass
class VacuumReport:
    """What one vacuum run shredded."""

    shredded_live: int = 0
    shredded_worm: int = 0
    pages_remigrated: int = 0
    relations: List[str] = field(default_factory=list)


class Shredder:
    """The vacuum/shredding process for one database."""

    def __init__(self, db):
        self._db = db
        registry = db.obs.registry
        self._c_runs = registry.counter(
            "vacuum_runs_total", help="vacuum (shredding) runs")
        self._c_live = registry.counter(
            "shredded_versions_total",
            help="tuple versions physically erased", where="live")
        self._c_worm = registry.counter(
            "shredded_versions_total",
            help="tuple versions physically erased", where="worm")
        self._c_remigrated = registry.counter(
            "worm_pages_remigrated_total",
            help="WORM historical pages rewritten minus expired tuples")

    # -- retention policy --------------------------------------------------------

    def set_retention(self, relation: str, period: int) -> None:
        """Set (or update) a relation's retention period."""
        if period <= 0:
            raise ShreddingError("retention period must be positive")
        engine = self._db.engine
        engine.relation(relation)  # must exist
        row = {"relation": relation, "retention": period}
        with engine.transaction() as txn:
            if engine.get(EXPIRY_RELATION, (relation,), txn=txn) is None:
                engine.insert(txn, EXPIRY_RELATION, row)
            else:
                engine.update(txn, EXPIRY_RELATION, row)

    def retention_of(self, relation: str,
                     at: Optional[int] = None) -> Optional[int]:
        """The retention period in force (optionally as of a past time)."""
        row = self._db.engine.get(EXPIRY_RELATION, (relation,), at=at)
        return row["retention"] if row else None

    # -- vacuuming ------------------------------------------------------------------

    def vacuum(self, now: Optional[int] = None) -> VacuumReport:
        """Shred every expired version, live and on WORM."""
        engine = self._db.engine
        now = now if now is not None else engine.clock.now()
        report = VacuumReport()
        with self._db.obs.tracer.span("vacuum") as span:
            engine.run_stamper()  # only stamped versions can be judged
            from .holds import HOLDS_RELATION
            for name in engine.relation_names():
                if name in (EXPIRY_RELATION, HOLDS_RELATION):
                    continue
                retention = self.retention_of(name)
                if retention is None:
                    continue
                live, (worm_count, pages) = self._vacuum_relation(
                    name, retention, now)
                if live or worm_count:
                    report.relations.append(name)
                report.shredded_live += live
                report.shredded_worm += worm_count
                report.pages_remigrated += pages
            span.set(live=report.shredded_live,
                     worm=report.shredded_worm)
        self._c_runs.inc()
        self._c_live.inc(report.shredded_live)
        self._c_worm.inc(report.shredded_worm)
        self._c_remigrated.inc(report.pages_remigrated)
        return report

    def _vacuum_relation(self, name: str, retention: int, now: int):
        engine = self._db.engine
        info = engine.relation(name)
        victims = self._expired_live_versions(info, retention, now)
        # Phase 1: SHREDDED records reach WORM first
        for version in victims:
            pgno = info.tree.page_of(version.key, version.start)
            self._log_shredded(version, pgno if pgno is not None else -1,
                               now)
        self._barrier()  # "sent to WORM before the tuple(s) … vacuumed"
        # Phase 2: physical erasure, WAL-logged
        for version in victims:
            engine.physically_delete(info.relation_id, version.key,
                                     version.start)
        worm_stats = self._vacuum_worm_pages(info, retention, now)
        return len(victims), worm_stats

    def _expired_live_versions(self, info, retention: int,
                               now: int) -> List[TupleVersion]:
        victims: List[TupleVersion] = []
        entries = info.tree.iter_entries()
        index = 0
        while index < len(entries):
            end = index
            while end < len(entries) and \
                    entries[end].key == entries[index].key:
                end += 1
            group = entries[index:end]
            index = end
            newest = group[-1]
            life_over = newest.eol and newest.stamped and \
                newest.start + retention <= now
            held = self._db.holds.is_held(info.name, group[0].key)
            for version in group:
                if not version.stamped:
                    continue
                if version.start + retention > now:
                    continue
                if version is newest and not life_over:
                    continue  # the active record stays
                if held:
                    continue  # litigation hold: subpoenaed evidence stays
                victims.append(version)
        return victims

    def _vacuum_worm_pages(self, info, retention: int,
                           now: int) -> Tuple[int, int]:
        engine = self._db.engine
        shredded = 0
        remigrated = 0
        for ref in engine.histdir.for_relation(info.relation_id):
            entries = decode_hist_page(engine.worm.read(ref.ref))
            holds = self._db.holds
            expired = [e for e in entries
                       if e.start + retention <= now and
                       not holds.is_held(info.name, e.key)]
            if not expired:
                continue
            survivors = [e for e in entries if e not in expired]
            for version in expired:
                self._log_shredded(version, -1, now)
            # the announcement must be durable before the directory is
            # repointed / the replacement page written
            self._barrier()
            shredded += len(expired)
            if survivors:
                # re-migration: replacement page documented like the
                # original migration
                new_ref = engine.histdir.next_ref(info.relation_id)
                engine.worm.create_file(
                    new_ref, encode_hist_page(survivors),
                    retention=engine.worm_retention)
                keys = [e.key for e in survivors]
                engine.histdir.replace(ref.ref, HistPageRef(
                    ref=new_ref, relation_id=info.relation_id,
                    leaf_pgno=ref.leaf_pgno, split_time=ref.split_time,
                    lo_key=min(keys).hex(), hi_key=max(keys).hex(),
                    count=len(survivors)))
                self._log_remigration(info.relation_id, ref, new_ref, now)
                remigrated += 1
            else:
                engine.histdir.replace(ref.ref, None)
                self._log_remigration(info.relation_id, ref, "", now)
            self._barrier()  # MIGRATE durable before the old ref can go
            # the old WORM file stays until its retention lapses; the
            # auditor follows the directory/MIGRATE chain, not the file
            if engine.worm.is_expired(ref.ref):
                engine.worm.delete(ref.ref)
        return shredded, remigrated

    def _log_shredded(self, version: TupleVersion, pgno: int,
                      now: int) -> None:
        plugin = self._db.plugin
        if plugin is not None:
            plugin.log_shredded(version, pgno, now)

    def _barrier(self) -> None:
        plugin = self._db.plugin
        if plugin is not None:
            plugin.barrier()

    def _log_remigration(self, relation_id: int, old_ref: HistPageRef,
                         new_ref: str, now: int) -> None:
        plugin = self._db.plugin
        if plugin is None:
            return
        from .records import CLogRecord
        plugin.clog.append(CLogRecord(
            CLogType.MIGRATE, relation_id=relation_id,
            pgno=old_ref.leaf_pgno, hist_ref=new_ref,
            split_time=old_ref.split_time, timestamp=now,
            # the superseded page, so the auditor can chain old -> new
            key=old_ref.ref.encode("utf-8")))
        plugin.stats.bump(CLogType.MIGRATE)

    # -- crash completion ----------------------------------------------------------------

    def finish_pending(self) -> int:
        """After recovery: erase tuples with SHREDDED records still live.

        "After a crash, the compliance routines need to finish vacuuming
        any tuples that are listed in a SHREDDED record on L, but are
        still in the DB."
        """
        plugin = self._db.plugin
        if plugin is None:
            return 0
        engine = self._db.engine
        finished = 0
        for _, record in plugin.clog.records():
            if record.rtype != CLogType.SHREDDED:
                continue
            try:
                tree = engine._tree_for_id(record.relation_id)
            except RelationNotFoundError:
                continue
            if tree.get_version(record.key, record.start) is not None:
                engine.physically_delete(record.relation_id, record.key,
                                         record.start)
                finished += 1
        return finished
