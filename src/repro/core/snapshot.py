"""Signed database snapshots on WORM (Section IV).

"The auditor places a complete snapshot of the current database state on
WORM after every audit, together with the auditor's digital signature
testifying that the snapshot is correct."  The next audit verifies the
tuple completeness condition Df = Ds ∪ L against this snapshot, and — for
hash-page-on-read — uses its per-page states as the base of the page
replay.

A snapshot records, page by page, the tuple contents of every live leaf
and the routing content of every index page, plus a header carrying the
ADD-HASH of all live tuples (the paper's optimisation of storing
``H(Df ∪ L)`` so the next audit need not rehash the snapshot; we keep the
full page states as well, since they enable the replay base and the
fine-grained forensics the paper mentions).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import PageFormatError, SnapshotError
from ..crypto import AddHash, AuditorKey, SIGNATURE_BYTES
from ..storage.page import INTERNAL, LEAF, Page
from ..storage.record import TupleVersion
from ..temporal.engine import Engine
from ..worm import WormServer
from .plugin import index_content_bytes

_MAGIC = b"RSNP"
_U32 = struct.Struct("<I")
_PAGE_HEAD = struct.Struct("<iBI")  # pgno, ptype, blob count


def snapshot_name(epoch: int) -> str:
    """WORM file name of the snapshot opening ``epoch``."""
    return f"snapshots/snap-{epoch:06d}.bin"


@dataclass
class Snapshot:
    """A parsed, signature-verified snapshot."""

    epoch: int
    created_at: int
    last_commit_time: int
    tuple_count: int
    add_hash: bytes
    leaf_pages: Dict[int, List[TupleVersion]] = field(default_factory=dict)
    index_pages: Dict[int, bytes] = field(default_factory=dict)

    def all_tuples(self):
        """Every tuple in the snapshot (page by page)."""
        for entries in self.leaf_pages.values():
            yield from entries


def write_snapshot(worm: WormServer, key: AuditorKey, engine: Engine,
                   epoch: int, retention: Optional[int] = None) -> Snapshot:
    """Scan the quiesced database's disk state and commit a signed snapshot.

    Every tuple must already be stamped (the audit drains lazy timestamping
    first); an unstamped tuple here is a protocol violation.
    """
    leaf_pages: Dict[int, List[TupleVersion]] = {}
    index_pages: Dict[int, bytes] = {}
    running = AddHash()
    tuple_count = 0
    for pgno in range(1, engine.pager.page_count):
        try:
            page = Page.from_bytes(engine.pager.read_raw(pgno))
        except PageFormatError as exc:
            raise SnapshotError(
                f"cannot snapshot corrupt page {pgno}: {exc}") from exc
        if page.ptype == LEAF and not page.historical:
            for version in page.entries:
                if not version.stamped:
                    raise SnapshotError(
                        f"page {pgno} holds an unstamped tuple; quiesce "
                        "before snapshotting")
                running.add(version.to_bytes())
                tuple_count += 1
            leaf_pages[pgno] = list(page.entries)
        elif page.ptype == INTERNAL:
            index_pages[pgno] = index_content_bytes(page.children,
                                                    page.seps)

    header = {
        "epoch": epoch,
        "created_at": engine.clock.now(),
        "last_commit_time": engine.last_commit_time,
        "tuple_count": tuple_count,
        "add_hash": running.hexdigest(),
    }
    header_raw = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [_MAGIC, _U32.pack(len(header_raw)), header_raw,
             _U32.pack(len(leaf_pages) + len(index_pages))]
    for pgno, entries in sorted(leaf_pages.items()):
        parts.append(_PAGE_HEAD.pack(pgno, LEAF, len(entries)))
        for version in entries:
            raw = version.to_bytes()
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
    for pgno, content in sorted(index_pages.items()):
        parts.append(_PAGE_HEAD.pack(pgno, INTERNAL, 1))
        parts.append(_U32.pack(len(content)))
        parts.append(content)
    body = b"".join(parts)
    worm.create_file(snapshot_name(epoch), key.sign(body) + body,
                     retention=retention)
    return Snapshot(epoch=epoch, created_at=header["created_at"],
                    last_commit_time=header["last_commit_time"],
                    tuple_count=tuple_count, add_hash=running.digest(),
                    leaf_pages=leaf_pages, index_pages=index_pages)


def load_snapshot(worm: WormServer, key: AuditorKey,
                  epoch: int) -> Snapshot:
    """Read and signature-verify the snapshot that opened ``epoch``."""
    raw = worm.read(snapshot_name(epoch))
    if len(raw) < SIGNATURE_BYTES + 4:
        raise SnapshotError("snapshot file too short")
    signature, body = raw[:SIGNATURE_BYTES], raw[SIGNATURE_BYTES:]
    key.require_valid(body, signature, what=snapshot_name(epoch))
    if body[:4] != _MAGIC:
        raise SnapshotError("bad snapshot magic")
    (header_len,) = _U32.unpack_from(body, 4)
    cursor = 8
    header = json.loads(body[cursor:cursor + header_len].decode("utf-8"))
    cursor += header_len
    (page_count,) = _U32.unpack_from(body, cursor)
    cursor += _U32.size
    snapshot = Snapshot(epoch=header["epoch"],
                        created_at=header["created_at"],
                        last_commit_time=header["last_commit_time"],
                        tuple_count=header["tuple_count"],
                        add_hash=bytes.fromhex(header["add_hash"]))
    for _ in range(page_count):
        pgno, ptype, count = _PAGE_HEAD.unpack_from(body, cursor)
        cursor += _PAGE_HEAD.size
        blobs: List[bytes] = []
        for _ in range(count):
            (n,) = _U32.unpack_from(body, cursor)
            cursor += _U32.size
            blobs.append(bytes(body[cursor:cursor + n]))
            cursor += n
        if ptype == LEAF:
            snapshot.leaf_pages[pgno] = [
                TupleVersion.from_bytes(blob)[0] for blob in blobs]
        else:
            snapshot.index_pages[pgno] = blobs[0] if blobs else b""
    if cursor != len(body):
        raise SnapshotError("trailing bytes in snapshot")
    return snapshot
