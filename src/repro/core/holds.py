"""Litigation holds — the paper's stated future work, implemented.

Section IX: "Currently, we are working on support for 'litigation holds',
which ensure that subpoenaed but expired tuples are not shredded."

A hold is a row in the ``__holds__`` relation — itself an ordinary
transaction-time relation, so placing and releasing holds is versioned,
term-immutable, and audited like any business data.  A hold covers either
one tuple (by primary key) or a whole relation, from the moment it is
placed until it is released.

Enforcement is two-layered, matching the architecture's trust story:

* the **vacuum process** skips expired versions under an active hold
  (honest-system behaviour);
* the **auditor** independently verifies that no SHREDDED record destroyed
  a tuple that a hold covered at shred time — so a dishonest operator who
  bypasses the vacuum and shreds subpoenaed evidence is caught at the next
  audit ("the evidence cannot be destroyed once it has been subpoenaed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.codec import Field, FieldType, Schema, encode_key
from ..common.errors import KeyNotFoundError, ShreddingError

HOLDS_RELATION = "__holds__"

HOLDS_SCHEMA = Schema(HOLDS_RELATION, [
    Field("hold_id", FieldType.INT),
    Field("relation", FieldType.STR),
    #: hex-encoded primary key the hold covers; "" holds the whole relation
    Field("key_hex", FieldType.STR),
    Field("placed_at", FieldType.INT),
    #: 0 while active; the release time once lifted
    Field("released_at", FieldType.INT),
    Field("case_ref", FieldType.STR),
], key_fields=["hold_id"])


@dataclass
class Hold:
    """One litigation hold, as read back from the holds relation."""

    hold_id: int
    relation: str
    key_hex: str
    placed_at: int
    released_at: int
    case_ref: str

    @property
    def active(self) -> bool:
        return self.released_at == 0

    def covers(self, relation: str, key: bytes, at: int) -> bool:
        """Whether this hold protected (relation, key) at time ``at``."""
        if self.relation != relation:
            return False
        if self.key_hex and self.key_hex != key.hex():
            return False
        if at < self.placed_at:
            return False
        return self.released_at == 0 or at < self.released_at


class HoldManager:
    """Places, releases, and queries litigation holds."""

    def __init__(self, db):
        self._db = db
        self._next_id = 1

    def place(self, relation: str, key: Optional[Tuple] = None,
              case_ref: str = "") -> int:
        """Place a hold on one tuple (or a whole relation if key is None).

        Returns the hold id.
        """
        engine = self._db.engine
        engine.relation(relation)  # must exist
        hold_id = self._reserve_id()
        row = {
            "hold_id": hold_id,
            "relation": relation,
            "key_hex": encode_key(key).hex() if key is not None else "",
            "placed_at": engine.clock.now(),
            "released_at": 0,
            "case_ref": case_ref,
        }
        with engine.transaction() as txn:
            engine.insert(txn, HOLDS_RELATION, row)
        return hold_id

    def release(self, hold_id: int) -> None:
        """Lift a hold (a new version; the hold's history is preserved)."""
        engine = self._db.engine
        row = engine.get(HOLDS_RELATION, (hold_id,))
        if row is None:
            raise KeyNotFoundError(f"no hold {hold_id}")
        if row["released_at"]:
            raise ShreddingError(f"hold {hold_id} is already released")
        row["released_at"] = engine.clock.now()
        with engine.transaction() as txn:
            engine.update(txn, HOLDS_RELATION, row)

    def active_holds(self) -> List[Hold]:
        """All currently active holds."""
        return [hold for hold in self.all_holds() if hold.active]

    def all_holds(self) -> List[Hold]:
        """Every hold, active or released."""
        return [Hold(**row) for _, row in
                self._db.engine.scan(HOLDS_RELATION)]

    def is_held(self, relation: str, key: bytes,
                at: Optional[int] = None) -> bool:
        """Whether (relation, key) is protected by any hold at ``at``."""
        when = at if at is not None else self._db.engine.clock.now()
        return any(hold.covers(relation, key, when)
                   for hold in self.all_holds())

    def _reserve_id(self) -> int:
        # ids are dense but resumable after restart: probe past the max
        engine = self._db.engine
        while engine.get(HOLDS_RELATION, (self._next_id,)) is not None:
            self._next_id += 1
        reserved = self._next_id
        self._next_id += 1
        return reserved


def holds_history_from_final_state(final_tuples: Dict, holds_relation_id:
                                   int) -> List[Tuple[int, Hold]]:
    """Reconstruct every hold *version* from the audited final state.

    The auditor uses this (not the live API) so that its view of which
    holds existed at a given time comes from the same tuples whose
    completeness it just verified.  Returns (version start, hold) pairs.
    """
    from ..storage.record import TupleVersion
    out: List[Tuple[int, Hold]] = []
    for nid, raw in final_tuples.items():
        if nid[0] != holds_relation_id:
            continue
        version = TupleVersion.from_bytes(raw)[0]
        if version.eol:
            continue
        row = HOLDS_SCHEMA.decode_payload(version.payload)
        out.append((version.start, Hold(**row)))
    return out
