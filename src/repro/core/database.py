"""The compliant database facade — the paper's architecture, assembled.

:class:`CompliantDB` wires together the storage engine, the WORM server,
the compliance plugin, and the epoch bookkeeping:

* ``REGULAR`` mode is the paper's baseline ("native Berkeley DB"): just the
  transaction-time engine, no compliance logging.
* ``LOG_CONSISTENT`` adds the Section IV architecture: compliance log on
  WORM, signed snapshots, WAL tail mirrored to WORM, witness files,
  auditable crash recovery.
* ``HASH_ON_READ`` further enables the Section V refinement: tuple order
  numbers, READ_HASH records for every page read from disk, PAGE_SPLIT
  content logging — giving a finite query verification interval.

WORM migration (Section VI) is orthogonal: enable it via
``ComplianceConfig.worm_migration`` and relations are stored in time-split
B+-trees whose history migrates to WORM pages.

Layout on disk::

    <path>/db/    the engine (data.db, wal.log, histdir.json)
    <path>/worm/  the simulated WORM volume (compliance log epochs,
                  snapshots, witness files, WAL mirror, historical pages)
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..common.clock import SimulatedClock
from ..common.codec import Schema
from ..common.config import (ComplianceMode, DBConfig, EngineConfig,
                             ObsConfig)
from ..common.errors import ConfigError
from ..crypto import AuditorKey
from ..obs import Observability, metrics_report, publish_hash_stats
from ..temporal.engine import Engine, RecoveryReport
from ..worm import WormServer
from .compliance_log import ComplianceLog, aux_name
from .holds import HOLDS_SCHEMA, HoldManager
from .plugin import CompliancePlugin
from .shredding import EXPIRY_SCHEMA, Shredder
from .snapshot import write_snapshot


def wal_mirror_name(epoch: int) -> str:
    """WORM file name of an epoch's transaction-log mirror."""
    return f"txnlog/epoch-{epoch:06d}.log"


class CompliantDB:
    """A term-immutable database instance."""

    def __init__(self, path: os.PathLike, clock: SimulatedClock,
                 config: DBConfig, auditor_key: AuditorKey,
                 _create: bool, obs: Optional[Observability] = None):
        self.path = Path(path)
        self.clock = clock
        self.config = config
        self.auditor_key = auditor_key
        config.validate()
        mode = config.compliance.mode
        self.mode = mode
        if config.obs.sanitize or os.environ.get("REPRO_SANITIZE"):
            # lazy: the engine must not pay the lint-framework import
            # unless the concurrency sanitizer was actually requested
            from ..analysis import sanitizer
            if config.obs.sanitize or sanitizer.env_enabled():
                sanitizer.install()
        #: one bundle threads through every layer; span timestamps come
        #: from the simulated clock, so traces are replay-deterministic
        self.obs = obs if obs is not None else \
            Observability.from_config(config.obs, now=clock.now)
        registry = self.obs.registry
        self._c_crashes = registry.counter(
            "db_crashes_total", help="simulated process crashes")
        self._c_recoveries = registry.counter(
            "db_recoveries_total", help="crash recoveries performed")
        self._c_rotations = registry.counter(
            "epoch_rotations_total", help="audit-epoch rotations")
        self._g_epoch = registry.gauge(
            "db_epoch", help="current audit epoch")

        self.worm = WormServer(self.path / "worm", clock,
                               default_retention=config.compliance
                               .worm_retention, obs=self.obs)
        engine_cls = Engine.create if _create else Engine.open
        self.engine = engine_cls(
            self.path / "db", clock, config=config.engine, worm=self.worm,
            assign_seq=(mode is ComplianceMode.HASH_ON_READ),
            worm_migration=config.compliance.worm_migration,
            split_threshold=config.compliance.split_threshold,
            worm_retention=config.compliance.worm_retention,
            obs=self.obs)

        self.plugin: Optional[CompliancePlugin] = None
        self.clog: Optional[ComplianceLog] = None
        self._was_clean = self.engine.was_clean_shutdown() or _create

        if _create:
            self._write_mode_marker()
            meta = self.engine.buffer.get(0)
            meta.meta["audit_epoch"] = 1
            self.engine.buffer.mark_dirty(meta)
        else:
            self._check_mode_marker()
            # a reopened database may be handed a *fresh* SimulatedClock
            # (repro-admin, repro.server): fast-forward past every
            # persisted timestamp, or new commits would stamp earlier
            # than records already in L and fail the auditor's
            # stamp-order check
            clock.advance_to(self._persisted_high_time())

        if mode is not ComplianceMode.REGULAR:
            self.clog = ComplianceLog(self.worm, self.epoch,
                                      retention=config.compliance
                                      .worm_retention)
            self.plugin = CompliancePlugin(
                self.engine, self.clog, mode,
                config.compliance.regret_interval,
                witness_retention=config.compliance.worm_retention,
                obs=self.obs)
            self.plugin.attach()
            if not _create:
                self.plugin.load_epoch_state()
            self.engine.wal.set_worm_mirror(
                self.worm, wal_mirror_name(self.epoch),
                retention=config.compliance.worm_retention)

        self.shredder = Shredder(self)
        self.holds = HoldManager(self)
        self._g_epoch.set(self.epoch)

        if _create:
            if mode is not ComplianceMode.REGULAR:
                # genesis snapshot: the signed, empty state opening epoch 1
                self.engine.checkpoint()
                write_snapshot(self.worm, auditor_key, self.engine,
                               epoch=1,
                               retention=config.compliance.worm_retention)
            self.engine.create_relation(EXPIRY_SCHEMA, use_tsb=False)
            self.engine.create_relation(HOLDS_SCHEMA, use_tsb=False)
            self.engine.run_stamper()
            self.engine.checkpoint()

    # -- construction ---------------------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike,
               config: Optional[DBConfig] = None, *,
               clock: Optional[SimulatedClock] = None,
               auditor_key: Optional[AuditorKey] = None,
               obs: Optional[Observability] = None,
               mode: Optional[ComplianceMode] = None) -> "CompliantDB":
        """Create a fresh compliant database at ``path``.

        ``config`` is the single construction surface: the architecture
        variant is ``config.compliance.mode`` (see
        :meth:`DBConfig.for_mode`), engine knobs live in
        ``config.engine``, and metrics/tracing in ``config.obs``.  The
        ``mode=`` keyword is a deprecated alias that overrides
        ``config.compliance.mode``.
        """
        if mode is not None:
            warnings.warn(
                "CompliantDB.create(mode=...) is deprecated; pass "
                "config=DBConfig.for_mode(mode) instead",
                DeprecationWarning, stacklevel=2)
            base = config or DBConfig()
            config = replace(
                base, compliance=replace(base.compliance, mode=mode))
        return cls(path, clock or SimulatedClock(),
                   config or DBConfig(),
                   auditor_key or AuditorKey.generate(), _create=True,
                   obs=obs)

    @classmethod
    def open(cls, path: os.PathLike, clock: SimulatedClock,
             auditor_key: Optional[AuditorKey] = None,
             obs: Optional[Observability] = None) -> "CompliantDB":
        """Re-open an existing database (mode and config come from its
        marker file, so the page size and compliance parameters always
        match what the database was created with).

        Call :meth:`recover` afterwards; it is a no-op after a clean
        shutdown and performs auditable crash recovery otherwise.
        """
        marker = json.loads((Path(path) / "mode.json").read_text())
        from dataclasses import fields as dc_fields
        # forward compatibility: a marker written before a knob existed
        # simply lacks the key — the dataclass default applies
        engine_cfg = {f.name: marker["engine"][f.name]
                      for f in dc_fields(EngineConfig)
                      if f.name in marker["engine"]}
        compliance_cfg = dict(marker["compliance"])
        # the top-level marker field is authoritative: markers written
        # before the config-first API may carry a stale default mode in
        # their compliance section
        compliance_cfg["mode"] = ComplianceMode(marker["mode"])
        config = DBConfig(
            engine=EngineConfig(**engine_cfg),
            compliance=type(DBConfig().compliance)(**compliance_cfg),
            obs=ObsConfig(**marker.get("obs", {})))
        return cls(path, clock, config,
                   auditor_key or AuditorKey.generate(), _create=False,
                   obs=obs)

    def _write_mode_marker(self) -> None:
        from dataclasses import asdict
        engine = asdict(self.config.engine)
        compliance = asdict(self.config.compliance)
        compliance["mode"] = self.config.compliance.mode.value
        (self.path / "mode.json").write_text(json.dumps(
            {"mode": self.mode.value, "engine": engine,
             "compliance": compliance,
             "obs": asdict(self.config.obs)}))

    def _check_mode_marker(self) -> None:
        marker = json.loads((self.path / "mode.json").read_text())
        if ComplianceMode(marker["mode"]) is not self.mode:
            raise ConfigError(
                f"database was created in mode {marker['mode']!r}")

    def _persisted_high_time(self) -> int:
        """Highest timestamp recoverable from durable state.

        Sources: WORM file creation times (the trusted box's clock
        survives restarts) and the current epoch's auxiliary stamp
        index (exact commit times).  REGULAR mode has neither and
        returns 0 — a no-op fast-forward.
        """
        from .records import iter_aux
        high = 0
        for name in self.worm.list_files():
            high = max(high, self.worm.meta(name).create_time)
        aux = aux_name(self.epoch)
        if self.worm.exists(aux):
            for entry in iter_aux(self.worm.read(aux)):
                high = max(high, entry.commit_time)
        return high

    # -- epoch bookkeeping -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current audit epoch (starts at 1)."""
        return self.engine.buffer.get(0).meta["audit_epoch"]

    def rotate_epoch(self) -> int:
        """Advance to the next epoch (called by the auditor after success).
        """
        with self.obs.tracer.span("epoch.rotate", epoch=self.epoch):
            meta = self.engine.buffer.get(0)
            new_epoch = meta.meta["audit_epoch"] + 1
            meta.meta["audit_epoch"] = new_epoch
            self.engine.buffer.mark_dirty(meta)
            if self.mode is not ComplianceMode.REGULAR:
                with self.obs.tracer.span("clog.seal",
                                          epoch=new_epoch - 1):
                    self.clog.seal(close_time=self.clock.now())
                self.clog = ComplianceLog(self.worm, new_epoch,
                                          retention=self.config.compliance
                                          .worm_retention)
                self.plugin.rotate_epoch(self.clog)
                self.worm.seal(wal_mirror_name(new_epoch - 1))
                self.engine.wal.truncate()
                self.engine.wal.set_worm_mirror(
                    self.worm, wal_mirror_name(new_epoch),
                    retention=self.config.compliance.worm_retention)
            self.engine.checkpoint()
        self._c_rotations.inc()
        self._g_epoch.set(new_epoch)
        return new_epoch

    # -- data API (delegation) -----------------------------------------------------------

    def begin(self):
        """Start a transaction."""
        return self.engine.begin()

    def commit(self, txn) -> int:
        """Commit a transaction; returns the commit time."""
        return self.engine.commit(txn)

    def abort(self, txn) -> None:
        """Roll back a transaction."""
        self.engine.abort(txn)

    def prepare(self, txn, gid: str) -> None:
        """2PC phase one: durably prepare under the coordinator's gid.

        The transaction keeps its locks and admits no further writes;
        commit or abort it once the coordinator decides (see
        :mod:`repro.shard`)."""
        self.engine.prepare(txn, gid)

    def transaction(self):
        """Context manager: commit on success, abort on exception."""
        return self.engine.transaction()

    @property
    def halted(self) -> bool:
        """Whether transaction processing is halted (a commit/abort
        listener failed after the durable outcome; see
        :mod:`repro.txn.manager`).  Repair with :meth:`crash` +
        :meth:`recover`."""
        return self.engine.txns.halted

    def create_relation(self, schema: Schema, *args,
                        use_tsb: Optional[bool] = None,
                        fields=None, key=None):
        """Create a relation (transaction-time, audited).

        Canonically takes a :class:`Schema`; the deprecated
        ``(name, fields, key)`` spelling is coerced with a warning
        (see :func:`repro.api.coerce_relation_args`)."""
        from ..api import coerce_relation_args
        schema, use_tsb = coerce_relation_args(schema, args, fields, key,
                                               use_tsb)
        return self.engine.create_relation(schema, use_tsb=use_tsb)

    def insert(self, txn, relation: str, row: Dict[str, Any]) -> None:
        """Insert a tuple."""
        self.engine.insert(txn, relation, row)

    def insert_many(self, txn, relation: str,
                    rows: List[Dict[str, Any]]) -> None:
        """Insert a batch of tuples into one relation (batched codec)."""
        self.engine.insert_many(txn, relation, rows)

    def update(self, txn, relation: str, row: Dict[str, Any]) -> None:
        """Write a new version of an existing tuple."""
        self.engine.update(txn, relation, row)

    def delete(self, txn, relation: str, key: Tuple[Any, ...]) -> None:
        """Logically delete a tuple (end-of-life version)."""
        self.engine.delete(txn, relation, key)

    def get(self, relation: str, key: Tuple[Any, ...], txn=None,
            at: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Read a row, current or as of a past time."""
        return self.engine.get(relation, key, txn=txn, at=at)

    def scan(self, relation: str, lo=None, hi=None, txn=None,
             at: Optional[int] = None):
        """Range scan of visible rows."""
        return self.engine.scan(relation, lo=lo, hi=hi, txn=txn, at=at)

    def versions(self, relation: str, key: Tuple[Any, ...]):
        """Full version history of a key (live tree + WORM pages)."""
        return self.engine.versions(relation, key)

    def set_retention(self, relation: str, period: int) -> None:
        """Record a relation's retention period in the Expiry relation."""
        self.shredder.set_retention(relation, period)

    def vacuum(self):
        """Shred expired tuples (Section VIII); returns a VacuumReport."""
        return self.shredder.vacuum()

    def place_hold(self, relation: str, key: Optional[Tuple] = None,
                   case_ref: str = "") -> int:
        """Place a litigation hold: the tuple (or whole relation) becomes
        unshreddable until the hold is released, even after expiry."""
        return self.holds.place(relation, key=key, case_ref=case_ref)

    def release_hold(self, hold_id: int) -> None:
        """Release a litigation hold (the hold's history is preserved)."""
        self.holds.release(hold_id)

    # -- maintenance / lifecycle ----------------------------------------------------------

    def maintenance(self, force: bool = False) -> bool:
        """Regret-interval duties: checkpoint, witness file, heartbeat.

        Call this from the driver loop; it is a no-op until a regret
        interval has elapsed since the last one (unless forced).
        """
        if self.plugin is None:
            return False
        return self.plugin.maintenance(force=force)

    def pass_time(self, duration: int) -> None:
        """Advance the simulated clock through ``duration``, running
        maintenance each regret interval so liveness witnesses exist."""
        interval = self.config.compliance.regret_interval
        remaining = duration
        while remaining > 0:
            step = min(interval, remaining)
            self.clock.advance(step)
            remaining -= step
            self.maintenance()

    def now(self) -> int:
        """The database's current simulated time."""
        return self.clock.now()

    def checkpoint(self) -> None:
        """Apply pending lazy stamps, then flush WAL and dirty pages.

        The backend-protocol spelling of ``engine.run_stamper()`` +
        ``engine.checkpoint()`` — remote and sharded backends expose the
        same method, so loaders need no engine access."""
        self.engine.run_stamper()
        self.engine.checkpoint()

    def prepare_for_audit(self) -> None:
        """Quiesce for audit: drain transactions, stamps, dirty pages."""
        self.engine.quiesce()

    def crash(self) -> None:
        """Simulate a process crash (volatile state vanishes).

        This includes the WORM group-commit buffer: compliance records
        appended since the last durability barrier never reached the
        WORM box, exactly like unsent network writes.  Call
        :meth:`recover` before using the database again.
        """
        self.engine.crash()
        self.worm.drop_buffers()
        if self.plugin is not None:
            self.plugin.on_crash()
        self._was_clean = False
        self._c_crashes.inc()

    def recover(self, in_doubt_commits: Optional[Any] = None
                ) -> RecoveryReport:
        """Auditable crash recovery (a true no-op after a clean shutdown).

        After a clean shutdown nothing is replayed at all: replaying the
        WAL against a quiesced database would silently *repair* any
        tampering an adversary performed while the DBMS was down, masking
        it from the audit.  Only an actual crash warrants recovery.

        ``in_doubt_commits`` is the 2PC coordinator's set of committed
        gids (from its decision journal): a prepared-but-undecided
        transaction found in the WAL commits iff its gid is in the set
        (presumed abort otherwise).  When the WAL holds in-doubt
        transactions and no set is given, recovery raises
        :class:`~repro.common.errors.RecoveryError` rather than guess.
        """
        if self._was_clean:
            return RecoveryReport()
        resolver = None
        if in_doubt_commits is not None:
            decided = frozenset(in_doubt_commits)
            resolver = decided.__contains__
        with self.obs.tracer.span("db.recover"):
            if self.plugin is not None:
                self.plugin.begin_recovery()
                report = self.engine.recover(
                    on_outcomes=self.plugin.recovery_outcomes,
                    resolve_in_doubt=resolver)
                self.shredder.finish_pending()
            else:
                report = self.engine.recover(resolve_in_doubt=resolver)
        self._was_clean = True
        self._c_recoveries.inc()
        return report

    def metrics(self) -> Dict[str, Any]:
        """Snapshot of every metric and span count across all layers.

        The counters are process-lifetime: a simulated :meth:`crash`
        does not reset them (the *process* survived), so the report also
        covers recovery work.  The shape is the JSON exporter's —
        ``{"counters", "gauges", "histograms", "spans",
        "spans_dropped"}``.  The process-wide SHA-512 work counters are
        mirrored into ``hash_sha512_calls`` / ``hash_memo_hits`` gauges
        on every call, so digest work per mode shows up next to the
        digest-pool counters.
        """
        publish_hash_stats(self.obs.registry)
        return metrics_report(self.obs.registry, self.obs.tracer)

    def close(self) -> None:
        """Clean shutdown: final checkpoint, then drain the compliance
        log's group-commit buffer so nothing rides only in memory."""
        self.engine.close()
        if self.plugin is not None:
            self.plugin.barrier()
