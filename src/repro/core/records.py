"""Compliance-log record types (the contents of ``L`` on WORM).

Record inventory, mapped to the paper:

* ``NEW_TUPLE`` — a tuple version reached a disk page (Section IV).  Carries
  the tuple bytes exactly as written (possibly still holding a transaction
  ID under lazy timestamping) plus the page number (PGNO, added by the
  hash-page-on-read refinement of Section V).
* ``STAMP_TRANS`` — a transaction committed: (txn id, commit time).  Written
  only *after* the commit.  ``heartbeat=True`` marks the dummy records that
  prove liveness through idle regret intervals.
* ``ABORT`` — a transaction rolled back (Section IV-B).
* ``UNDO`` — a tuple version was physically removed from a page (abort
  write-back or vacuum); hash-page-on-read mode only (Section V/VIII).
* ``PAGE_SPLIT`` — a page split, with the contents of both result pages
  "immediately after the split" and the separator routed to the parent
  (Section V; covers data and index splits).
* ``READ_HASH`` — the sequential hash ``Hs`` of a page read from disk
  (Section V).
* ``SHREDDED`` — the vacuum process intends to erase an expired tuple:
  tuple id, PGNO, content, timestamp (Section VIII).
* ``START_RECOVERY`` — crash recovery began (Section IV-B).
* ``PAGE_RESET`` — emitted during recovery with a page's on-disk contents,
  re-basing the auditor's page replay at the crash boundary (this repo's
  concretisation of the crash-window details the paper omits; the
  WAL-mirror cross-check bounds what an adversary could launder here).
* ``MIGRATE`` — a time split moved historical versions to a WORM page
  (Section VI); the page contents live in the referenced WORM file.
* ``CLOSE_EPOCH`` — terminates an epoch's log at audit time.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from ..common.errors import ComplianceLogError


class CLogType(enum.IntEnum):
    """Kinds of compliance-log records."""

    NEW_TUPLE = 1
    STAMP_TRANS = 2
    ABORT = 3
    UNDO = 4
    PAGE_SPLIT = 5
    READ_HASH = 6
    SHREDDED = 7
    START_RECOVERY = 8
    MIGRATE = 9
    PAGE_RESET = 10
    CLOSE_EPOCH = 11


_FIXED = struct.Struct("<BBqqHiqqiiiqq")
# rtype, flags, txn_id, commit_time, relation_id, pgno, timestamp,
# sep_start, left_pgno, right_pgno, parent_pgno, start, split_time
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_FLAG_HEARTBEAT = 0x01
_FLAG_IS_INDEX = 0x02

#: cheap partial decodes used by the partitioned audit's peek-skip path
_PEEK_PGNO = struct.Struct("<i")
_PEEK_SPLIT = struct.Struct("<iii")
#: fixed-header offsets of the peeked fields (see ``_FIXED`` layout)
_PGNO_OFFSET = 20
_SPLIT_OFFSET = 40


def peek_frame(data: bytes, body_offset: int
               ) -> Tuple[int, int, int, int, int]:
    """Cheaply read the routing fields of an already-framed record body.

    Returns ``(rtype, pgno, left_pgno, right_pgno, parent_pgno)`` without
    materialising a :class:`CLogRecord`.  The caller must have validated
    the frame (length prefix and body extent) — this reads straight from
    the fixed header, which every record type serialises in full.
    """
    rtype = data[body_offset]
    (pgno,) = _PEEK_PGNO.unpack_from(data, body_offset + _PGNO_OFFSET)
    left, right, parent = _PEEK_SPLIT.unpack_from(
        data, body_offset + _SPLIT_OFFSET)
    return rtype, pgno, left, right, parent


@dataclass
class CLogRecord:
    """One record of the compliance log; field use depends on ``rtype``."""

    rtype: CLogType
    txn_id: int = 0
    commit_time: int = 0
    relation_id: int = 0
    pgno: int = -1
    timestamp: int = 0
    heartbeat: bool = False
    is_index: bool = False
    #: PAGE_SPLIT: separator routed to the parent
    sep_key: bytes = b""
    sep_start: int = 0
    left_pgno: int = -1
    right_pgno: int = -1
    parent_pgno: int = -1
    #: NEW_TUPLE / UNDO / SHREDDED: the tuple's canonical bytes
    tuple_bytes: bytes = b""
    #: SHREDDED: the erased version's (key, start) identity
    key: bytes = b""
    start: int = 0
    #: READ_HASH: the Hs value
    page_hash: bytes = b""
    #: MIGRATE: WORM file holding the historical page
    hist_ref: str = ""
    split_time: int = 0
    #: PAGE_SPLIT / PAGE_RESET: serialised page contents
    left_content: List[bytes] = field(default_factory=list)
    right_content: List[bytes] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Length-framed serialisation."""
        flags = (_FLAG_HEARTBEAT if self.heartbeat else 0) | \
                (_FLAG_IS_INDEX if self.is_index else 0)
        parts = [_FIXED.pack(int(self.rtype), flags, self.txn_id,
                             self.commit_time, self.relation_id, self.pgno,
                             self.timestamp, self.sep_start, self.left_pgno,
                             self.right_pgno, self.parent_pgno, self.start,
                             self.split_time)]
        for blob in (self.sep_key, self.key):
            parts.append(_U16.pack(len(blob)))
            parts.append(blob)
        parts.append(_U32.pack(len(self.tuple_bytes)))
        parts.append(self.tuple_bytes)
        parts.append(_U16.pack(len(self.page_hash)))
        parts.append(self.page_hash)
        ref = self.hist_ref.encode("utf-8")
        parts.append(_U16.pack(len(ref)))
        parts.append(ref)
        for content in (self.left_content, self.right_content):
            parts.append(_U32.pack(len(content)))
            for blob in content:
                parts.append(_U32.pack(len(blob)))
                parts.append(blob)
        body = b"".join(parts)
        return _U32.pack(len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes, offset: int
                   ) -> Tuple["CLogRecord", int]:
        """Parse one framed record; returns (record, next offset)."""
        try:
            (length,) = _U32.unpack_from(data, offset)
        except struct.error as exc:
            raise ComplianceLogError("truncated record frame") from exc
        offset += _U32.size
        end = offset + length
        if end > len(data):
            raise ComplianceLogError("truncated record body")
        (rtype, flags, txn_id, commit_time, relation_id, pgno, timestamp,
         sep_start, left_pgno, right_pgno, parent_pgno, start,
         split_time) = _FIXED.unpack_from(data, offset)
        cursor = offset + _FIXED.size

        def take16() -> bytes:
            nonlocal cursor
            (n,) = _U16.unpack_from(data, cursor)
            cursor += _U16.size
            blob = bytes(data[cursor:cursor + n])
            cursor += n
            return blob

        def take32() -> bytes:
            nonlocal cursor
            (n,) = _U32.unpack_from(data, cursor)
            cursor += _U32.size
            blob = bytes(data[cursor:cursor + n])
            cursor += n
            return blob

        sep_key = take16()
        key = take16()
        tuple_bytes = take32()
        page_hash = take16()
        hist_ref = take16().decode("utf-8")
        contents: List[List[bytes]] = []
        for _ in range(2):
            (count,) = _U32.unpack_from(data, cursor)
            cursor += _U32.size
            contents.append([take32() for _ in range(count)])
        if cursor != end:
            raise ComplianceLogError("record length mismatch")
        record = cls(rtype=CLogType(rtype), txn_id=txn_id,
                     commit_time=commit_time, relation_id=relation_id,
                     pgno=pgno, timestamp=timestamp,
                     heartbeat=bool(flags & _FLAG_HEARTBEAT),
                     is_index=bool(flags & _FLAG_IS_INDEX),
                     sep_key=sep_key, sep_start=sep_start,
                     left_pgno=left_pgno, right_pgno=right_pgno,
                     parent_pgno=parent_pgno, tuple_bytes=tuple_bytes,
                     key=key, start=start, page_hash=page_hash,
                     hist_ref=hist_ref, split_time=split_time,
                     left_content=contents[0], right_content=contents[1])
        return record, end


def iter_records(data: bytes) -> Iterator[Tuple[int, CLogRecord]]:
    """Yield (offset, record) for each record in a log blob."""
    offset = 0
    while offset < len(data):
        record, next_offset = CLogRecord.from_bytes(data, offset)
        yield offset, record
        offset = next_offset


# -- auxiliary STAMP_TRANS index (Section IV-A) ------------------------------

_AUX = struct.Struct("<qQqB")  # txn_id, L offset, commit_time, heartbeat


@dataclass
class AuxStampEntry:
    """One entry of the auxiliary WORM log that indexes STAMP_TRANS records.
    """

    txn_id: int
    offset: int
    commit_time: int
    heartbeat: bool

    def to_bytes(self) -> bytes:
        return _AUX.pack(self.txn_id, self.offset, self.commit_time,
                         1 if self.heartbeat else 0)


def iter_aux(data: bytes) -> Iterator[AuxStampEntry]:
    """Parse the auxiliary stamp-index log."""
    if len(data) % _AUX.size:
        raise ComplianceLogError("aux log length not a record multiple")
    for offset in range(0, len(data), _AUX.size):
        txn_id, l_offset, commit_time, heartbeat = _AUX.unpack_from(
            data, offset)
        yield AuxStampEntry(txn_id, l_offset, commit_time, bool(heartbeat))
