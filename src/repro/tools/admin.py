"""Command-line administration for compliant databases.

Usage::

    python -m repro.tools.admin info      <db-path>
    python -m repro.tools.admin audit     <db-path> [--no-rotate]
                                          [--workers N] [--resume]
                                          [--chunk-pages N]
                                          [--log-slices N]
                                          [--checkpoint-every N]
    python -m repro.tools.admin forensics <db-path>
    python -m repro.tools.admin vacuum    <db-path>
    python -m repro.tools.admin history   <db-path> <relation> <key…>
    python -m repro.tools.admin holds     <db-path>
    python -m repro.tools.admin metrics   <db-path> [--json]
    python -m repro.tools.admin serve     <db-path> [--host H] [--port P]
                                          [--max-queue-depth N]
                                          [--allow-crash-ops]
                                          [--shard N]
    python -m repro.tools.admin shard-audit <base-path> [--no-rotate]
                                          [--workers N]

The tool opens the database read-mostly (audit/vacuum mutate WORM/epoch
state exactly as their API counterparts do), runs recovery if the previous
incarnation crashed, and prints human-readable results.  Keys given on the
command line are parsed as integers where possible, otherwise strings.

Note: the tool signs/verifies with the default deterministic auditor key;
pass ``--auditor NAME`` when the database was created with a named key.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, List, Tuple

from ..common.clock import SimulatedClock
from ..core import Auditor, CompliantDB, ParallelAuditor
from ..core.forensics import ForensicAnalyzer
from ..crypto import AuditorKey
from ..obs import prometheus_text


def _parse_key(raw: List[str]) -> Tuple[Any, ...]:
    out: List[Any] = []
    for part in raw:
        try:
            out.append(int(part))
        except ValueError:
            out.append(part)
    return tuple(out)


def _open(path: str, auditor: str) -> CompliantDB:
    db = CompliantDB.open(path, SimulatedClock(),
                          auditor_key=AuditorKey.generate(auditor))
    db.recover()
    return db


def cmd_info(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    print(f"mode:          {db.mode.value}")
    print(f"audit epoch:   {db.epoch}")
    print(f"page size:     {db.config.engine.page_size}")
    print(f"data pages:    {db.engine.pager.page_count}")
    if db.clog is not None:
        print(f"compliance log: {db.clog.name} "
              f"({db.clog.size() / 1024:.1f} KiB)")
    print(f"WORM files:    {len(db.worm.list_files())}")
    print("relations:")
    for name in db.engine.relation_names():
        info = db.engine.relation(name)
        rows = db.engine.count_rows(name)
        hist = db.engine.histdir.page_count(info.relation_id)
        extra = f", {hist} WORM page(s)" if hist else ""
        print(f"  {name}: {rows} live row(s){extra}")
    db.close()
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    workers = args.workers
    if workers is None and db.config.compliance.audit_workers > 0:
        workers = db.config.compliance.audit_workers
    partitioned = workers is not None or args.resume or \
        args.chunk_pages is not None or args.log_slices is not None or \
        args.checkpoint_every is not None
    if partitioned:
        auditor: Auditor = ParallelAuditor(
            db, workers=workers, chunk_pages=args.chunk_pages,
            log_slices=args.log_slices,
            checkpoint_every=args.checkpoint_every, resume=args.resume)
    else:
        auditor = Auditor(db)
    report = auditor.audit(rotate=not args.no_rotate)
    print(report.summary())
    if report.workers:
        resumed = f", {report.tasks_resumed} resumed" \
            if report.tasks_resumed else ""
        print(f"  partitioned: {report.workers} worker(s), "
              f"{report.tasks_total} task(s){resumed}")
    db.close()
    return 0 if report.ok else 1


def cmd_forensics(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    report = ForensicAnalyzer(db).analyze()
    print(report.audit.summary())
    print(report.summary())
    db.close()
    return 0 if report.audit.ok else 1


def cmd_vacuum(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    report = db.vacuum()
    print(f"shredded {report.shredded_live} live and "
          f"{report.shredded_worm} WORM version(s) across "
          f"{report.relations or 'no relations'}")
    db.close()
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    key = _parse_key(args.key)
    versions = db.versions(args.relation, key)
    if not versions:
        print(f"{args.relation}{key!r}: no recorded versions")
    for view in versions:
        stamp = view.start if view.start is not None else "uncommitted"
        if view.eol:
            print(f"  @{stamp}: DELETED")
        else:
            print(f"  @{stamp}: {view.row}")
    db.close()
    return 0


def cmd_holds(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    holds = db.holds.all_holds()
    if not holds:
        print("no litigation holds")
    for hold in holds:
        state = "ACTIVE" if hold.active else \
            f"released @{hold.released_at}"
        target = hold.key_hex or "<whole relation>"
        print(f"  #{hold.hold_id} {hold.relation} {target} "
              f"placed @{hold.placed_at} [{state}] {hold.case_ref}")
    db.close()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    db = _open(args.path, args.auditor)
    if args.json:
        print(json.dumps(db.metrics(), indent=2, sort_keys=True))
    else:
        # metrics() also mirrors the process-wide hash work counters
        # (hash_sha512_calls / hash_memo_hits) into the registry, so
        # both exporters show digest-pool and hash-work gauges
        db.metrics()
        sys.stdout.write(prometheus_text(db.obs.registry))
    db.close()
    return 0


def cmd_shard_audit(args: argparse.Namespace) -> int:
    from ..shard import DistributedAuditor, ShardedDB
    sharded = ShardedDB.open(
        args.path, auditor_key=AuditorKey.generate(args.auditor))
    auditor = DistributedAuditor(sharded, workers=args.workers)
    report = auditor.audit(rotate=not args.no_rotate)
    print(report.summary())
    verified = report.verify(sharded.auditor_key)
    print(f"  attestation by {report.signer!r}: "
          f"{'VALID' if verified else 'INVALID'}")
    sharded.close()
    return 0 if report.ok and verified else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from ..server import ComplianceServer, ServerConfig
    path = args.path
    if args.shard is not None:
        # serve one shard of a sharded database created by
        # ShardedDB.create: <base>/shard-NNN
        from ..shard.coordinator import SHARD_DIR
        path = str(Path(args.path) / SHARD_DIR.format(args.shard))
    db = _open(path, args.auditor)
    config = ServerConfig(host=args.host, port=args.port,
                          max_queue_depth=args.max_queue_depth,
                          allow_crash_ops=args.allow_crash_ops)
    server = ComplianceServer(db, config).start()
    try:
        host, port = server.address
        print(f"serving {path} ({db.mode.value}) on {host}:{port}",
              flush=True)
        print("press Ctrl-C to drain and stop", flush=True)
        import time as _time
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        print("draining...")
    finally:
        server.shutdown()
        db.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-admin",
        description="administer a regulatory-compliant database")
    parser.add_argument("--auditor", default="auditor",
                        help="auditor key name (default: auditor)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, extra in [
        ("info", cmd_info, None),
        ("audit", cmd_audit, "audit"),
        ("forensics", cmd_forensics, None),
        ("vacuum", cmd_vacuum, None),
        ("history", cmd_history, "history"),
        ("holds", cmd_holds, None),
        ("metrics", cmd_metrics, "metrics"),
        ("serve", cmd_serve, "serve"),
        ("shard-audit", cmd_shard_audit, "shard-audit"),
    ]:
        cmd = sub.add_parser(name)
        cmd.add_argument("path", help="database directory")
        cmd.set_defaults(func=func)
        if extra == "audit":
            cmd.add_argument("--no-rotate", action="store_true",
                             help="dry run: do not advance the epoch")
            cmd.add_argument("--workers", type=int, default=None,
                             help="partition the audit across N worker "
                                  "processes (default: serial, or the "
                                  "database's audit_workers config)")
            cmd.add_argument("--resume", action="store_true",
                             help="resume an interrupted audit from its "
                                  "checkpoint")
            cmd.add_argument("--chunk-pages", type=int, default=None,
                             help="pages per final-state scan task")
            cmd.add_argument("--log-slices", type=int, default=None,
                             help="compliance-log ownership slices "
                                  "(default: one per worker)")
            cmd.add_argument("--checkpoint-every", type=int,
                             default=None,
                             help="persist audit progress every N "
                                  "completed tasks (0 disables)")
        elif extra == "history":
            cmd.add_argument("relation")
            cmd.add_argument("key", nargs="+",
                             help="primary key component(s)")
        elif extra == "metrics":
            cmd.add_argument("--json", action="store_true",
                             help="JSON snapshot instead of Prometheus "
                                  "text")
        elif extra == "serve":
            cmd.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: 127.0.0.1)")
            cmd.add_argument("--port", type=int, default=7911,
                             help="TCP port; 0 lets the OS pick "
                                  "(default: 7911)")
            cmd.add_argument("--max-queue-depth", type=int, default=64,
                             help="admission-control cap on queued + "
                                  "executing requests (default: 64)")
            cmd.add_argument("--allow-crash-ops", action="store_true",
                             help="expose the crash_recover op "
                                  "(test/bench harnesses)")
            cmd.add_argument("--shard", type=int, default=None,
                             help="serve shard N of a sharded database "
                                  "(path is the sharded base directory)")
        elif extra == "shard-audit":
            cmd.add_argument("--no-rotate", action="store_true",
                             help="dry run: do not advance any shard's "
                                  "epoch")
            cmd.add_argument("--workers", type=int, default=None,
                             help="partition each shard's audit across "
                                  "N worker processes")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
