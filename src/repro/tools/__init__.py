"""Operator tooling: the repro-admin command-line interface."""

from .admin import main

__all__ = ["main"]
