"""repro — reproduction of *An Architecture for Regulatory Compliant
Database Management* (Mitra, Winslett, Snodgrass, Yaduvanshi, Ambokar;
ICDE 2009).

A term-immutable DBMS built from scratch in Python: a transaction-time
storage engine (slotted pages, buffer cache, WAL, B+-trees), a simulated
WORM compliance server, the paper's log-consistent compliance architecture
with its hash-page-on-read and WORM-migration refinements, auditable
shredding, an auditor, an adversary toolkit, and a TPC-C workload.

Quickstart::

    from repro import CompliantDB, ComplianceMode, DBConfig
    db = CompliantDB.create(
        "/tmp/demo", DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT))

See ``examples/quickstart.py`` for a full tour.
"""

__version__ = "1.0.0"

from .api import ComplianceBackend
from .common.clock import SimulatedClock, days, minutes, seconds, years
from .common.codec import Field, FieldType, Schema
from .common.config import (ComplianceConfig, ComplianceMode, DBConfig,
                            EngineConfig)
from .core import (AuditReport, Auditor, CompliantDB, Finding,
                   ParallelAuditor, VacuumReport)
from .crypto import AddHash, AuditorKey, SeqHash
from .shard import DistributedAuditor, DistributedAuditReport, ShardedDB

__all__ = [
    "AddHash", "AuditReport", "Auditor", "AuditorKey",
    "ComplianceBackend", "ComplianceConfig",
    "ComplianceMode", "CompliantDB", "DBConfig",
    "DistributedAuditReport", "DistributedAuditor", "EngineConfig",
    "Field",
    "FieldType", "Finding", "ParallelAuditor", "Schema", "SeqHash",
    "ShardedDB", "SimulatedClock",
    "VacuumReport", "days", "minutes", "seconds", "years", "__version__",
]
