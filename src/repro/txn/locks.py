"""A simple two-phase-locking lock table.

The reproduction executes transactions from a single driver thread (as the
paper's TPC-C evaluation effectively does), so the lock table's job is to
*order* interleaved transactions and surface conflicts, not to block
threads: an incompatible request raises
:class:`~repro.common.errors.LockConflictError` immediately and the caller
decides whether to abort.  Locks are held until commit/abort (strict 2PL).

Resources are arbitrary hashables; the engine locks ``(relation_id, key)``
for tuple access and ``("relation", relation_id)`` for scans.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Optional, Set, Tuple

from ..common.errors import LockConflictError
from ..obs import Observability


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) access."""

    SHARED = "S"
    EXCLUSIVE = "X"


class LockTable:
    """Tracks which transactions hold which locks."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self.obs = obs if obs is not None else Observability()
        self._c_conflicts = self.obs.registry.counter(
            "txn_lock_conflicts_total",
            help="lock requests denied (immediate-conflict 2PL)")
        #: resource -> (mode, holder txn ids)
        self._locks: Dict[Hashable, Tuple[LockMode, Set[int]]] = {}
        #: txn id -> resources it holds
        self._held: Dict[int, Set[Hashable]] = {}

    def acquire(self, txn_id: int, resource: Hashable,
                mode: LockMode) -> None:
        """Grant a lock or raise :class:`LockConflictError`.

        Re-acquisition by a holder is a no-op; a sole SHARED holder may
        upgrade to EXCLUSIVE.
        """
        entry = self._locks.get(resource)
        if entry is None:
            self._locks[resource] = (mode, {txn_id})
            self._held.setdefault(txn_id, set()).add(resource)
            return
        held_mode, holders = entry
        if txn_id in holders:
            if mode is LockMode.EXCLUSIVE and held_mode is LockMode.SHARED:
                if holders == {txn_id}:
                    self._locks[resource] = (LockMode.EXCLUSIVE, holders)
                    return
                self._c_conflicts.inc()
                raise LockConflictError(
                    f"txn {txn_id} cannot upgrade {resource!r}: "
                    f"shared with {sorted(holders - {txn_id})}")
            return
        if held_mode is LockMode.SHARED and mode is LockMode.SHARED:
            holders.add(txn_id)
            self._held.setdefault(txn_id, set()).add(resource)
            return
        self._c_conflicts.inc()
        raise LockConflictError(
            f"txn {txn_id} denied {mode.value} on {resource!r}: held "
            f"{held_mode.value} by {sorted(holders)}")

    def clear(self) -> None:
        """Drop every lock (the crash primitive).

        Resets the table *in place* so components holding a reference to
        it (the engine, tests, a server session) keep observing the live
        table after :meth:`TransactionManager.crash_reset` — replacing
        the table object would silently strand them on a stale one.
        """
        self._locks.clear()
        self._held.clear()

    def release_all(self, txn_id: int) -> None:
        """Release every lock a transaction holds (commit/abort time)."""
        for resource in self._held.pop(txn_id, set()):
            entry = self._locks.get(resource)
            if entry is None:
                continue
            mode, holders = entry
            holders.discard(txn_id)
            if not holders:
                del self._locks[resource]

    def holders(self, resource: Hashable) -> Set[int]:
        """Transaction ids currently holding a resource (copy)."""
        entry = self._locks.get(resource)
        return set(entry[1]) if entry else set()

    def held_by(self, txn_id: int) -> Set[Hashable]:
        """Resources a transaction currently holds (copy)."""
        return set(self._held.get(txn_id, set()))
