"""Transaction lifecycle management.

Transaction IDs are allocated from the shared clock's tick sequence, so a
transaction's ID doubles as its begin time and all IDs/commit times live on
one strictly increasing axis — the property the paper's lazy timestamping
relies on (an unstamped tuple's "temporary commit time" sorts consistently
with real commit times for the serialisable schedules the engine admits).

Commit protocol (Section IV ordering):

1. append COMMIT to the WAL and **flush** it — the transaction is durable;
2. release locks;
3. fire ``on_commit`` listeners — the compliance plugin appends its
   STAMP_TRANS record to the WORM log here, *after* the commit, as required
   ("the compliance logger must wait to write ABORT and STAMP_TRANS records
   until the transaction has actually committed/aborted").

Listener failure semantics: by the time a listener runs, the commit (or
abort) is already durable in the WAL, so a listener that raises — e.g. the
compliance plugin failing its STAMP_TRANS append — means the compliance
log has *diverged* from the WAL.  Continuing would silently widen the
divergence, so the manager **halts**: the listener's exception poisons the
manager, every later ``begin``/``commit``/``abort`` raises
:class:`~repro.common.errors.ComplianceHaltError` naming the original
failure, and the commit/abort counters still record the durable outcome
(the WAL is the ground truth the counters track).  The sanctioned repair
is a crash + recovery cycle: :meth:`TransactionManager.crash_reset` clears
the poison, and compliance recovery re-derives the missing STAMP_TRANS /
ABORT records from the WAL (``CompliancePlugin.recovery_outcomes``), which
is exactly the paper's "transaction processing must halt until the
problem is fixed".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..common.clock import SimulatedClock
from ..common.errors import ComplianceHaltError, TransactionStateError
from ..obs import Observability
from ..wal import TransactionLog, WalRecord, WalRecordType
from .locks import LockTable


class TxnState(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    #: two-phase commit: durably able to commit, locks held, no further
    #: writes allowed — awaiting the coordinator's decision
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class WriteOp:
    """One tuple-version insertion performed by a transaction."""

    relation_id: int
    key: bytes
    start: int  # the txn id (unstamped temporary value)
    eol: bool


@dataclass
class Transaction:
    """A live transaction handle."""

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    commit_time: Optional[int] = None
    writes: List[WriteOp] = field(default_factory=list)
    #: the 2PC coordinator's global transaction id, once prepared
    gid: Optional[str] = None

    def require_active(self) -> None:
        """Raise unless the transaction can still perform work.

        A PREPARED transaction fails this check too: it promised the
        coordinator a fixed write set, so no further writes may slip in
        between prepare and the commit decision.
        """
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"txn {self.txn_id} is {self.state.value}")

    def require_finishable(self) -> None:
        """Raise unless commit/abort may still resolve the transaction."""
        if self.state not in (TxnState.ACTIVE, TxnState.PREPARED):
            raise TransactionStateError(
                f"txn {self.txn_id} is {self.state.value}")


CommitListener = Callable[[Transaction, int], None]
AbortListener = Callable[[Transaction], None]
UndoCallback = Callable[[Transaction], None]


class TransactionManager:
    """Begin/commit/abort orchestration over the WAL and lock table."""

    def __init__(self, clock: SimulatedClock, wal: TransactionLog,
                 locks: Optional[LockTable] = None,
                 obs: Optional[Observability] = None):
        self._clock = clock
        self._wal = wal
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._c_begins = registry.counter(
            "txn_begin_total", help="transactions started")
        self._c_commits = registry.counter(
            "txn_commit_total", help="transactions durably committed")
        self._c_prepares = registry.counter(
            "txn_prepare_total",
            help="transactions durably prepared (2PC phase one)")
        self._c_aborts = registry.counter(
            "txn_abort_total", help="transactions rolled back")
        self._g_active = registry.gauge(
            "txn_active", help="in-flight transactions")
        self._g_halted = registry.gauge(
            "txn_halted",
            help="1 while the manager is poisoned by a listener failure")
        self.locks = locks if locks is not None else \
            LockTable(obs=self.obs)
        #: the exception that poisoned the manager, if any (see module
        #: docstring: listener failure after a durable outcome)
        self.halt_cause: Optional[BaseException] = None
        self._active: Dict[int, Transaction] = {}
        #: txn id -> commit time for every commit this incarnation knows of
        self.commit_times: Dict[int, int] = {}
        self.on_commit: List[CommitListener] = []
        self.on_abort: List[AbortListener] = []
        #: set by the engine: rolls a transaction's writes out of the trees
        self.undo_callback: Optional[UndoCallback] = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def halted(self) -> bool:
        """Whether a listener failure has poisoned the manager."""
        return self.halt_cause is not None

    def _check_halted(self) -> None:
        if self.halt_cause is not None:
            raise ComplianceHaltError(
                "transaction processing is halted: a commit/abort "
                f"listener failed ({self.halt_cause!r}); crash and "
                "recover to repair the compliance log from the WAL"
            ) from self.halt_cause

    def _halt(self, cause: BaseException) -> None:
        self.halt_cause = cause
        self._g_halted.set(1)

    def begin(self) -> Transaction:
        """Start a transaction; its id is a fresh clock tick."""
        self._check_halted()
        txn = Transaction(txn_id=self._clock.tick())
        self._active[txn.txn_id] = txn
        self._wal.append(WalRecord(WalRecordType.BEGIN, txn_id=txn.txn_id))
        self._c_begins.inc()
        self._g_active.set(len(self._active))
        return txn

    def prepare(self, txn: Transaction, gid: str) -> None:
        """2PC phase one: durably promise the coordinator we can commit.

        Appends a PREPARE record carrying the coordinator's global
        transaction id and flushes the WAL.  The transaction keeps its
        locks and stays in the active table (so quiesce/audit wait for
        the decision), but no further writes are admitted — the write
        set the coordinator saw is the write set that commits.  Crash
        recovery classifies a prepared transaction with no outcome as
        *in doubt* and resolves it from the coordinator's decision
        journal (presumed abort when no decision was journaled).
        """
        txn.require_active()
        self._check_halted()
        with self.obs.tracer.span("txn.prepare", txn=txn.txn_id):
            self._wal.append(WalRecord(WalRecordType.PREPARE,
                                       txn_id=txn.txn_id, hist_ref=gid))
            self._wal.flush()
            txn.state = TxnState.PREPARED
            txn.gid = gid
        self._c_prepares.inc()

    def commit(self, txn: Transaction) -> int:
        """Durably commit; returns the commit time.

        Accepts ACTIVE and PREPARED transactions — a prepared one is a
        2PC participant receiving the coordinator's commit decision.

        Raises :class:`ComplianceHaltError` (and poisons the manager)
        if an ``on_commit`` listener fails *after* the commit became
        durable — see the module docstring for the failure semantics.
        """
        txn.require_finishable()
        self._check_halted()
        with self.obs.tracer.span("txn.commit", txn=txn.txn_id):
            commit_time = self._clock.tick()
            self._wal.append(WalRecord(WalRecordType.COMMIT,
                                       txn_id=txn.txn_id,
                                       commit_time=commit_time))
            self._wal.flush()
            txn.state = TxnState.COMMITTED
            txn.commit_time = commit_time
            self.commit_times[txn.txn_id] = commit_time
            del self._active[txn.txn_id]
            self.locks.release_all(txn.txn_id)
            # the commit is durable from here on: the counters must
            # record it whatever happens in the listeners
            self._c_commits.inc()
            self._g_active.set(len(self._active))
            try:
                for listener in self.on_commit:
                    listener(txn, commit_time)
            except Exception as exc:
                self._halt(exc)
                self._check_halted()
        return commit_time

    def abort(self, txn: Transaction) -> None:
        """Roll back: undo tree writes, log ABORT durably, release locks.

        ``on_abort`` listener failures poison the manager exactly like
        ``on_commit`` ones: the rollback is already durable in the WAL,
        so a failed ABORT record on the compliance log is the same
        silent-divergence hazard.  Accepts PREPARED transactions — a
        2PC participant receiving the coordinator's abort decision.
        """
        txn.require_finishable()
        self._check_halted()
        with self.obs.tracer.span("txn.abort", txn=txn.txn_id):
            if self.undo_callback is not None:
                self.undo_callback(txn)
            self._wal.append(WalRecord(WalRecordType.ABORT,
                                       txn_id=txn.txn_id))
            self._wal.flush()
            txn.state = TxnState.ABORTED
            del self._active[txn.txn_id]
            self.locks.release_all(txn.txn_id)
            self._c_aborts.inc()
            self._g_active.set(len(self._active))
            try:
                for listener in self.on_abort:
                    listener(txn)
            except Exception as exc:
                self._halt(exc)
                self._check_halted()

    # -- introspection -------------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Number of in-flight transactions."""
        return len(self._active)

    def active_transactions(self) -> List[Transaction]:
        """Snapshot of in-flight transactions."""
        return list(self._active.values())

    def resolve_start(self, start: int, stamped: bool) -> Optional[int]:
        """Commit time a tuple's start resolves to; None if uncommitted."""
        if stamped:
            return start
        return self.commit_times.get(start)

    def crash_reset(self) -> None:
        """Forget all volatile transaction state (the crash primitive).

        The lock table is cleared *in place* (not replaced) so every
        component holding a reference to it keeps seeing the live
        table, and the halt poison is lifted — crash + recovery is the
        sanctioned repair path for a listener failure.
        """
        self._active.clear()
        self.commit_times.clear()
        self._g_active.set(0)
        self.locks.clear()
        self.halt_cause = None
        self._g_halted.set(0)
