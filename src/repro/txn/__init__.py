"""Transactions: strict-2PL lock table and lifecycle manager."""

from .locks import LockMode, LockTable
from .manager import (Transaction, TransactionManager, TxnState, WriteOp)

__all__ = ["LockMode", "LockTable", "Transaction", "TransactionManager",
           "TxnState", "WriteOp"]
