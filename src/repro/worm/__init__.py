"""Simulated term-immutable (WORM) compliance storage server."""

from .server import WormFileMeta, WormServer, WormStats

__all__ = ["WormFileMeta", "WormServer", "WormStats"]
