"""Simulated term-immutable (WORM) compliance storage server."""

from .server import WormFileMeta, WormServer

__all__ = ["WormFileMeta", "WormServer"]
