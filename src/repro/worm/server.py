"""Simulated compliance (WORM) storage server.

Models the file-level interface of the compliance storage servers the paper
targets (IBM/EMC/NetApp SnapLock-class boxes):

* files are **term-immutable**: once written, their bytes can never be
  changed, and they cannot be deleted before their retention period ends;
* **append-only log files** are supported ("We assume the server allows us
  to append to files, so that it can hold logs") — existing bytes stay
  immutable, new bytes may be appended until the file is sealed;
* file **create times** come from a trusted Compliance Clock ("we trust the
  WORM server to correctly record the create times of files").

The server persists file bytes under a root directory and its trusted
metadata in an append-only journal inside that directory.  The threat model
*trusts* this server — the adversary edits the read/write media where the
database lives, not the WORM box — so enforcement at this API layer is the
faithful simulation: any attempt to overwrite, truncate, or early-delete
raises :class:`~repro.common.errors.WormViolationError` exactly as the real
box would reject the request.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, List, Optional, TextIO

from ..common.clock import SimulatedClock
from ..common.errors import (WormError, WormFileExistsError,
                             WormFileNotFoundError, WormViolationError)
from ..obs import (DEFAULT_SIZE_BUCKETS, MetricsRegistry, Observability,
                   WormStatsView)

_NAME_RE = re.compile(r"^[A-Za-z0-9._\-]+(/[A-Za-z0-9._\-]+)*$")
_META_JOURNAL = "__worm_meta__.jsonl"


@dataclass
class WormFileMeta:
    """Trusted metadata the WORM server keeps per file."""

    name: str
    create_time: int
    retention_until: int
    appendable: bool
    sealed: bool
    size: int


class WormStats(WormStatsView):
    """Deprecated alias for the registry-backed stats view.

    ``WormServer.stats`` is now a :class:`~repro.obs.views.
    WormStatsView` over the server's metrics registry.  Constructing a
    standalone ``WormStats`` (the PR 1 counter bag) is deprecated; the
    instance wraps a private registry so the legacy attribute surface
    keeps working.
    """

    def __init__(self) -> None:
        warnings.warn(
            "WormStats is deprecated; read WormServer.stats (a view "
            "over the repro.obs metrics registry) or "
            "CompliantDB.metrics() instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(MetricsRegistry())


class WormServer:
    """A term-immutable file store with a trusted clock.

    Parameters
    ----------
    root:
        Directory that holds the simulated WORM volume.
    clock:
        The trusted Compliance Clock.  Sharing the harness's
        :class:`SimulatedClock` is faithful: the paper trusts the WORM
        server's clock as authoritative.
    default_retention:
        Retention period (microseconds) applied when a file is created
        without an explicit one.
    """

    def __init__(self, root: "os.PathLike[str]", clock: SimulatedClock,
                 default_retention: int, fsync: bool = False,
                 obs: Optional[Observability] = None):
        if default_retention <= 0:
            raise WormError("default_retention must be positive")
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._default_retention = default_retention
        self._fsync = fsync
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._c_appends = registry.counter(
            "worm_appends_total",
            help="append() calls that carried data")
        self._c_buffered = registry.counter(
            "worm_buffered_appends_total",
            help="appends that only landed in the in-memory buffer")
        self._c_flushes = registry.counter(
            "worm_flushes_total",
            help="physical write+flush round-trips to the volume")
        self._c_fsyncs = registry.counter(
            "worm_fsyncs_total", help="fsync() system calls issued")
        self._c_bytes = registry.counter(
            "worm_bytes_written_total",
            help="bytes physically written to the WORM volume")
        self._h_flush_bytes = registry.histogram(
            "worm_flush_bytes", buckets=DEFAULT_SIZE_BUCKETS,
            help="bytes per physical WORM flush (group-commit batch)")
        self._files: Dict[str, WormFileMeta] = {}
        #: open handles for append-only files (hot path: the compliance
        #: log receives one append per record)
        self._append_handles: Dict[str, IO[bytes]] = {}
        #: group-commit buffers: per-file chunks appended with
        #: ``durable=False`` that have not yet been written out.  A
        #: simulated crash drops them (:meth:`drop_buffers`), exactly as
        #: unsent network writes to a real WORM box would vanish.
        self._buffers: Dict[str, List[bytes]] = {}
        self._buffered_len: Dict[str, int] = {}
        self.stats = WormStatsView(registry)
        self._journal_path = self._root / _META_JOURNAL
        self._journal_handle: Optional[TextIO] = None
        self._replay_journal()

    # -- clock ---------------------------------------------------------------

    def now(self) -> int:
        """The trusted Compliance Clock's current time."""
        return self._clock.now()

    # -- creation ------------------------------------------------------------

    def create_file(self, name: str, data: bytes = b"",
                    retention: Optional[int] = None) -> WormFileMeta:
        """Commit an immutable file.  Its bytes can never change again.

        Empty ``data`` is allowed — the compliance plugin creates one empty
        *witness* file per regret interval to prove the DBMS was alive.
        """
        meta = self._create(name, retention, appendable=False)
        if data:
            # immutable bytes go through the same write+flush path as
            # append-file data so ``fsync`` is honoured and the flush
            # counters see them
            self._write_out(name, bytes(data))
            meta.size = len(data)
            handle = self._append_handles.pop(name, None)
            if handle is not None:
                handle.close()
        return meta

    def create_append_file(self, name: str,
                           retention: Optional[int] = None) -> WormFileMeta:
        """Create an append-only log file (e.g. the compliance log ``L``)."""
        return self._create(name, retention, appendable=True)

    def _create(self, name: str, retention: Optional[int],
                appendable: bool) -> WormFileMeta:
        self._check_name(name)
        if name in self._files:
            raise WormFileExistsError(f"WORM file {name!r} already exists")
        period = self._default_retention if retention is None else retention
        if period <= 0:
            raise WormError("retention must be positive")
        created = self._clock.now()
        meta = WormFileMeta(name=name, create_time=created,
                            retention_until=created + period,
                            appendable=appendable, sealed=not appendable,
                            size=0)
        path = self._path_for(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")
        self._files[name] = meta
        self._journal("create", name, create_time=created,
                      retention_until=meta.retention_until,
                      appendable=appendable)
        return meta

    # -- append --------------------------------------------------------------

    def append(self, name: str, data: bytes, durable: bool = True) -> int:
        """Append bytes to an append-only file; returns the write offset.

        Existing bytes are untouchable; appending to a sealed or regular
        file is a WORM violation.

        With ``durable=False`` the bytes only accumulate in an in-memory
        buffer — they are readable and count toward the file's size, but
        a crash before the next :meth:`sync` loses them.  This is the
        group-commit mode the compliance log uses; callers are
        responsible for placing :meth:`sync` barriers wherever the
        protocol requires durability.
        """
        meta = self._require(name)
        if not meta.appendable or meta.sealed:
            raise WormViolationError(
                f"cannot append to sealed/immutable WORM file {name!r}")
        offset = meta.size
        if data:
            data = bytes(data)
            self._c_appends.inc()
            if durable:
                # ordering: earlier buffered appends land first — in the
                # *same* physical write+flush as the new bytes, so a
                # durable append after N buffered ones costs one
                # round-trip, not two
                chunks = self._buffers.get(name)
                if chunks:
                    chunks.append(data)
                    blob = b"".join(chunks)
                    chunks.clear()
                    self._buffered_len[name] = 0
                else:
                    blob = data
                self._write_out(name, blob)
            else:
                self._buffers.setdefault(name, []).append(data)
                self._buffered_len[name] = \
                    self._buffered_len.get(name, 0) + len(data)
                self._c_buffered.inc()
            meta.size += len(data)
        return offset

    def sync(self, name: str) -> bool:
        """Durability barrier: write out a file's buffered appends.

        Returns True if anything was actually flushed.  One ``sync``
        after N buffered appends costs a single write+flush round-trip —
        the group-commit batching win.
        """
        self._require(name)
        chunks = self._buffers.get(name)
        if not chunks:
            return False
        blob = b"".join(chunks)
        chunks.clear()
        self._buffered_len[name] = 0
        self._write_out(name, blob)
        return True

    def sync_all(self) -> int:
        """Sync every file with buffered appends; returns files flushed."""
        return sum(1 for name in list(self._buffers) if self.sync(name))

    def buffered(self, name: str) -> int:
        """Bytes currently buffered (not yet durable) for a file."""
        self._require(name)
        return self._buffered_len.get(name, 0)

    def buffered_files(self) -> Dict[str, bytes]:
        """Snapshot of every file's buffered (not-yet-durable) tail.

        Audit worker processes read WORM files straight from disk; this
        gives the coordinator the in-memory tails to ship alongside so
        workers see the same logical contents as :meth:`read`.
        """
        return {name: b"".join(chunks)
                for name, chunks in self._buffers.items()
                if self._buffered_len.get(name, 0)}

    @property
    def root(self) -> Path:
        """Directory backing the WORM volume (for direct worker reads)."""
        return self._root

    def drop_buffers(self) -> int:
        """Crash simulation: all un-synced appends vanish.

        File sizes roll back to their durable extents, matching what a
        re-opened server would recover from the volume.  Returns the
        number of bytes dropped.
        """
        dropped = 0
        for name, chunks in self._buffers.items():
            lost = self._buffered_len.get(name, 0)
            if lost:
                self._files[name].size -= lost
                dropped += lost
            chunks.clear()
            self._buffered_len[name] = 0
        return dropped

    def _write_out(self, name: str, blob: bytes) -> None:
        with self.obs.tracer.span("worm.flush", file=name,
                                  bytes=len(blob)):
            handle = self._append_handles.get(name)
            if handle is None:
                handle = open(self._path_for(name), "ab")
                self._append_handles[name] = handle
            handle.write(blob)
            handle.flush()
            self._c_flushes.inc()
            self._c_bytes.inc(len(blob))
            self._h_flush_bytes.observe(len(blob))
            if self._fsync:
                os.fsync(handle.fileno())
                self._c_fsyncs.inc()

    def seal(self, name: str) -> None:
        """Permanently close an append-only file (idempotent).

        The audit seals the current compliance-log epoch before opening a
        fresh one (Section IV: "the current file for L is permanently
        closed, a new one is opened").
        """
        meta = self._require(name)
        if not meta.sealed:
            self.sync(name)
            meta.sealed = True
            handle = self._append_handles.pop(name, None)
            if handle is not None:
                handle.close()
            self._journal("seal", name)

    # -- read ----------------------------------------------------------------

    def read(self, name: str, offset: int = 0,
             length: Optional[int] = None) -> bytes:
        """Read (part of) a file's bytes, including buffered appends.

        Reads are clamped at ``meta.size``: an explicit ``length`` can
        never return bytes beyond the size the trusted metadata records,
        even if the underlying volume file has been padded out-of-band.
        """
        meta = self._require(name)
        offset = max(0, offset)
        end = meta.size if length is None \
            else min(offset + max(0, length), meta.size)
        if offset >= end:
            return b""
        parts: List[bytes] = []
        durable_size = meta.size - self._buffered_len.get(name, 0)
        if offset < durable_size:
            with open(self._path_for(name), "rb") as handle:
                handle.seek(offset)
                parts.append(handle.read(min(end, durable_size) - offset))
        if end > durable_size:
            buffered = b"".join(self._buffers.get(name, ()))
            parts.append(buffered[max(0, offset - durable_size):
                                  end - durable_size])
        return b"".join(parts)

    def size(self, name: str) -> int:
        """Logical size of a file in bytes (durable + buffered appends)."""
        return self._require(name).size

    def exists(self, name: str) -> bool:
        """Whether a file exists on the WORM volume."""
        return name in self._files

    def meta(self, name: str) -> WormFileMeta:
        """Trusted metadata for a file (copy)."""
        meta = self._require(name)
        return WormFileMeta(**vars(meta))

    def list_files(self, prefix: str = "") -> List[str]:
        """Names of all files, optionally filtered by prefix, sorted."""
        return sorted(n for n in self._files if n.startswith(prefix))

    # -- deletion ------------------------------------------------------------

    def delete(self, name: str) -> None:
        """Delete a file **only if** its retention period has ended.

        The unit of deletion on WORM is the whole file (Section VIII).
        """
        meta = self._require(name)
        if self._clock.now() < meta.retention_until:
            raise WormViolationError(
                f"WORM file {name!r} is under retention until "
                f"{meta.retention_until} (now {self._clock.now()})")
        handle = self._append_handles.pop(name, None)
        if handle is not None:
            handle.close()
        self._buffers.pop(name, None)
        self._buffered_len.pop(name, None)
        self._path_for(name).unlink(missing_ok=True)
        del self._files[name]
        self._journal("delete", name)

    def is_expired(self, name: str) -> bool:
        """Whether a file's retention period has ended."""
        return self._clock.now() >= self._require(name).retention_until

    # -- internals -----------------------------------------------------------

    def _require(self, name: str) -> WormFileMeta:
        try:
            return self._files[name]
        except KeyError:
            raise WormFileNotFoundError(
                f"no WORM file named {name!r}") from None

    def _check_name(self, name: str) -> None:
        if not _NAME_RE.match(name or ""):
            raise WormError(f"invalid WORM file name {name!r}")
        if any(part in (".", "..") for part in name.split("/")):
            raise WormError(f"invalid WORM file name {name!r}")
        if name == _META_JOURNAL:
            raise WormError("reserved WORM file name")

    def _path_for(self, name: str) -> Path:
        return self._root / name

    def _journal(self, op: str, name: str, **extra: object) -> None:
        entry: Dict[str, object] = {"op": op, "name": name}
        entry.update(extra)
        if self._journal_handle is None:
            self._journal_handle = open(self._journal_path, "a",
                                        encoding="utf-8")
        self._journal_handle.write(json.dumps(entry) + "\n")
        self._journal_handle.flush()

    def _replay_journal(self) -> None:
        if not self._journal_path.exists():
            return
        with open(self._journal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                op, name = entry["op"], entry["name"]
                if op == "create":
                    self._files[name] = WormFileMeta(
                        name=name, create_time=entry["create_time"],
                        retention_until=entry["retention_until"],
                        appendable=entry["appendable"],
                        sealed=not entry["appendable"], size=0)
                elif op == "seal":
                    self._files[name].sealed = True
                elif op == "delete":
                    self._files.pop(name, None)
        # file sizes are recovered from the files themselves — the data
        # is its own durable record; the journal holds only trusted
        # metadata (create times, retention, seals)
        for name, meta in self._files.items():
            path = self._path_for(name)
            meta.size = path.stat().st_size if path.exists() else 0
