"""Service layer: single-writer execution of client requests.

The engine underneath (:class:`~repro.core.database.CompliantDB`) is a
single-caller library — the strict-2PL lock table surfaces conflicts to
*one* driver thread and none of the storage layers take internal locks.
The service therefore serialises every database-touching request through
a :class:`SingleWriterExecutor`: one worker thread owns the database, a
bounded queue in front of it is the admission-control point, and the
order in which the worker applies requests **is** the serial history of
the database.  (This mirrors the queue-worker-poll shape of
Compliance_Sentinel's job pipeline — validate/enqueue at the edge, one
background worker drains in FIFO order.)

Sessions own transactions: each network connection maps to a
:class:`Session`, transaction handles returned by ``begin`` are only
usable by the session that opened them, and a session's open
transactions are aborted when it closes (disconnect or drain).

When ``record_history=True`` every successfully applied operation is
journaled in execution order.  Because the executor's order is a serial
order and every timestamp comes from the deterministic
:class:`~repro.common.clock.SimulatedClock`, replaying the journal with
:func:`replay_history` against a fresh, identically configured database
reproduces the WAL, the compliance log, and therefore the audit report
byte-for-byte — the equivalence the server concurrency tests and the
bench gate assert.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.codec import Field, FieldType, Schema
from ..common.errors import (ServerBusyError, ServerError,
                             ServerShutdownError, TransactionAborted,
                             TransactionStateError)
from ..obs import Observability
from ..txn import Transaction
from .protocol import wire_decode, wire_encode

#: one journaled operation: (op name, *op-specific fields)
HistoryEntry = Tuple[Any, ...]


class SingleWriterExecutor:
    """A bounded FIFO queue in front of one database-owning thread.

    ``submit`` is the admission-control point: when ``depth`` (queued +
    executing jobs) has reached ``max_depth`` the request is rejected
    with :class:`ServerBusyError` instead of queueing — the caller
    surfaces that as a retryable ``BUSY`` response, which is the
    backpressure signal.  ``force=True`` bypasses admission for
    cleanup work that must not be droppable (session-close aborts,
    drain barriers).
    """

    def __init__(self, max_depth: int = 64,
                 obs: Optional[Observability] = None):
        if max_depth < 1:
            raise ServerError("max_depth must be positive")
        self.max_depth = max_depth
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._g_depth = registry.gauge(
            "server_queue_depth",
            help="requests queued or executing on the writer thread")
        self._c_busy = registry.counter(
            "server_busy_total",
            help="requests rejected by admission control")
        self._c_executed = registry.counter(
            "server_jobs_executed_total",
            help="jobs the writer thread completed (incl. failed ones)")
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: List[Tuple[Callable[[], Any], "Future[Any]"]] = []
        self._depth = 0
        self._draining = False
        self._thread: Optional[threading.Thread] = None

    @property
    def depth(self) -> int:
        """Jobs queued or executing right now."""
        with self._lock:
            return self._depth

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has completed (writer thread gone)."""
        with self._lock:
            return self._draining and self._thread is None

    def start(self) -> None:
        """Spawn the writer thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run,
                                        name="repro-server-writer",
                                        daemon=True)
        self._thread.start()

    def submit(self, fn: Callable[[], Any],
               force: bool = False) -> "Future[Any]":
        """Enqueue a job; raises :class:`ServerBusyError` at the depth
        cap and :class:`ServerShutdownError` once draining."""
        future: "Future[Any]" = Future()
        with self._lock:
            if self._draining and not force:
                raise ServerShutdownError("server is draining")
            if not force and self._depth >= self.max_depth:
                self._c_busy.inc()
                raise ServerBusyError(
                    f"writer queue at depth limit {self.max_depth}")
            self._depth += 1
            self._g_depth.set(self._depth)
            self._jobs.append((fn, future))
            self._wake.notify()
        return future

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._jobs:
                    if self._draining:
                        return
                    self._wake.wait()
                fn, future = self._jobs.pop(0)
            try:
                result = fn()
            except BaseException as exc:  # delivered to the caller
                future.set_exception(exc)
            else:
                future.set_result(result)
            self._c_executed.inc()
            with self._lock:
                self._depth -= 1
                self._g_depth.set(self._depth)

    def stop(self, drain: bool = True) -> None:
        """Stop the writer thread.

        ``drain=True`` lets every queued job finish first; ``False``
        fails queued jobs with :class:`ServerShutdownError`.
        """
        with self._lock:
            self._draining = True
            if not drain:
                failed, self._jobs = self._jobs, []
                self._depth -= len(failed)
                self._g_depth.set(self._depth)
            else:
                failed = []
            self._wake.notify_all()
        for _, future in failed:
            future.set_exception(
                ServerShutdownError("server stopped before execution"))
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None


class Session:
    """One client connection's transaction scope."""

    def __init__(self, session_id: int):
        self.session_id = session_id
        #: txn id -> live handle; mutated only on the writer thread
        self.txns: Dict[int, Transaction] = {}
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.session_id}, txns={sorted(self.txns)})"


class ComplianceService:
    """Request dispatch over a CompliantDB, one writer thread deep.

    Public entry points (``open_session`` / ``execute`` /
    ``close_session`` / …) are thread-safe: they marshal the actual
    work onto the executor.  The ``_op_*`` handlers run exclusively on
    the writer thread and are the only code that touches the database.
    """

    #: ops that do not touch the database (answered on the session
    #: thread, no admission control)
    _LOCAL_OPS = frozenset({"ping"})

    def __init__(self, db: Any, max_queue_depth: int = 64,
                 record_history: bool = False,
                 allow_crash_ops: bool = False,
                 obs: Optional[Observability] = None):
        self.db = db
        self.obs = obs if obs is not None else db.obs
        self.executor = SingleWriterExecutor(max_queue_depth, obs=self.obs)
        self.allow_crash_ops = allow_crash_ops
        self._history: Optional[List[HistoryEntry]] = \
            [] if record_history else None
        self._sessions: Dict[int, Session] = {}
        self._sessions_lock = threading.Lock()
        self._next_session = 1
        self._ops: Dict[str, Callable[[Session, Dict[str, Any]],
                                      Dict[str, Any]]] = {
            "begin": self._op_begin,
            "commit": self._op_commit,
            "abort": self._op_abort,
            "prepare": self._op_prepare,
            "insert": self._op_insert,
            "insert_many": self._op_insert_many,
            "update": self._op_update,
            "delete": self._op_delete,
            "get": self._op_get,
            "scan": self._op_scan,
            "create_relation": self._op_create_relation,
            "info": self._op_info,
            "metrics": self._op_metrics,
            "now": self._op_now,
            "checkpoint": self._op_checkpoint,
            "maintenance": self._op_maintenance,
            "audit": self._op_audit,
            "crash_recover": self._op_crash_recover,
            "ping": self._op_ping,
        }

    # -- session lifecycle ---------------------------------------------------

    def open_session(self) -> Session:
        """Register a new session (one per connection)."""
        with self._sessions_lock:
            session = Session(self._next_session)
            self._next_session += 1
            self._sessions[session.session_id] = session
        return session

    def close_session(self, session: Session) -> None:
        """Abort the session's open transactions and forget it.

        Runs the aborts on the writer thread with admission bypassed —
        cleanup must not be lost to backpressure.
        """
        with self._sessions_lock:
            self._sessions.pop(session.session_id, None)
        future = self.executor.submit(
            lambda: self._abort_session_txns(session), force=True)
        future.result(timeout=30)

    def _abort_session_txns(self, session: Session) -> int:
        session.closed = True
        aborted = 0
        for txn_id in sorted(session.txns):
            txn = session.txns.pop(txn_id)
            try:
                self.db.abort(txn)
            except (TransactionStateError, TransactionAborted):
                continue  # already resolved (e.g. by a crash)
            self._record(("abort", txn_id))
            aborted += 1
        return aborted

    def drain_sessions(self) -> int:
        """Abort every live session's transactions (server drain)."""
        with self._sessions_lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        total = 0
        for session in sessions:
            future = self.executor.submit(
                lambda s=session: self._abort_session_txns(s), force=True)
            total += future.result(timeout=30)
        return total

    @property
    def session_count(self) -> int:
        """Live sessions."""
        with self._sessions_lock:
            return len(self._sessions)

    # -- request execution ---------------------------------------------------

    def execute(self, session: Session, op: str,
                args: Dict[str, Any]) -> Dict[str, Any]:
        """Run one request to completion; called from session threads.

        Database ops are serialised through the executor; admission
        control may reject them with :class:`ServerBusyError` before
        they queue.
        """
        handler = self._ops.get(op)
        if handler is None:
            raise ServerError(f"unknown op {op!r}")
        if op in self._LOCAL_OPS:
            return handler(session, args)
        future = self.executor.submit(lambda: handler(session, args))
        return future.result()

    def history_snapshot(self) -> List[HistoryEntry]:
        """Copy of the execution-order journal (empty if disabled).

        Taken on the writer thread so it can never observe a
        half-applied operation.  Prefer calling this *after* the server
        has drained: cleanup aborts from closing sessions are part of
        the history, and a snapshot taken mid-traffic will miss any
        still in flight.
        """
        if self._history is None:
            return []
        if self.executor.stopped:  # no writers left: direct read is safe
            return list(self._history)
        future = self.executor.submit(lambda: list(self._history or []),
                                      force=True)
        return future.result(timeout=30)

    def _record(self, entry: HistoryEntry) -> None:
        if self._history is not None:
            self._history.append(entry)

    # -- op handlers (writer thread only) ------------------------------------

    def _txn(self, session: Session, args: Dict[str, Any]) -> Transaction:
        txn_id = args.get("txn")
        if not isinstance(txn_id, int):
            raise ServerError("request needs an integer 'txn' handle")
        txn = session.txns.get(txn_id)
        if txn is None:
            raise TransactionStateError(
                f"txn {txn_id} is not open in this session")
        return txn

    def _op_begin(self, session: Session,
                  args: Dict[str, Any]) -> Dict[str, Any]:
        txn = self.db.begin()
        session.txns[txn.txn_id] = txn
        self._record(("begin", txn.txn_id))
        return {"txn": txn.txn_id}

    def _op_commit(self, session: Session,
                   args: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._txn(session, args)
        commit_time = self.db.commit(txn)
        del session.txns[txn.txn_id]
        self._record(("commit", txn.txn_id))
        return {"commit_time": commit_time}

    def _op_abort(self, session: Session,
                  args: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._txn(session, args)
        self.db.abort(txn)
        del session.txns[txn.txn_id]
        self._record(("abort", txn.txn_id))
        return {}

    def _op_prepare(self, session: Session,
                    args: Dict[str, Any]) -> Dict[str, Any]:
        """2PC phase one on behalf of a remote shard coordinator.

        The transaction stays open in the session (locks held, writes
        fenced) until the coordinator's commit/abort decision arrives.
        """
        txn = self._txn(session, args)
        gid = str(args["gid"])
        self.db.prepare(txn, gid)
        self._record(("prepare", txn.txn_id, gid))
        return {}

    def _write(self, session: Session, args: Dict[str, Any],
               kind: str) -> Dict[str, Any]:
        txn = self._txn(session, args)
        relation = args["relation"]
        try:
            if kind == "delete":
                key = wire_decode(args["key"], as_key=True)
                self.db.delete(txn, relation, key)
                entry: HistoryEntry = ("delete", txn.txn_id, relation, key)
            else:
                row = wire_decode(args["row"])
                getattr(self.db, kind)(txn, relation, row)
                entry = (kind, txn.txn_id, relation, row)
        except TransactionAborted:
            # first-writer-wins: the engine requires the caller to roll
            # back.  Do it server-side so the conflict is retryable with
            # a plain new begin — and journal the abort, because the
            # rollback's WAL/compliance records are part of the history.
            self.db.abort(txn)
            del session.txns[txn.txn_id]
            self._record(("abort", txn.txn_id))
            raise
        self._record(entry)
        return {}

    def _op_insert(self, session: Session,
                   args: Dict[str, Any]) -> Dict[str, Any]:
        return self._write(session, args, "insert")

    def _op_insert_many(self, session: Session,
                        args: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._txn(session, args)
        relation = args["relation"]
        rows = [wire_decode(row) for row in args["rows"]]
        try:
            self.db.insert_many(txn, relation, rows)
        except TransactionAborted:
            # same contract as the scalar writes: roll back server-side
            # so the conflict is retryable, and journal the abort
            self.db.abort(txn)
            del session.txns[txn.txn_id]
            self._record(("abort", txn.txn_id))
            raise
        self._record(("insert_many", txn.txn_id, relation, rows))
        return {}

    def _op_update(self, session: Session,
                   args: Dict[str, Any]) -> Dict[str, Any]:
        return self._write(session, args, "update")

    def _op_delete(self, session: Session,
                   args: Dict[str, Any]) -> Dict[str, Any]:
        return self._write(session, args, "delete")

    def _read_txn(self, session: Session,
                  args: Dict[str, Any]) -> Optional[Transaction]:
        if args.get("txn") is None:
            return None
        return self._txn(session, args)

    def _op_get(self, session: Session,
                args: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._read_txn(session, args)
        key = wire_decode(args["key"], as_key=True)
        at = args.get("at")
        row = self.db.get(args["relation"], key, txn=txn, at=at)
        self._record(("get", args["relation"], key,
                      txn.txn_id if txn is not None else None, at))
        return {"row": wire_encode(row)}

    def _op_scan(self, session: Session,
                 args: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._read_txn(session, args)
        lo = wire_decode(args["lo"], as_key=True) \
            if args.get("lo") is not None else None
        hi = wire_decode(args["hi"], as_key=True) \
            if args.get("hi") is not None else None
        at = args.get("at")
        rows = self.db.scan(args["relation"], lo=lo, hi=hi, txn=txn, at=at)
        self._record(("scan", args["relation"], lo, hi,
                      txn.txn_id if txn is not None else None, at))
        return {"rows": [[wire_encode(list(key)), wire_encode(row)]
                         for key, row in rows]}

    def _op_create_relation(self, session: Session,
                            args: Dict[str, Any]) -> Dict[str, Any]:
        name = args["name"]
        fields = [(str(fname), str(ftype))
                  for fname, ftype in args["fields"]]
        key_fields = [str(k) for k in args["key"]]
        use_tsb = args.get("use_tsb")
        schema = Schema(name, [Field(fname, FieldType(ftype))
                               for fname, ftype in fields],
                        key_fields=key_fields)
        self.db.create_relation(schema, use_tsb=use_tsb)
        self._record(("create_relation", name, fields, key_fields,
                      use_tsb))
        return {"relation": name}

    def _op_info(self, session: Session,
                 args: Dict[str, Any]) -> Dict[str, Any]:
        db = self.db
        return {
            "mode": db.mode.value,
            "epoch": db.epoch,
            "relations": db.engine.relation_names(),
            "active_txns": db.engine.txns.active_count,
            "halted": db.engine.txns.halted,
        }

    def _op_metrics(self, session: Session,
                    args: Dict[str, Any]) -> Dict[str, Any]:
        return {"metrics": self.db.metrics()}

    def _op_now(self, session: Session,
                args: Dict[str, Any]) -> Dict[str, Any]:
        # runs on the writer thread like every db touch: reading the
        # clock must not race a concurrent tick
        return {"now": self.db.now()}

    def _op_checkpoint(self, session: Session,
                       args: Dict[str, Any]) -> Dict[str, Any]:
        self.db.checkpoint()
        self._record(("checkpoint",))
        return {}

    def _op_maintenance(self, session: Session,
                        args: Dict[str, Any]) -> Dict[str, Any]:
        force = bool(args.get("force"))
        ran = self.db.maintenance(force=force)
        self._record(("maintenance", force))
        return {"ran": bool(ran)}

    def _op_audit(self, session: Session,
                  args: Dict[str, Any]) -> Dict[str, Any]:
        """Run a compliance audit on the writer thread.

        Fails with ``TXN_STATE`` while any session holds an open
        transaction (the auditor quiesces first), which is exactly the
        ordering a shard coordinator needs: resolve, then audit.
        """
        from ..core.audit import Auditor
        from ..core.parallel_audit import ParallelAuditor
        rotate = bool(args.get("rotate", True))
        workers = args.get("workers")
        if workers:
            auditor: Auditor = ParallelAuditor(self.db,
                                               workers=int(workers))
        else:
            auditor = Auditor(self.db)
        report = auditor.audit(rotate=rotate)
        self._record(("audit", rotate, int(workers) if workers else None))
        payload = dict(report.comparable())
        payload.update(workers=report.workers,
                       tasks_total=report.tasks_total,
                       tasks_resumed=report.tasks_resumed)
        return {"report": payload}

    def _op_crash_recover(self, session: Session,
                          args: Dict[str, Any]) -> Dict[str, Any]:
        """Simulated crash + recovery (test/bench harness op).

        Every session's transaction handles die with the crash, exactly
        like in-flight work on a real server that lost power.
        ``commits`` (optional) is a 2PC coordinator's journaled
        committed-gid list for resolving in-doubt prepared transactions.
        """
        if not self.allow_crash_ops:
            raise ServerError("crash ops are disabled on this server")
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for live in sessions:
            live.txns.clear()
        session.txns.clear()
        commits = args.get("commits")
        if commits is not None:
            commits = [str(gid) for gid in commits]
        self.db.crash()
        report = self.db.recover(in_doubt_commits=commits)
        self._record(("crash_recover", commits))
        return {"redone": report.redone, "undone": report.undone,
                "restamped": report.restamped}

    def _op_ping(self, session: Session,
                 args: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}


def replay_history(db: Any, history: List[HistoryEntry]) -> None:
    """Re-apply a journaled concurrent run as one serial history.

    ``db`` must be a fresh database built with the same configuration,
    seed data, and clock parameters as the one that produced the
    journal.  Because transaction ids and timestamps are clock ticks and
    the journal is the executor's execution order, the replayed WAL and
    compliance log are byte-identical to the concurrent run's — which is
    what makes the audit-report equality check meaningful.
    """
    txns: Dict[int, Transaction] = {}
    for entry in history:
        op = entry[0]
        if op == "begin":
            txn = db.begin()
            txns[entry[1]] = txn
            if txn.txn_id != entry[1]:
                raise ServerError(
                    f"replay diverged: begin produced txn {txn.txn_id}, "
                    f"journal says {entry[1]} — the replay database was "
                    "not built identically")
        elif op == "commit":
            db.commit(txns.pop(entry[1]))
        elif op == "abort":
            db.abort(txns.pop(entry[1]))
        elif op == "prepare":
            db.prepare(txns[entry[1]], entry[2])
        elif op in ("insert", "update"):
            getattr(db, op)(txns[entry[1]], entry[2], entry[3])
        elif op == "insert_many":
            db.insert_many(txns[entry[1]], entry[2], entry[3])
        elif op == "delete":
            db.delete(txns[entry[1]], entry[2], entry[3])
        elif op == "get":
            _, relation, key, txn_id, at = entry
            db.get(relation, key,
                   txn=txns.get(txn_id) if txn_id is not None else None,
                   at=at)
        elif op == "scan":
            _, relation, lo, hi, txn_id, at = entry
            db.scan(relation, lo=lo, hi=hi,
                    txn=txns.get(txn_id) if txn_id is not None else None,
                    at=at)
        elif op == "create_relation":
            _, name, fields, key_fields, use_tsb = entry
            schema = Schema(name, [Field(fname, FieldType(ftype))
                                   for fname, ftype in fields],
                            key_fields=key_fields)
            db.create_relation(schema, use_tsb=use_tsb)
        elif op == "checkpoint":
            db.checkpoint()
        elif op == "maintenance":
            db.maintenance(force=entry[1])
        elif op == "audit":
            from ..core.audit import Auditor
            from ..core.parallel_audit import ParallelAuditor
            _, rotate, workers = entry
            auditor = ParallelAuditor(db, workers=workers) if workers \
                else Auditor(db)
            auditor.audit(rotate=rotate)
        elif op == "crash_recover":
            txns.clear()
            db.crash()
            # pre-2PC journals recorded a bare ("crash_recover",) entry
            commits = entry[1] if len(entry) > 1 else None
            db.recover(in_doubt_commits=commits)
        else:
            raise ServerError(f"unknown journal entry {op!r}")
