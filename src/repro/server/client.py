"""Thin synchronous client for the compliance server.

One socket, one outstanding request at a time — the shape the tests and
the bench need.  Failures come back as
:class:`~repro.common.errors.ServerRequestError` carrying the protocol
error code and the server's retryable verdict, so callers can write
honest retry loops::

    try:
        client.insert(txn, "accounts", row)
    except ServerRequestError as exc:
        if exc.code == CONFLICT:
            ...  # txn is gone (server aborted it); begin a fresh one
        elif exc.retryable:
            ...  # BUSY: back off and resend the same request
        else:
            raise
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ServerProtocolError, ServerRequestError
from .protocol import recv_frame, send_frame, wire_decode, wire_encode


class ServerClient:
    """Blocking frame-protocol client (context manager)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 1

    # -- plumbing ------------------------------------------------------------

    def request(self, op: str, **args: Any) -> Dict[str, Any]:
        """One round-trip; returns the result object or raises
        :class:`ServerRequestError` with the server's code."""
        request_id = self._next_id
        self._next_id += 1
        send_frame(self._sock, {"op": op, "args": args,
                                "id": request_id})
        response = recv_frame(self._sock)
        if response is None:
            raise ServerProtocolError(
                "server closed the connection mid-request")
        if response.get("id") != request_id:
            raise ServerProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        raise ServerRequestError(
            str(response.get("error", "ERROR")),
            str(response.get("message", "")),
            retryable=bool(response.get("retryable")))

    def close(self) -> None:
        """Close the connection (open transactions are aborted
        server-side)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- convenience ops -----------------------------------------------------

    def ping(self) -> bool:
        """Liveness check (never touches the writer queue)."""
        return bool(self.request("ping").get("pong"))

    def info(self) -> Dict[str, Any]:
        """Server/database status (mode, epoch, relations, halted)."""
        return self.request("info")

    def metrics(self) -> Dict[str, Any]:
        """Full metrics report of the server's database stack."""
        return self.request("metrics")["metrics"]

    def begin(self) -> int:
        """Open a transaction owned by this connection; returns its id."""
        return int(self.request("begin")["txn"])

    def commit(self, txn: int) -> int:
        """Commit; returns the commit time."""
        return int(self.request("commit", txn=txn)["commit_time"])

    def abort(self, txn: int) -> None:
        """Roll back."""
        self.request("abort", txn=txn)

    def create_relation(self, name: str,
                        fields: List[Tuple[str, str]],
                        key: List[str],
                        use_tsb: Optional[bool] = None) -> None:
        """Create a relation; ``fields`` are (name, type-string) pairs
        using the :class:`~repro.common.codec.FieldType` values."""
        self.request("create_relation", name=name,
                     fields=[list(pair) for pair in fields],
                     key=list(key), use_tsb=use_tsb)

    def insert(self, txn: int, relation: str,
               row: Dict[str, Any]) -> None:
        """Insert a row inside a transaction."""
        self.request("insert", txn=txn, relation=relation,
                     row=wire_encode(row))

    def update(self, txn: int, relation: str,
               row: Dict[str, Any]) -> None:
        """Write a new version of an existing row."""
        self.request("update", txn=txn, relation=relation,
                     row=wire_encode(row))

    def delete(self, txn: int, relation: str,
               key: Tuple[Any, ...]) -> None:
        """Logically delete a row."""
        self.request("delete", txn=txn, relation=relation,
                     key=wire_encode(list(key)))

    def get(self, relation: str, key: Tuple[Any, ...],
            txn: Optional[int] = None,
            at: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Read a row, current or as of a past time."""
        row = self.request("get", relation=relation,
                           key=wire_encode(list(key)), txn=txn,
                           at=at)["row"]
        return wire_decode(row) if row is not None else None

    def scan(self, relation: str, lo: Optional[Tuple[Any, ...]] = None,
             hi: Optional[Tuple[Any, ...]] = None,
             txn: Optional[int] = None, at: Optional[int] = None
             ) -> List[Tuple[Tuple[Any, ...], Dict[str, Any]]]:
        """Range scan; returns (key tuple, row) pairs."""
        rows = self.request(
            "scan", relation=relation,
            lo=wire_encode(list(lo)) if lo is not None else None,
            hi=wire_encode(list(hi)) if hi is not None else None,
            txn=txn, at=at)["rows"]
        return [(wire_decode(key, as_key=True), wire_decode(row))
                for key, row in rows]

    def crash_recover(self) -> Dict[str, Any]:
        """Simulated crash + recovery (servers started with
        ``allow_crash_ops`` only).  Every open transaction dies."""
        return self.request("crash_recover")
