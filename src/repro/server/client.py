"""Thin synchronous client for the compliance server.

One socket, one outstanding request at a time — the shape the tests and
the bench need.  Failures come back as
:class:`~repro.common.errors.ServerRequestError` carrying the protocol
error code and the server's retryable verdict, so callers can write
honest retry loops::

    try:
        client.insert(txn, "accounts", row)
    except ServerRequestError as exc:
        if exc.code == CONFLICT:
            ...  # txn is gone (server aborted it); begin a fresh one
        elif exc.retryable:
            ...  # BUSY: back off and resend the same request
        else:
            raise
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from ..common.codec import Schema
from ..common.errors import (ServerProtocolError, ServerRequestError,
                             ServerTimeoutError)
from .protocol import (BUSY, RETRYABLE_CODES, recv_frame, send_frame,
                       wire_decode, wire_encode)

#: sentinel distinguishing "no per-request override" from an explicit
#: ``None`` (= wait forever)
_UNSET = object()


def unwrap_response(response: Dict[str, Any]) -> Dict[str, Any]:
    """Result object of an ``ok`` response, or the mapped
    :class:`ServerRequestError` of an error response.  Shared by the
    blocking client's request path and the pipelined client's waiters.
    """
    if response.get("ok"):
        result = response.get("result")
        return result if isinstance(result, dict) else {}
    code = str(response.get("error", "ERROR"))
    # the server's verdict wins; a response missing the field (or an
    # older server) falls back to the protocol's canonical code set,
    # so exc.retryable and RETRYABLE_CODES can never disagree
    retryable = bool(response.get("retryable",
                                  code in RETRYABLE_CODES))
    raise ServerRequestError(code, str(response.get("message", "")),
                             retryable=retryable)


class _RemoteClock:
    """``.now()`` shim over the server's simulated clock.

    Lets clock-consuming code (the TPC-C loader and driver write
    ``db.clock.now()`` into rows) run unchanged against a remote
    backend.  Each call is one round-trip; values are data payload, not
    ordering authority — the server's clock stays the only ticker.
    """

    def __init__(self, client: "ServerClient"):
        self._client = client

    def now(self) -> int:
        return self._client.now()


class _ClientTxnContext:
    """``with client.transaction() as txn:`` over a wire handle.

    Mirrors the engine's context semantics: commit on success, abort on
    exception.  A handle the server already resolved (e.g. a conflict
    abort performed server-side) surfaces as ``TXN_STATE`` on the final
    commit/abort — that means "already resolved", so it is swallowed,
    matching the in-process context's no-op on a resolved transaction.
    """

    def __init__(self, client: "ServerClient"):
        self._client = client
        self.txn: Optional[int] = None
        self.commit_time: Optional[int] = None

    def __enter__(self) -> int:
        self.txn = self._client.begin()
        return self.txn

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                self.commit_time = self._client.commit(self.txn)
            else:
                self._client.abort(self.txn)
        except ServerRequestError as err:
            if err.code != "TXN_STATE":
                raise
        return False


class ServerClient:
    """Blocking frame-protocol client (context manager)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 request_timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 1
        #: default per-request receive timeout (None = wait forever);
        #: override per call with ``request(op, _timeout=...)``
        self.request_timeout = request_timeout
        #: ``db.clock.now()`` compatibility surface (see _RemoteClock)
        self.clock = _RemoteClock(self)

    # -- plumbing ------------------------------------------------------------

    def request(self, op: str, _timeout: Any = _UNSET,
                **args: Any) -> Dict[str, Any]:
        """One round-trip; returns the result object or raises
        :class:`ServerRequestError` with the server's code.

        ``_timeout`` overrides the client's ``request_timeout`` for this
        request only (``None`` = wait forever).  A hung server raises
        :class:`ServerTimeoutError` instead of blocking the caller; the
        connection is closed, because the byte stream no longer lines up
        with the request the caller thinks is next.
        """
        timeout = self.request_timeout if _timeout is _UNSET \
            else _timeout
        request_id = self._next_id
        self._next_id += 1
        send_frame(self._sock, {"op": op, "args": args,
                                "id": request_id})
        try:
            self._sock.settimeout(timeout)
            response = recv_frame(self._sock)
        except (TimeoutError, socket.timeout):
            self.close()
            raise ServerTimeoutError(op, timeout) from None
        if response is None:
            raise ServerProtocolError(
                "server closed the connection mid-request")
        if response.get("id") != request_id:
            raise ServerProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        return unwrap_response(response)

    def request_with_retry(self, op: str, *, attempts: int = 5,
                           backoff: float = 0.01,
                           max_backoff: float = 0.5,
                           retry_conflicts: bool = False,
                           **args: Any) -> Dict[str, Any]:
        """``request`` with bounded exponential backoff on ``BUSY``.

        ``BUSY`` is pure backpressure — the request never executed, so
        resending it verbatim is always safe.  ``CONFLICT`` is different:
        the server already aborted the transaction, so a verbatim resend
        is only correct for requests not bound to a transaction handle;
        opt in with ``retry_conflicts=True`` when that holds (the shard
        coordinator does, for ``begin``).  All other errors, and the
        final exhausted attempt, propagate unchanged.
        """
        retry_codes = {BUSY} | (RETRYABLE_CODES if retry_conflicts
                                else frozenset())
        delay = backoff
        for attempt in range(attempts):
            try:
                return self.request(op, **args)
            except ServerRequestError as exc:
                last_try = attempt == attempts - 1
                if last_try or not exc.retryable or \
                        exc.code not in retry_codes:
                    raise
            time.sleep(delay)
            delay = min(delay * 2, max_backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close the connection (open transactions are aborted
        server-side)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- convenience ops -----------------------------------------------------

    def ping(self) -> bool:
        """Liveness check (never touches the writer queue)."""
        return bool(self.request("ping").get("pong"))

    def info(self) -> Dict[str, Any]:
        """Server/database status (mode, epoch, relations, halted)."""
        return self.request("info")

    def metrics(self) -> Dict[str, Any]:
        """Full metrics report of the server's database stack."""
        return self.request("metrics")["metrics"]

    def begin(self) -> int:
        """Open a transaction owned by this connection; returns its id."""
        return int(self.request("begin")["txn"])

    def commit(self, txn: int) -> int:
        """Commit; returns the commit time."""
        return int(self.request("commit", txn=txn)["commit_time"])

    def abort(self, txn: int) -> None:
        """Roll back."""
        self.request("abort", txn=txn)

    def prepare(self, txn: int, gid: str) -> None:
        """2PC phase one: durably prepare under the coordinator's gid."""
        self.request("prepare", txn=txn, gid=gid)

    def transaction(self) -> _ClientTxnContext:
        """Context manager: commit on success, abort on exception."""
        return _ClientTxnContext(self)

    @property
    def halted(self) -> bool:
        """Whether the server's database is compliance-halted."""
        return bool(self.request("info").get("halted"))

    def now(self) -> int:
        """The server's current simulated time."""
        return int(self.request("now")["now"])

    def create_relation(self, schema: Schema, *args,
                        use_tsb: Optional[bool] = None,
                        fields: Optional[List[Tuple[str, str]]] = None,
                        key: Optional[List[str]] = None) -> None:
        """Create a relation from a :class:`Schema`.

        The historical ``create_relation(name, fields, key)`` spelling
        is still accepted (with a DeprecationWarning); see
        :func:`repro.api.coerce_relation_args`."""
        from ..api import coerce_relation_args
        schema, use_tsb = coerce_relation_args(schema, args, fields, key,
                                               use_tsb)
        self.request("create_relation", name=schema.name,
                     fields=[[f.name, f.ftype.value]
                             for f in schema.fields],
                     key=list(schema.key_fields), use_tsb=use_tsb)

    def insert(self, txn: int, relation: str,
               row: Dict[str, Any]) -> None:
        """Insert a row inside a transaction."""
        self.request("insert", txn=txn, relation=relation,
                     row=wire_encode(row))

    def insert_many(self, txn: int, relation: str,
                    rows: List[Dict[str, Any]]) -> None:
        """Insert a batch of rows into one relation (one round-trip)."""
        self.request("insert_many", txn=txn, relation=relation,
                     rows=[wire_encode(row) for row in rows])

    def update(self, txn: int, relation: str,
               row: Dict[str, Any]) -> None:
        """Write a new version of an existing row."""
        self.request("update", txn=txn, relation=relation,
                     row=wire_encode(row))

    def delete(self, txn: int, relation: str,
               key: Tuple[Any, ...]) -> None:
        """Logically delete a row."""
        self.request("delete", txn=txn, relation=relation,
                     key=wire_encode(list(key)))

    def get(self, relation: str, key: Tuple[Any, ...],
            txn: Optional[int] = None,
            at: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Read a row, current or as of a past time."""
        row = self.request("get", relation=relation,
                           key=wire_encode(list(key)), txn=txn,
                           at=at)["row"]
        return wire_decode(row) if row is not None else None

    def scan(self, relation: str, lo: Optional[Tuple[Any, ...]] = None,
             hi: Optional[Tuple[Any, ...]] = None,
             txn: Optional[int] = None, at: Optional[int] = None
             ) -> List[Tuple[Tuple[Any, ...], Dict[str, Any]]]:
        """Range scan; returns (key tuple, row) pairs."""
        rows = self.request(
            "scan", relation=relation,
            lo=wire_encode(list(lo)) if lo is not None else None,
            hi=wire_encode(list(hi)) if hi is not None else None,
            txn=txn, at=at)["rows"]
        return [(wire_decode(key, as_key=True), wire_decode(row))
                for key, row in rows]

    def checkpoint(self) -> None:
        """Apply pending lazy stamps and flush WAL + dirty pages."""
        self.request("checkpoint")

    def maintenance(self, force: bool = False) -> bool:
        """Run regret-interval duties if due; True when work was done."""
        return bool(self.request("maintenance", force=force)["ran"])

    def audit(self, rotate: bool = True,
              workers: Optional[int] = None) -> "AuditReport":
        """Run a compliance audit on the server; returns the report.

        The server runs the (optionally partitioned) auditor on its
        writer thread and ships the report's decision-relevant content
        back; findings and digests round-trip exactly, so a shard
        coordinator can fold the digest into a cross-shard attestation.
        """
        from ..core.audit import AuditReport, Finding
        data = self.request("audit", rotate=rotate,
                            workers=workers)["report"]
        report = AuditReport(epoch=int(data["epoch"]))
        for phase, code, detail, pgno in data["findings"]:
            report.findings.append(Finding(str(code), str(detail), pgno,
                                           phase=str(phase)))
        report.ok = bool(data["ok"])
        for name in ("snapshot_tuples", "final_tuples", "log_records",
                     "new_tuples", "read_hashes_checked", "pages_scanned",
                     "shredded_verified", "migrations_verified",
                     "workers", "tasks_total", "tasks_resumed"):
            if name in data:
                setattr(report, name, int(data[name]))
        report.expected_digest = str(data["expected_digest"])
        report.final_digest = str(data["final_digest"])
        new_epoch = data.get("new_epoch")
        report.new_epoch = int(new_epoch) if new_epoch is not None \
            else None
        return report

    def crash_recover(self, commits: Optional[List[str]] = None
                      ) -> Dict[str, Any]:
        """Simulated crash + recovery (servers started with
        ``allow_crash_ops`` only).  Every open transaction dies.

        ``commits`` is the 2PC coordinator's journaled committed-gid
        list, used to resolve any in-doubt prepared transaction found
        in the WAL (presumed abort for gids not listed)."""
        return self.request("crash_recover", commits=commits)
