"""Wire protocol for the multi-client compliance server.

Frame format — length-prefixed JSON, symmetric in both directions::

    +----------------+---------------------------+
    | length (4B LE) | UTF-8 JSON object (bytes) |
    +----------------+---------------------------+

The length covers only the JSON payload.  Frames above
:data:`MAX_FRAME_BYTES` are rejected before any allocation, so a
corrupt or hostile length prefix cannot balloon server memory.

Requests are ``{"op": <name>, "args": {...}, "id": <opaque>}`` — ``id``
is optional and echoed verbatim on the response so clients may pipeline.
Responses are either::

    {"ok": true,  "result": {...}, "id": ...}
    {"ok": false, "error": CODE, "message": str, "retryable": bool,
     "id": ...}

Error codes (see :func:`map_exception`):

==============  ============================================  =========
code            meaning                                       retryable
==============  ============================================  =========
``CONFLICT``    strict-2PL lock conflict / first-writer-wins  yes
``BUSY``        admission control: writer queue at depth cap  yes
``SHUTDOWN``    server draining                               no
``HALTED``      compliance halt — processing stopped          no
``TXN_STATE``   unknown/resolved transaction handle           no
``NOT_FOUND``   relation/key/file absent                      no
``EXISTS``      duplicate key / relation exists               no
``BAD_REQUEST`` malformed op, args, or value encoding         no
``ERROR``       any other library error                       no
==============  ============================================  =========

JSON cannot carry ``bytes`` or distinguish tuples from lists, so values
cross the wire through :func:`wire_encode` / :func:`wire_decode`:
``bytes`` become ``{"__bytes__": "<hex>"}`` and key tuples travel as
JSON arrays (decoded back to tuples at the service boundary).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from ..common.errors import (ComplianceHaltError, ComplianceLogError,
                             DuplicateKeyError, KeyNotFoundError,
                             LockConflictError, RelationNotFoundError,
                             ReproError, ServerBusyError,
                             ServerProtocolError, ServerShutdownError,
                             TransactionAborted, TransactionStateError,
                             WormFileExistsError, WormFileNotFoundError)

#: hard cap on one frame's JSON payload (requests and responses alike)
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LEN = struct.Struct("<I")
_BYTES_TAG = "__bytes__"

# -- error codes ------------------------------------------------------------

CONFLICT = "CONFLICT"
BUSY = "BUSY"
SHUTDOWN = "SHUTDOWN"
HALTED = "HALTED"
TXN_STATE = "TXN_STATE"
NOT_FOUND = "NOT_FOUND"
EXISTS = "EXISTS"
BAD_REQUEST = "BAD_REQUEST"
ERROR = "ERROR"

#: codes a client may retry (after aborting the transaction for
#: ``CONFLICT`` — see DESIGN.md §11)
RETRYABLE_CODES = frozenset({CONFLICT, BUSY})


def map_exception(exc: BaseException) -> tuple[str, bool]:
    """(error code, retryable) for a library exception."""
    if isinstance(exc, (LockConflictError, TransactionAborted)):
        return CONFLICT, True
    if isinstance(exc, ServerBusyError):
        return BUSY, True
    if isinstance(exc, ServerShutdownError):
        return SHUTDOWN, False
    if isinstance(exc, (ComplianceHaltError, ComplianceLogError)):
        return HALTED, False
    if isinstance(exc, TransactionStateError):
        return TXN_STATE, False
    if isinstance(exc, (KeyNotFoundError, RelationNotFoundError,
                        WormFileNotFoundError)):
        return NOT_FOUND, False
    if isinstance(exc, (DuplicateKeyError, WormFileExistsError)):
        return EXISTS, False
    if isinstance(exc, ReproError):
        return ERROR, False
    return BAD_REQUEST, False


# -- value encoding ---------------------------------------------------------


def wire_encode(value: Any) -> Any:
    """JSON-safe view of a Python value (bytes tagged, tuples listed)."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {_BYTES_TAG: bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [wire_encode(item) for item in value]
    if isinstance(value, dict):
        return {key: wire_encode(item) for key, item in value.items()}
    return value


def wire_decode(value: Any, *, as_key: bool = False) -> Any:
    """Inverse of :func:`wire_encode`.

    ``as_key=True`` turns the top-level list into a tuple (primary keys
    are tuples throughout the engine).
    """
    if isinstance(value, dict):
        if set(value) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        return {key: wire_decode(item) for key, item in value.items()}
    if isinstance(value, list):
        decoded = [wire_decode(item) for item in value]
        return tuple(decoded) if as_key else decoded
    return value


# -- framing ----------------------------------------------------------------


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame for a request/response object."""
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_FRAME_BYTES:
        raise ServerProtocolError(
            f"frame of {len(raw)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(raw)) + raw


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """``count`` bytes from the socket; None on EOF before the first
    byte, :class:`ServerProtocolError` on EOF mid-read."""
    parts = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == count:
                return None
            raise ServerProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes)")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServerProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    raw = _recv_exact(sock, length) if length else b""
    if raw is None:
        raise ServerProtocolError("connection closed mid-frame")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServerProtocolError(f"malformed frame payload: {exc}") \
            from exc
    if not isinstance(payload, dict):
        raise ServerProtocolError("frame payload must be a JSON object")
    return payload


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialise and send one frame."""
    sock.sendall(encode_frame(payload))
