"""Pipelined client: many in-flight requests multiplexed on one socket.

The wire protocol has carried an opaque ``id`` on every request since
PR 7, echoed verbatim on the response exactly so that clients *may*
pipeline.  :class:`PipelinedClient` is the client that finally does:

* ``request`` assigns a fresh id, registers a per-request
  :class:`~concurrent.futures.Future`, sends the frame (sends are
  serialised by a lock so frames never interleave), and waits on the
  future — so any number of threads can have requests in flight on the
  same connection simultaneously;
* one **reader thread** owns the receive side of the socket, resolves
  each arriving response against the pending-future table by id, and
  discards responses whose request was abandoned by a timeout;
* a per-request **timeout** bounds the wait on the future, not the
  socket — a timed-out request raises
  :class:`~repro.common.errors.ServerTimeoutError` but the connection
  stays usable (unlike the blocking client, where a timeout
  desynchronises the byte stream and forces a close), because the late
  response is matched by id and dropped;
* **connection death** (EOF, protocol damage, socket error, or
  ``close``) fails every in-flight future with
  :class:`~repro.common.errors.ServerProtocolError` and poisons the
  client: later requests fail immediately instead of hanging.

The server handles one frame at a time per connection, so pipelined
requests on one socket execute in send order and their responses arrive
in the same order; what pipelining buys is (a) thread-safety — the shard
coordinator's fan-out workers can share one connection per shard without
a socket-per-thread — and (b) latency overlap: N requests cost one
round-trip plus N service times instead of N full round-trips.

All convenience operations (``begin``/``insert``/``scan``/``audit``/…)
are inherited from :class:`~repro.server.client.ServerClient` — they
route through :meth:`request` and therefore pipeline transparently.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, Optional

from ..common.errors import (ServerProtocolError, ServerRequestError,
                             ServerTimeoutError)
from .client import ServerClient, _UNSET, unwrap_response
from .protocol import recv_frame, send_frame


class PipelinedClient(ServerClient):
    """Thread-safe, multiplexing variant of :class:`ServerClient`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 request_timeout: Optional[float] = 30.0):
        super().__init__(host, port, timeout=timeout,
                         request_timeout=request_timeout)
        # the reader blocks in recv indefinitely; request deadlines are
        # enforced on the per-request futures instead of the socket
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._table_lock = threading.Lock()
        self._pending: Dict[int, "Future[Dict[str, Any]]"] = {}
        self._dead: Optional[BaseException] = None
        self._closing = False
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-pipeline-reader",
            daemon=True)
        self._reader.start()

    # -- plumbing ------------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Requests currently awaiting a response."""
        with self._table_lock:
            return len(self._pending)

    def request(self, op: str, _timeout: Any = _UNSET,
                **args: Any) -> Dict[str, Any]:
        """Send one request and wait for *its* response (by id).

        Safe to call from any number of threads concurrently.  On
        timeout the request is abandoned (its late response will be
        discarded by the reader) and the connection remains usable.
        """
        timeout = self.request_timeout if _timeout is _UNSET \
            else _timeout
        future: "Future[Dict[str, Any]]" = Future()
        with self._table_lock:
            if self._dead is not None:
                raise ServerProtocolError(
                    f"pipelined connection is closed: {self._dead}"
                ) from self._dead
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
        try:
            with self._send_lock:
                send_frame(self._sock, {"op": op, "args": args,
                                        "id": request_id})
        except (OSError, ServerProtocolError) as exc:
            with self._table_lock:
                self._pending.pop(request_id, None)
            self._fail_inflight(exc)
            raise ServerProtocolError(
                f"pipelined send failed: {exc}") from exc
        try:
            response = future.result(timeout=timeout)
        except FutureTimeoutError:
            with self._table_lock:
                self._pending.pop(request_id, None)
            raise ServerTimeoutError(op, timeout) from None
        return unwrap_response(response)

    # -- reader thread -------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                response = recv_frame(self._sock)
                if response is None:
                    raise ServerProtocolError(
                        "server closed the connection")
                request_id = response.get("id")
                with self._table_lock:
                    future = self._pending.pop(request_id, None)
                if future is not None:
                    future.set_result(response)
                # unmatched id: the request timed out and was
                # abandoned — the late response is dropped here
        except BaseException as exc:
            self._fail_inflight(exc)

    def _fail_inflight(self, cause: BaseException) -> None:
        """Poison the client and fail every in-flight future."""
        if isinstance(cause, ServerProtocolError):
            failure: BaseException = cause
        elif self._closing and isinstance(cause, OSError):
            failure = ServerProtocolError("client closed the connection")
        else:
            failure = ServerProtocolError(
                f"pipelined connection died: {cause!r}")
        with self._table_lock:
            if self._dead is None:
                self._dead = failure
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            # a future may have been resolved by a racing reader pass;
            # set_exception on a done future raises — guard with the
            # public state check
            if not future.done():
                try:
                    future.set_exception(failure)
                except Exception:  # pragma: no cover - benign race
                    pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the socket; in-flight requests fail, the reader exits."""
        self._closing = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        super().close()
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=5)

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["PipelinedClient", "ServerRequestError"]
