"""Multi-client network front-end for the compliant database.

See DESIGN.md §11: a length-prefixed JSON frame protocol, per-connection
sessions owning their transactions, a single-writer executor serialising
every database touch, queue-depth admission control with explicit
``BUSY`` backpressure, and graceful drain on shutdown.
"""

from .client import ServerClient, unwrap_response
from .frontend import ComplianceServer, ServerConfig
from .pipeline import PipelinedClient
from .protocol import (MAX_FRAME_BYTES, RETRYABLE_CODES, map_exception,
                       recv_frame, send_frame, wire_decode, wire_encode)
from .service import (ComplianceService, Session, SingleWriterExecutor,
                      replay_history)

__all__ = [
    "ComplianceServer",
    "ComplianceService",
    "MAX_FRAME_BYTES",
    "PipelinedClient",
    "RETRYABLE_CODES",
    "ServerClient",
    "ServerConfig",
    "Session",
    "SingleWriterExecutor",
    "map_exception",
    "recv_frame",
    "replay_history",
    "send_frame",
    "unwrap_response",
    "wire_decode",
    "wire_encode",
]
