"""TCP front-end: sockets, sessions, backpressure, graceful drain.

One accept thread plus one thread per connection.  Connection threads
only parse frames and marshal requests into the
:class:`~repro.server.service.ComplianceService`; every database touch
happens on the service's single writer thread, so the engine below never
sees concurrency.  Admission control lives in the service's executor —
when the writer queue is at its depth cap the connection thread gets a
:class:`~repro.common.errors.ServerBusyError` immediately and answers
``BUSY`` (retryable) instead of queueing, which bounds both memory and
tail latency under overload.

Shutdown is a drain: the listener closes, in-flight requests finish,
every session's open transactions are aborted (their locks would
otherwise leak), and only then does the writer thread stop.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ServerProtocolError, ServerShutdownError
from ..obs import DEFAULT_LATENCY_BUCKETS, Observability
from .protocol import (BAD_REQUEST, map_exception, recv_frame,
                       send_frame)
from .service import ComplianceService, Session


@dataclass
class ServerConfig:
    """Tunables for one :class:`ComplianceServer` instance."""

    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound port is ``server.port``)
    port: int = 0
    #: admission-control cap on queued + executing requests
    max_queue_depth: int = 64
    #: seconds to wait for connection threads during shutdown
    drain_timeout: float = 30.0
    #: expose the ``crash_recover`` op (test/bench harnesses only)
    allow_crash_ops: bool = False
    #: journal successful ops for serial replay / audit equivalence
    record_history: bool = False


class ComplianceServer:
    """Serve a CompliantDB to many clients over the frame protocol."""

    def __init__(self, db: Any, config: Optional[ServerConfig] = None,
                 obs: Optional[Observability] = None):
        self.config = config if config is not None else ServerConfig()
        self.obs = obs if obs is not None else db.obs
        self.service = ComplianceService(
            db, max_queue_depth=self.config.max_queue_depth,
            record_history=self.config.record_history,
            allow_crash_ops=self.config.allow_crash_ops,
            obs=self.obs)
        self._registry = self.obs.registry
        #: serialises registry access — connection threads race on the
        #: label-children dicts and on counter increments otherwise
        self._metrics_lock = threading.Lock()
        self._c_connections = self._registry.counter(
            "server_connections_total", help="connections accepted")
        self._g_sessions = self._registry.gauge(
            "server_sessions_active", help="connected client sessions")
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._conns: List[Tuple[socket.socket, threading.Thread]] = []
        self._draining = False
        self.port: int = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ComplianceServer":
        """Bind, listen, and start accepting (returns self)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self.service.executor.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests,
        abort orphaned transactions, stop the writer thread."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            conns = list(self._conns)
        if self._listener is not None:
            # close() alone never wakes a thread blocked in accept()
            # on Linux; shutdown() interrupts it with an OSError (and
            # itself raises EINVAL on an unconnected listener — fine)
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=self.config.drain_timeout)
        # nudge connection threads out of recv(); in-flight requests
        # already inside _handle still complete before the close lands
        for sock, _ in conns:
            try:
                sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        for _, thread in conns:
            thread.join(timeout=self.config.drain_timeout)
        self.service.drain_sessions()
        self.service.executor.stop(drain=True)

    def __enter__(self) -> "ComplianceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) clients should connect to."""
        return (self.config.host, self.port)

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, _peer = self._listener.accept()
            except OSError:  # listener closed: drain has begun
                return
            with self._lock:
                if self._draining:
                    sock.close()
                    return
                with self._metrics_lock:
                    self._c_connections.inc()
                thread = threading.Thread(
                    target=self._serve_connection, args=(sock,),
                    name="repro-server-conn", daemon=True)
                self._conns.append((sock, thread))
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        session = self.service.open_session()
        with self._metrics_lock:
            self._g_sessions.set(self.service.session_count)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_frame(sock)
                except ServerProtocolError as exc:
                    # protocol damage is unrecoverable on a byte
                    # stream: answer if possible, then hang up
                    self._try_send(sock, self._error_response(
                        None, exc))
                    return
                if request is None:  # clean EOF
                    return
                response = self._handle(session, request)
                if not self._try_send(sock, response):
                    return
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            with self._lock:
                self._conns = [(s, t) for s, t in self._conns
                               if s is not sock]
            self.service.close_session(session)
            with self._metrics_lock:
                self._g_sessions.set(self.service.session_count)

    def _handle(self, session: Session,
                request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        if not isinstance(op, str):
            self._count_request("?")
            self._count_error(BAD_REQUEST)
            return {"ok": False, "error": BAD_REQUEST,
                    "message": "request needs a string 'op'",
                    "retryable": False, "id": request_id}
        args = request.get("args") or {}
        self._count_request(op)
        start = time.perf_counter()
        try:
            if self._draining:
                raise ServerShutdownError("server is draining")
            if not isinstance(args, dict):
                raise ServerProtocolError("'args' must be an object")
            result = self.service.execute(session, op, args)
            return {"ok": True, "result": result, "id": request_id}
        except BaseException as exc:
            return self._error_response(request_id, exc)
        finally:
            self._observe_latency(op, time.perf_counter() - start)

    def _error_response(self, request_id: Any,
                        exc: BaseException) -> Dict[str, Any]:
        if isinstance(exc, (KeyError, TypeError, ValueError)):
            code, retryable = BAD_REQUEST, False
            message = f"malformed request: {exc!r}"
        else:
            code, retryable = map_exception(exc)
            message = str(exc) or exc.__class__.__name__
        self._count_error(code)
        return {"ok": False, "error": code, "message": message,
                "retryable": retryable, "id": request_id}

    # -- metrics (connection threads: registry access must be guarded) ------

    def _count_request(self, op: str) -> None:
        with self._metrics_lock:
            self._registry.counter(
                "server_requests_total", help="requests received",
                op=op).inc()

    def _count_error(self, code: str) -> None:
        with self._metrics_lock:
            self._registry.counter(
                "server_errors_total", help="error responses sent",
                code=code).inc()

    def _observe_latency(self, op: str, seconds: float) -> None:
        with self._metrics_lock:
            self._registry.histogram(
                "server_request_seconds",
                buckets=DEFAULT_LATENCY_BUCKETS,
                help="request service time (receipt to response)",
                op=op).observe(seconds)

    @staticmethod
    def _try_send(sock: socket.socket,
                  payload: Dict[str, Any]) -> bool:
        try:
            send_frame(sock, payload)
            return True
        except OSError:
            return False
