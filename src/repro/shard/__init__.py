"""Sharded compliant database: routing, 2PC coordination, merged audit.

The shard layer composes N complete compliant databases — in-process
:class:`~repro.core.database.CompliantDB` instances or remote
:class:`~repro.server.client.ServerClient` connections, interchangeably
via the :class:`~repro.api.ComplianceBackend` protocol — into one
horizontally partitioned database:

* :mod:`~repro.shard.router` — deterministic key→shard placement
  (uniform hash, or TPC-C's natural by-warehouse partitioning);
* :mod:`~repro.shard.journal` — the coordinator's fsync'd
  presumed-abort commit-decision journal;
* :mod:`~repro.shard.coordinator` — :class:`ShardedDB`: 1PC fast path
  for single-shard transactions, two-phase commit for cross-shard ones,
  deterministic in-doubt resolution on recovery;
* :mod:`~repro.shard.dist_audit` — :class:`DistributedAuditor`:
  per-shard audits folded by ADD-HASH union into one signed cross-shard
  attestation;
* :mod:`~repro.shard.fanout` — :class:`FanoutExecutor`: the bounded
  per-shard fan-out pool (serial-equivalent semantics, explicit
  confinement rules) behind the coordinator's and auditor's
  concurrency, with the clock-hazard worker resolution rule.
"""

from .dist_audit import DistributedAuditor, DistributedAuditReport
from .coordinator import DistributedTxn, ShardedDB
from .fanout import FanoutExecutor, Outcome, resolve_workers
from .journal import DecisionJournal
from .router import (ROUTERS, HashRouter, ShardRouter, WarehouseRouter,
                     make_router)

__all__ = [
    "DecisionJournal",
    "DistributedAuditReport",
    "DistributedAuditor",
    "DistributedTxn",
    "FanoutExecutor",
    "HashRouter",
    "Outcome",
    "ROUTERS",
    "ShardRouter",
    "ShardedDB",
    "WarehouseRouter",
    "make_router",
    "resolve_workers",
]
