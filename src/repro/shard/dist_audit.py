"""Cross-shard compliance auditing with one combined attestation.

Each shard is a complete compliant database — its own WORM box,
compliance log, snapshots, and epoch counter — so each shard is audited
independently (reusing the serial or partitioned auditor, or the
server-side audit op for remote shards).  The cross-shard step is pure
ADD-HASH algebra: the multiset hash is commutative and mergeable, so

    combined = shard_0.digest ∪ shard_1.digest ∪ … ∪ shard_{N-1}.digest

is the ADD-HASH of the union of all shards' tuple multisets, computed
without rehashing a single tuple (``AddHash.from_digest`` resumes each
shard's fold, :meth:`~repro.crypto.hashes.AddHash.union` merges them).
The auditor then signs a canonical serialization of the per-shard
verdicts plus the combined digests, producing one attestation that
covers the entire sharded database: any shard's tampering flips its own
``Df = Ds ∪ L`` check, which flips the combined verdict and names the
offending shard in :meth:`DistributedAuditReport.tampered_shards`.

Shards are audited **concurrently** when that is safe (each remote
shard audits inside its own server; in-process shards need their own
clocks — see :func:`~repro.shard.fanout.resolve_workers`).  The fold
below is order-fixed (shard 0 ∪ shard 1 ∪ …) and the canonical message
lists shards in index order, so the signed attestation is byte-identical
no matter how many workers audited, or in what order they finished.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.audit import AuditReport, Auditor
from ..crypto.hashes import AddHash
from ..crypto.signatures import AuditorKey
from ..obs import Observability
from .fanout import FanoutExecutor, resolve_workers


@dataclass
class DistributedAuditReport:
    """Per-shard audit reports folded into one signed attestation."""

    ok: bool
    shard_reports: List[AuditReport]
    #: ADD-HASH union of every shard's two sides of ``Df = Ds ∪ L``
    combined_expected_digest: str
    combined_final_digest: str
    final_tuples: int
    #: canonical JSON the attestation signs
    message: bytes
    attestation: bytes
    signer: str
    shard_seconds: List[float] = field(default_factory=list)

    @property
    def shards(self) -> int:
        return len(self.shard_reports)

    @property
    def epochs(self) -> List[int]:
        """Audited epoch of each shard, in shard order."""
        return [report.epoch for report in self.shard_reports]

    def tampered_shards(self) -> List[int]:
        """Indices of shards whose own audit found violations."""
        return [idx for idx, report in enumerate(self.shard_reports)
                if not report.ok]

    def verify(self, key: AuditorKey) -> bool:
        """Check the attestation signature over the canonical message."""
        return key.verify(self.message, self.attestation)

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        status = "COMPLIANT" if self.ok else (
            "TAMPERING DETECTED (shards "
            f"{self.tampered_shards()})")
        lines = [f"Distributed audit over {self.shards} shard(s): "
                 f"{status}",
                 f"  combined final tuples: {self.final_tuples}, "
                 f"combined digest: "
                 f"{self.combined_final_digest[:16]}…"]
        for idx, report in enumerate(self.shard_reports):
            verdict = "ok" if report.ok else \
                f"{len(report.findings)} finding(s)"
            lines.append(
                f"  shard {idx}: epoch {report.epoch}, "
                f"{report.final_tuples} tuples, {verdict}")
        return "\n".join(lines)


def _canonical_message(shard_reports: List[AuditReport],
                       combined_expected: str, combined_final: str,
                       ok: bool) -> bytes:
    """Deterministic bytes the attestation signs: per-shard verdicts,
    digests, and epochs, plus the combined digests and overall verdict.
    Canonical JSON (sorted keys, no whitespace variance) so any party
    holding the per-shard reports can re-derive and verify it."""
    payload = {
        "v": 1,
        "ok": ok,
        "combined_expected": combined_expected,
        "combined_final": combined_final,
        "shards": [
            {
                "epoch": report.epoch,
                "ok": report.ok,
                "expected_digest": report.expected_digest,
                "final_digest": report.final_digest,
                "final_tuples": report.final_tuples,
                "findings": len(report.findings),
            }
            for report in shard_reports
        ],
    }
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class DistributedAuditor:
    """Audit every shard, then fold digests into one attestation.

    ``source`` is a :class:`~repro.shard.coordinator.ShardedDB` or a
    plain backend list.  In-process shards are audited with the serial
    :class:`~repro.core.audit.Auditor` (or the partitioned
    :class:`~repro.core.parallel_audit.ParallelAuditor` when ``workers``
    is set); remote shards run their server-side audit op and ship the
    report back — digests round-trip exactly, so the fold is identical
    either way.
    """

    def __init__(self, source: Any,
                 key: Optional[AuditorKey] = None, *,
                 workers: Optional[int] = None,
                 fanout_workers: Optional[int] = None):
        backends = getattr(source, "backends", source)
        self.backends: List[Any] = list(backends)
        if key is None:
            key = getattr(source, "auditor_key", None) \
                or AuditorKey.generate()
        self.key = key
        self.workers = workers
        # cross-shard concurrency obeys the same clock-hazard rule as
        # the coordinator: epoch rotation ticks the shard's clock, so
        # in-process shards sharing one clock are audited serially
        self.fanout_workers = resolve_workers(
            fanout_workers, self.backends,
            self._shares_source_clock(source))
        self.obs: Observability = getattr(source, "obs", None) \
            or Observability()

    def _shares_source_clock(self, source: Any) -> bool:
        clock = getattr(source, "clock", None)
        if clock is None:
            return False
        return any(hasattr(b, "engine") and
                   getattr(b, "clock", None) is clock
                   for b in self.backends)

    def _audit_shard(self, backend: Any, rotate: bool) -> AuditReport:
        if hasattr(backend, "engine"):  # in-process CompliantDB
            if self.workers is not None:
                from ..core.parallel_audit import ParallelAuditor
                auditor: Auditor = ParallelAuditor(
                    backend, self.key, workers=self.workers)
            else:
                auditor = Auditor(backend, self.key)
            return auditor.audit(rotate=rotate)
        return backend.audit(rotate=rotate, workers=self.workers)

    def audit(self, rotate: bool = True) -> DistributedAuditReport:
        """Audit each shard (concurrently when safe); fold and sign.

        Per-shard wall timings are kept in ``shard_seconds`` (shard
        order); the digest fold and the canonical message are index-
        ordered, so the attestation bytes do not depend on how many
        workers ran or which shard finished first."""
        with FanoutExecutor(self.fanout_workers, obs=self.obs) as pool:
            outcomes = pool.map("audit", [
                (idx, lambda b=backend: self._audit_shard(b, rotate))
                for idx, backend in enumerate(self.backends)])
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        reports: List[AuditReport] = [o.value for o in outcomes]
        seconds: List[float] = [o.seconds for o in outcomes]
        expected = AddHash()
        final = AddHash()
        for report in reports:
            if report.expected_digest:
                expected = expected.union(AddHash.from_digest(
                    bytes.fromhex(report.expected_digest)))
            if report.final_digest:
                final = final.union(AddHash.from_digest(
                    bytes.fromhex(report.final_digest),
                    report.final_tuples))
        ok = all(report.ok for report in reports)
        message = _canonical_message(reports, expected.hexdigest(),
                                     final.hexdigest(), ok)
        return DistributedAuditReport(
            ok=ok,
            shard_reports=reports,
            combined_expected_digest=expected.hexdigest(),
            combined_final_digest=final.hexdigest(),
            final_tuples=final.count,
            message=message,
            attestation=self.key.sign(message),
            signer=self.key.name,
            shard_seconds=seconds,
        )
