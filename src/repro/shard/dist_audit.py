"""Cross-shard compliance auditing with one combined attestation.

Each shard is a complete compliant database — its own WORM box,
compliance log, snapshots, and epoch counter — so each shard is audited
independently (reusing the serial or partitioned auditor, or the
server-side audit op for remote shards).  The cross-shard step is pure
ADD-HASH algebra: the multiset hash is commutative and mergeable, so

    combined = shard_0.digest ∪ shard_1.digest ∪ … ∪ shard_{N-1}.digest

is the ADD-HASH of the union of all shards' tuple multisets, computed
without rehashing a single tuple (``AddHash.from_digest`` resumes each
shard's fold, :meth:`~repro.crypto.hashes.AddHash.union` merges them).
The auditor then signs a canonical serialization of the per-shard
verdicts plus the combined digests, producing one attestation that
covers the entire sharded database: any shard's tampering flips its own
``Df = Ds ∪ L`` check, which flips the combined verdict and names the
offending shard in :meth:`DistributedAuditReport.tampered_shards`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.audit import AuditReport, Auditor
from ..crypto.hashes import AddHash
from ..crypto.signatures import AuditorKey


@dataclass
class DistributedAuditReport:
    """Per-shard audit reports folded into one signed attestation."""

    ok: bool
    shard_reports: List[AuditReport]
    #: ADD-HASH union of every shard's two sides of ``Df = Ds ∪ L``
    combined_expected_digest: str
    combined_final_digest: str
    final_tuples: int
    #: canonical JSON the attestation signs
    message: bytes
    attestation: bytes
    signer: str
    shard_seconds: List[float] = field(default_factory=list)

    @property
    def shards(self) -> int:
        return len(self.shard_reports)

    @property
    def epochs(self) -> List[int]:
        """Audited epoch of each shard, in shard order."""
        return [report.epoch for report in self.shard_reports]

    def tampered_shards(self) -> List[int]:
        """Indices of shards whose own audit found violations."""
        return [idx for idx, report in enumerate(self.shard_reports)
                if not report.ok]

    def verify(self, key: AuditorKey) -> bool:
        """Check the attestation signature over the canonical message."""
        return key.verify(self.message, self.attestation)

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        status = "COMPLIANT" if self.ok else (
            "TAMPERING DETECTED (shards "
            f"{self.tampered_shards()})")
        lines = [f"Distributed audit over {self.shards} shard(s): "
                 f"{status}",
                 f"  combined final tuples: {self.final_tuples}, "
                 f"combined digest: "
                 f"{self.combined_final_digest[:16]}…"]
        for idx, report in enumerate(self.shard_reports):
            verdict = "ok" if report.ok else \
                f"{len(report.findings)} finding(s)"
            lines.append(
                f"  shard {idx}: epoch {report.epoch}, "
                f"{report.final_tuples} tuples, {verdict}")
        return "\n".join(lines)


def _canonical_message(shard_reports: List[AuditReport],
                       combined_expected: str, combined_final: str,
                       ok: bool) -> bytes:
    """Deterministic bytes the attestation signs: per-shard verdicts,
    digests, and epochs, plus the combined digests and overall verdict.
    Canonical JSON (sorted keys, no whitespace variance) so any party
    holding the per-shard reports can re-derive and verify it."""
    payload = {
        "v": 1,
        "ok": ok,
        "combined_expected": combined_expected,
        "combined_final": combined_final,
        "shards": [
            {
                "epoch": report.epoch,
                "ok": report.ok,
                "expected_digest": report.expected_digest,
                "final_digest": report.final_digest,
                "final_tuples": report.final_tuples,
                "findings": len(report.findings),
            }
            for report in shard_reports
        ],
    }
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class DistributedAuditor:
    """Audit every shard, then fold digests into one attestation.

    ``source`` is a :class:`~repro.shard.coordinator.ShardedDB` or a
    plain backend list.  In-process shards are audited with the serial
    :class:`~repro.core.audit.Auditor` (or the partitioned
    :class:`~repro.core.parallel_audit.ParallelAuditor` when ``workers``
    is set); remote shards run their server-side audit op and ship the
    report back — digests round-trip exactly, so the fold is identical
    either way.
    """

    def __init__(self, source: Any,
                 key: Optional[AuditorKey] = None, *,
                 workers: Optional[int] = None):
        backends = getattr(source, "backends", source)
        self.backends: List[Any] = list(backends)
        if key is None:
            key = getattr(source, "auditor_key", None) \
                or AuditorKey.generate()
        self.key = key
        self.workers = workers

    def _audit_shard(self, backend: Any, rotate: bool) -> AuditReport:
        if hasattr(backend, "engine"):  # in-process CompliantDB
            if self.workers is not None:
                from ..core.parallel_audit import ParallelAuditor
                auditor: Auditor = ParallelAuditor(
                    backend, self.key, workers=self.workers)
            else:
                auditor = Auditor(backend, self.key)
            return auditor.audit(rotate=rotate)
        return backend.audit(rotate=rotate, workers=self.workers)

    def audit(self, rotate: bool = True) -> DistributedAuditReport:
        """Audit each shard in turn; fold and sign the combined report."""
        reports: List[AuditReport] = []
        seconds: List[float] = []
        for backend in self.backends:
            started = time.monotonic()
            reports.append(self._audit_shard(backend, rotate))
            seconds.append(time.monotonic() - started)
        expected = AddHash()
        final = AddHash()
        for report in reports:
            if report.expected_digest:
                expected = expected.union(AddHash.from_digest(
                    bytes.fromhex(report.expected_digest)))
            if report.final_digest:
                final = final.union(AddHash.from_digest(
                    bytes.fromhex(report.final_digest),
                    report.final_tuples))
        ok = all(report.ok for report in reports)
        message = _canonical_message(reports, expected.hexdigest(),
                                     final.hexdigest(), ok)
        return DistributedAuditReport(
            ok=ok,
            shard_reports=reports,
            combined_expected_digest=expected.hexdigest(),
            combined_final_digest=final.hexdigest(),
            final_tuples=final.count,
            message=message,
            attestation=self.key.sign(message),
            signer=self.key.name,
            shard_seconds=seconds,
        )
