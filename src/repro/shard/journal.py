"""The 2PC coordinator's decision journal (presumed abort).

The journal is the coordinator's only durable state: an append-only
JSON-lines file recording **commit decisions only**.  Under presumed
abort, a prepared transaction whose gid is absent from the journal
aborts during recovery — so abort decisions need no I/O at all, and the
single fsync per cross-shard commit (after every participant prepared,
before any participant commits) is the entire durability cost of 2PC
coordination.

Each time the journal is opened it also appends an ``incarnation`` line.
Gids embed the incarnation number, which makes them globally unique
across coordinator restarts without coordination: incarnation ``k``'s
gids can never collide with incarnation ``k+1``'s, so a recovered
coordinator may immediately start new transactions while old in-doubt
ones are still being resolved.

A torn final line (the crash happened mid-append) is tolerated and
ignored: a torn commit decision means no participant was told to commit
yet, so presumed abort gives the correct outcome.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import FrozenSet, Set


class DecisionJournal:
    """Append-only, fsync'd commit-decision log for the coordinator."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self._committed: Set[str] = set()
        incarnation = 0
        if self.path.exists():
            for line in self.path.read_bytes().splitlines():
                try:
                    entry = json.loads(line)
                except ValueError:
                    # torn tail from a crash mid-append: presumed abort
                    continue
                if "incarnation" in entry:
                    incarnation = max(incarnation,
                                      int(entry["incarnation"]))
                elif entry.get("decision") == "commit":
                    self._committed.add(str(entry["gid"]))
        self.incarnation = incarnation + 1
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._append({"incarnation": self.incarnation})

    def _append(self, entry: dict) -> None:
        self._file.write(json.dumps(entry, sort_keys=True)
                         .encode("utf-8") + b"\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def log_commit(self, gid: str) -> None:
        """Durably record the COMMIT decision for ``gid``.

        Once this returns, the global transaction is committed no matter
        which processes die next: recovery finds the gid here and rolls
        every prepared participant forward.
        """
        self._append({"decision": "commit", "gid": gid})
        self._committed.add(gid)

    def committed_gids(self) -> FrozenSet[str]:
        """All gids ever decided COMMIT (the in-doubt resolver's set)."""
        return frozenset(self._committed)

    def close(self) -> None:
        self._file.close()
