"""Key-to-shard routing policies.

A :class:`ShardRouter` maps a (relation, primary-key) pair to one of N
shards.  The contract the coordinator relies on:

* routing is **deterministic** — the same key always lands on the same
  shard, across processes and restarts (routers carry no mutable state);
* routing depends only on the relation name and the key tuple, never on
  the row payload, so gets/deletes route identically to inserts;
* :meth:`ShardRouter.shards_for_scan` names every shard that may hold
  rows of a relation, so fan-out scans can skip shards a policy pins a
  relation away from.

Two policies ship: :class:`HashRouter` (uniform hash partitioning over
the order-preserving key encoding — the generic default) and
:class:`WarehouseRouter` (TPC-C's natural partitioning: the leading key
field is the warehouse id, so an entire warehouse's rows co-locate and
almost every transaction touches exactly one shard).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from ..common.codec import encode_key
from ..common.errors import ConfigError
from ..crypto.hashes import h


class ShardRouter:
    """Base class: deterministic key partitioning across ``shards``."""

    #: registry name (subclasses override; persisted in shard-meta.json)
    name = "base"

    def __init__(self, shards: int):
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, relation: str, key: Tuple) -> int:
        """The shard index owning ``key`` of ``relation``."""
        raise NotImplementedError

    def shards_for_scan(self, relation: str) -> List[int]:
        """Every shard that may hold rows of ``relation`` (in index
        order).  The default assumes keys spread over all shards."""
        return list(range(self.shards))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shards={self.shards})"


class HashRouter(ShardRouter):
    """Uniform hash partitioning: ``h(relation || 0x00 || enc(key))``.

    Hashing the order-preserving key encoding (not ``repr``) makes the
    placement independent of Python value identities, and salting with
    the relation name decorrelates relations that share key values.
    """

    name = "hash"

    def shard_of(self, relation: str, key: Tuple) -> int:
        digest = h(relation.encode("utf-8") + b"\0" + encode_key(key))
        return int.from_bytes(digest[:8], "big") % self.shards


class WarehouseRouter(ShardRouter):
    """TPC-C partitioning: shard by the leading warehouse-id key field.

    Every TPC-C relation is keyed warehouse-first except ``item``
    (read-only catalog, key ``i_id``) — pinned wholesale to one shard —
    so a New-Order against a single warehouse is a single-shard
    transaction unless it draws a remote warehouse's stock (the
    paper-faithful ~1% cross-shard rate).
    """

    name = "warehouse"

    #: relations whose keys carry no warehouse id → pin to one shard
    DEFAULT_PINS = {"item": 0}

    def __init__(self, shards: int,
                 pins: Dict[str, int] = None):  # type: ignore[assignment]
        super().__init__(shards)
        source = self.DEFAULT_PINS if pins is None else pins
        self.pins = {rel: pin % shards for rel, pin in source.items()}

    def shard_of(self, relation: str, key: Tuple) -> int:
        pin = self.pins.get(relation)
        if pin is not None:
            return pin
        warehouse = key[0]
        if not isinstance(warehouse, int):
            raise ConfigError(
                f"{relation}: warehouse routing needs an integer "
                f"leading key field, got {type(warehouse).__name__}")
        # warehouse ids are 1-based; round-robin whole warehouses
        return (warehouse - 1) % self.shards

    def shards_for_scan(self, relation: str) -> List[int]:
        pin = self.pins.get(relation)
        if pin is not None:
            return [pin]
        return list(range(self.shards))


#: registry used by shard-meta.json round-trips and the admin CLI
ROUTERS: Dict[str, Type[ShardRouter]] = {
    HashRouter.name: HashRouter,
    WarehouseRouter.name: WarehouseRouter,
}


def make_router(name: str, shards: int) -> ShardRouter:
    """Instantiate a registered router by name."""
    try:
        cls = ROUTERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown shard router {name!r}; "
            f"known: {sorted(ROUTERS)}") from None
    return cls(shards)
