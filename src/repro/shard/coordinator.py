"""Sharded compliant database: hash partitioning + 2PC coordination.

:class:`ShardedDB` spreads tuples across N shards, each of which is any
:class:`~repro.api.ComplianceBackend` — an in-process
:class:`~repro.core.database.CompliantDB` or a remote
:class:`~repro.server.client.ServerClient` — and presents the same
backend protocol itself, so loaders, drivers, and auditors run unchanged
against one shard or many.

Transactions are coordinated with the classic split:

* **single-shard transactions** (at most one shard wrote) take a 1PC
  fast path — read-only participants commit first, the writer last, and
  the coordinator journals nothing;
* **cross-shard transactions** run presumed-abort 2PC: every writer
  shard durably prepares (a PREPARE record in *its own* WAL, locks
  held), the coordinator fsyncs a COMMIT decision into its
  :class:`~repro.shard.journal.DecisionJournal`, then tells every
  participant to commit.  A crash anywhere leaves each shard's WAL with
  enough to recover deterministically: prepared transactions whose gid
  is in the journal commit, all others abort (presumed abort).

Phase-two failures after the decision is journaled do **not** un-commit
the transaction — they surface as
:class:`~repro.common.errors.ShardCommitError` naming the shards that
must be recovered through the coordinator to catch up.

Since PR 10 the per-shard loops (2PC phase one and two, scan fan-out,
``insert_many`` groups, ``create_relation``, ``checkpoint``,
``recover``/``crash_recover``) dispatch through a
:class:`~repro.shard.fanout.FanoutExecutor`, so cross-shard latency is
*max(shards)* instead of *sum(shards)*.  Semantics are unchanged — see
the executor's confinement rules and the ``fanout_workers`` knob below:
shard sets whose in-process backends share one
:class:`~repro.common.clock.SimulatedClock` (the :meth:`create` /
:meth:`open` layout) stay serial automatically, because concurrent
commits would race the clock's ticks and make timestamps, digests, and
audit attestations nondeterministic.
"""

from __future__ import annotations

import heapq
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from ..common.clock import SimulatedClock
from ..common.codec import Schema, encode_key
from ..common.config import DBConfig
from ..common.errors import (ConfigError, ServerRequestError, ShardError,
                             ShardCommitError, TransactionStateError)
from ..crypto.signatures import AuditorKey
from ..obs import Observability
from .fanout import FanoutExecutor, Outcome, resolve_workers
from .journal import DecisionJournal
from .router import ShardRouter, WarehouseRouter, make_router

#: shard directory name layout under a sharded-database base path
SHARD_DIR = "shard-{0:03d}"
META_FILE = "shard-meta.json"
JOURNAL_FILE = "2pc-journal.jsonl"


class DistributedTxn:
    """A global transaction: one lazy per-shard handle per touched shard.

    Shard handles are opened on first touch, so a transaction that never
    leaves its home shard costs exactly one backend transaction.
    ``writes`` tracks which shards were written — the 1PC/2PC decision
    at commit is ``len(writes) > 1``.
    """

    __slots__ = ("gid", "handles", "writes", "state")

    def __init__(self, gid: str):
        self.gid = gid
        self.handles: Dict[int, Any] = {}
        self.writes: Set[int] = set()
        self.state = "active"

    def require_active(self) -> None:
        if self.state != "active":
            raise TransactionStateError(
                f"global transaction {self.gid} is {self.state}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DistributedTxn({self.gid}, shards="
                f"{sorted(self.handles)}, state={self.state})")


class _ShardedTxnContext:
    """``with sharded.transaction() as txn:`` — commit/abort bracket."""

    def __init__(self, db: "ShardedDB"):
        self._db = db
        self.txn: Optional[DistributedTxn] = None
        self.commit_time: Optional[int] = None

    def __enter__(self) -> DistributedTxn:
        self.txn = self._db.begin()
        return self.txn

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.txn is not None
        if self.txn.state != "active":
            return False  # already resolved explicitly
        if exc_type is None:
            self.commit_time = self._db.commit(self.txn)
        else:
            self._db.abort(self.txn)
        return False


class ShardedDB:
    """Coordinator over N compliance backends (ComplianceBackend itself).

    Construct directly from live backends (any mix of in-process
    databases and server clients), or use :meth:`create`/:meth:`open`
    for the on-disk layout of N in-process shards under one base path.
    """

    def __init__(self, backends: List[Any],
                 router: Optional[ShardRouter] = None,
                 journal: Optional[DecisionJournal] = None, *,
                 clock: Optional[SimulatedClock] = None,
                 auditor_key: Optional[AuditorKey] = None,
                 obs: Optional[Observability] = None,
                 journal_path: Optional[os.PathLike] = None,
                 fanout_workers: Optional[int] = None):
        if not backends:
            raise ConfigError("ShardedDB needs at least one backend")
        self.backends = list(backends)
        self.router = router if router is not None \
            else WarehouseRouter(len(self.backends))
        if self.router.shards != len(self.backends):
            raise ConfigError(
                f"router expects {self.router.shards} shards but "
                f"{len(self.backends)} backends were given")
        if journal is None:
            journal = DecisionJournal(
                Path(journal_path) if journal_path is not None
                else Path(os.getcwd()) / JOURNAL_FILE)
        self.journal = journal
        self.clock = clock
        self.auditor_key = auditor_key if auditor_key is not None \
            else AuditorKey.generate()
        self.obs = obs if obs is not None else Observability()
        # concurrency is refused (auto) or rejected (explicit) when the
        # coordinator's clock is also ticked by an in-process shard, or
        # when two in-process shards share one clock — see
        # fanout.resolve_workers for the rule's rationale
        shared_clock = self.clock is not None and any(
            hasattr(b, "engine") and
            getattr(b, "clock", None) is self.clock
            for b in self.backends)
        self.fanout_workers = resolve_workers(fanout_workers,
                                              self.backends, shared_clock)
        self.fanout = FanoutExecutor(self.fanout_workers, obs=self.obs)
        self._schemas: Dict[str, Schema] = {}
        self._gid_seq = 0
        registry = self.obs.registry
        self._c_1pc = registry.counter(
            "shard_commit_1pc_total",
            help="single-shard fast-path commits")
        self._c_2pc = registry.counter(
            "shard_commit_2pc_total",
            help="cross-shard two-phase commits")
        self._c_aborts = registry.counter(
            "shard_abort_total", help="global transaction aborts")
        self._c_cross_reads = registry.counter(
            "shard_scan_fanout_total",
            help="scans fanned out to more than one shard")

    # -- construction on disk ------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike, shards: int = 2,
               config: Optional[DBConfig] = None, *,
               router: str = WarehouseRouter.name,
               clock: Optional[SimulatedClock] = None,
               auditor_key: Optional[AuditorKey] = None,
               obs: Optional[Observability] = None,
               fanout_workers: Optional[int] = None) -> "ShardedDB":
        """Create ``shards`` fresh in-process shards under ``path``.

        All shards share one simulated clock and one auditor key, so
        cross-shard timestamps are comparable and the distributed
        auditor can sign one combined attestation.  The shared clock
        also means fan-out stays serial (``fanout_workers`` auto
        resolves to 1; asking for more raises ``ConfigError``) —
        concurrency needs per-shard clocks, i.e. remote shards.
        """
        from ..core.database import CompliantDB
        base = Path(path)
        base.mkdir(parents=True, exist_ok=True)
        clock = clock or SimulatedClock()
        key = auditor_key or AuditorKey.generate()
        backends = [
            CompliantDB.create(base / SHARD_DIR.format(i),
                               config, clock=clock, auditor_key=key)
            for i in range(shards)]
        (base / META_FILE).write_text(json.dumps(
            {"shards": shards, "router": router}, sort_keys=True))
        return cls(backends, make_router(router, shards),
                   DecisionJournal(base / JOURNAL_FILE), clock=clock,
                   auditor_key=key, obs=obs,
                   fanout_workers=fanout_workers)

    @classmethod
    def open(cls, path: os.PathLike, *,
             clock: Optional[SimulatedClock] = None,
             auditor_key: Optional[AuditorKey] = None,
             obs: Optional[Observability] = None,
             recover: bool = True,
             fanout_workers: Optional[int] = None) -> "ShardedDB":
        """Re-open a sharded database created by :meth:`create`.

        By default every shard is recovered immediately, with the
        decision journal resolving any in-doubt prepared transactions —
        opening a sharded database without its journal is exactly the
        mistake 2PC exists to prevent.
        """
        from ..core.database import CompliantDB
        base = Path(path)
        meta = json.loads((base / META_FILE).read_text())
        shards = int(meta["shards"])
        clock = clock or SimulatedClock()
        key = auditor_key or AuditorKey.generate()
        backends = [
            CompliantDB.open(base / SHARD_DIR.format(i), clock,
                             auditor_key=key)
            for i in range(shards)]
        sharded = cls(backends, make_router(str(meta["router"]), shards),
                      DecisionJournal(base / JOURNAL_FILE), clock=clock,
                      auditor_key=key, obs=obs,
                      fanout_workers=fanout_workers)
        if recover:
            sharded.recover()
        return sharded

    # -- schema routing ------------------------------------------------------

    def _schema(self, relation: str) -> Schema:
        schema = self._schemas.get(relation)
        if schema is not None:
            return schema
        # adopt from an in-process shard's catalog (reopened databases)
        for backend in self.backends:
            engine = getattr(backend, "engine", None)
            if engine is not None and relation in engine.relation_names():
                schema = engine.relation(relation).schema
                self._schemas[relation] = schema
                return schema
        raise ShardError(
            f"relation {relation!r} is unknown to the coordinator; "
            "create it through ShardedDB.create_relation")

    def _shard_of_key(self, relation: str, key: Tuple) -> int:
        self._schema(relation)  # existence check, uniform error
        return self.router.shard_of(relation, key)

    # -- transactions --------------------------------------------------------

    def begin(self) -> DistributedTxn:
        """Open a global transaction (no shard work until first touch)."""
        self._gid_seq += 1
        gid = f"g{self.journal.incarnation:03d}-{self._gid_seq:06d}"
        return DistributedTxn(gid)

    def transaction(self) -> _ShardedTxnContext:
        """Context manager: commit on success, abort on exception."""
        return _ShardedTxnContext(self)

    def _handle(self, txn: DistributedTxn, shard: int) -> Any:
        handle = txn.handles.get(shard)
        if handle is None:
            txn.require_active()
            backend = self.backends[shard]
            if hasattr(backend, "request_with_retry"):
                # begin is not bound to a handle: verbatim resend is safe
                handle = int(backend.request_with_retry(
                    "begin", retry_conflicts=True)["txn"])
            else:
                handle = backend.begin()
            txn.handles[shard] = handle
        return handle

    def commit(self, txn: DistributedTxn) -> int:
        """Commit; 1PC when at most one shard wrote, else 2PC."""
        txn.require_active()
        writers = sorted(txn.writes)
        readers = [s for s in sorted(txn.handles) if s not in txn.writes]
        if len(writers) <= 1:
            return self._commit_1pc(txn, readers, writers)
        return self._commit_2pc(txn, readers, writers)

    def _commit_1pc(self, txn: DistributedTxn, readers: List[int],
                    writers: List[int]) -> int:
        # read-only participants first: if the single writer's commit
        # then fails, nothing durable disagrees with the abort
        commit_time = 0
        try:
            for shard in readers + writers:
                time = self.backends[shard].commit(txn.handles[shard])
                commit_time = max(commit_time, int(time))
        except BaseException:
            txn.state = "aborted"
            self._abort_handles(txn, skip=set(readers))
            self._c_aborts.inc()
            raise
        txn.state = "committed"
        self._c_1pc.inc()
        return commit_time if txn.handles else self.now()

    def _commit_2pc(self, txn: DistributedTxn, readers: List[int],
                    writers: List[int]) -> int:
        with self.obs.tracer.span("shard.2pc", gid=txn.gid,
                                  writers=len(writers)):
            # phase one: every writer durably prepares under the gid —
            # concurrently, since each prepare touches one shard.  All
            # tasks run to completion; with any failure no decision is
            # journaled, so a successfully prepared shard simply aborts
            # below (presumed abort), same as the serial path's
            # never-prepared tail.
            prepared = self.fanout.map("prepare", [
                (shard,
                 lambda b=self.backends[shard], h=txn.handles[shard]:
                     b.prepare(h, txn.gid))
                for shard in writers])
            failed = [o for o in prepared if not o.ok]
            if failed:
                txn.state = "aborted"
                self._abort_handles(txn)
                self._c_aborts.inc()
                # deterministic aggregation: the lowest failing shard's
                # error — exactly what the serial in-order loop raised
                raise failed[0].error  # type: ignore[misc]
            # the decision: one fsync, after which the txn IS committed
            self.journal.log_commit(txn.gid)
            # phase two: everyone commits (readers need no prepare);
            # failures are collected per shard, never raced
            committed = self.fanout.map("commit", [
                (shard,
                 lambda b=self.backends[shard], h=txn.handles[shard]:
                     int(b.commit(h)))
                for shard in readers + writers])
            commit_time = max(
                (o.value for o in committed if o.ok), default=0)
            failures: Dict[int, BaseException] = {
                o.key: o.error for o in committed if o.error is not None}
            txn.state = "committed"
            self._c_2pc.inc()
            if failures:
                raise ShardCommitError(txn.gid, failures)
            return commit_time

    def abort(self, txn: DistributedTxn) -> None:
        """Roll back on every touched shard."""
        txn.require_active()
        txn.state = "aborted"
        self._abort_handles(txn)
        self._c_aborts.inc()

    def _abort_handles(self, txn: DistributedTxn,
                       skip: Set[int] = frozenset()) -> None:
        for shard, handle in sorted(txn.handles.items()):
            if shard in skip:
                continue
            try:
                self.backends[shard].abort(handle)
            except TransactionStateError:
                pass  # already resolved shard-side (e.g. deadlock abort)
            except ServerRequestError as exc:
                if exc.code != "TXN_STATE":
                    raise

    def prepare(self, txn: DistributedTxn, gid: str) -> None:
        """Protocol conformance only: a sharded database can act as a
        single participant in an outer 2PC only when the transaction
        touched at most one shard (nested multi-shard prepare would need
        a decision the outer coordinator cannot journal for us)."""
        txn.require_active()
        if len(txn.writes) > 1:
            raise ShardError(
                f"cannot prepare {txn.gid}: it wrote "
                f"{len(txn.writes)} shards; nested cross-shard 2PC is "
                "not supported")
        for shard in sorted(txn.writes):
            self.backends[shard].prepare(txn.handles[shard], gid)
        txn.state = "prepared"

    # -- data plane ----------------------------------------------------------

    def create_relation(self, schema: Schema, *args: Any,
                        use_tsb: Optional[bool] = None,
                        fields: Optional[Any] = None,
                        key: Optional[Any] = None) -> None:
        """Create the relation on **every** shard and register its
        schema with the router (rows land where the router says, but a
        scan may touch any shard, so the catalog is global)."""
        from ..api import coerce_relation_args
        schema, use_tsb = coerce_relation_args(schema, args, fields, key,
                                               use_tsb)
        self._raise_first(self.fanout.map("create_relation", [
            (idx, lambda b=backend: b.create_relation(schema,
                                                      use_tsb=use_tsb))
            for idx, backend in enumerate(self.backends)]))
        self._schemas[schema.name] = schema

    def insert(self, txn: DistributedTxn, relation: str,
               row: Dict[str, Any]) -> None:
        """Insert a row on the shard owning its key."""
        schema = self._schema(relation)
        shard = self.router.shard_of(relation, schema.key_of(row))
        self.backends[shard].insert(self._handle(txn, shard), relation,
                                    row)
        txn.writes.add(shard)

    def insert_many(self, txn: DistributedTxn, relation: str,
                    rows: List[Dict[str, Any]]) -> None:
        """Batch insert, grouped per shard (order kept within a shard)."""
        schema = self._schema(relation)
        groups: Dict[int, List[Dict[str, Any]]] = {}
        for row in rows:
            shard = self.router.shard_of(relation, schema.key_of(row))
            groups.setdefault(shard, []).append(row)
        # handle opening and writes bookkeeping stay on the calling
        # thread (DistributedTxn is not shared with pool threads); only
        # the per-shard batch inserts fan out
        handles = {shard: self._handle(txn, shard)
                   for shard in sorted(groups)}
        outcomes = self.fanout.map("insert_many", [
            (shard,
             lambda b=self.backends[shard], h=handles[shard],
                    batch=groups[shard]:
                 b.insert_many(h, relation, batch))
            for shard in sorted(groups)])
        for outcome in outcomes:
            if outcome.ok:
                txn.writes.add(outcome.key)
        self._raise_first(outcomes)

    def update(self, txn: DistributedTxn, relation: str,
               row: Dict[str, Any]) -> None:
        """Write a new version on the shard owning the key."""
        schema = self._schema(relation)
        shard = self.router.shard_of(relation, schema.key_of(row))
        self.backends[shard].update(self._handle(txn, shard), relation,
                                    row)
        txn.writes.add(shard)

    def delete(self, txn: DistributedTxn, relation: str,
               key: Tuple[Any, ...]) -> None:
        """Logically delete on the shard owning the key."""
        shard = self._shard_of_key(relation, tuple(key))
        self.backends[shard].delete(self._handle(txn, shard), relation,
                                    tuple(key))
        txn.writes.add(shard)

    def get(self, relation: str, key: Tuple[Any, ...],
            txn: Optional[DistributedTxn] = None,
            at: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Point read from the owning shard (sees the transaction's own
        writes when ``txn`` is given)."""
        shard = self._shard_of_key(relation, tuple(key))
        handle = self._handle(txn, shard) if txn is not None else None
        return self.backends[shard].get(relation, tuple(key), txn=handle,
                                        at=at)

    def scan(self, relation: str,
             lo: Optional[Tuple[Any, ...]] = None,
             hi: Optional[Tuple[Any, ...]] = None,
             txn: Optional[DistributedTxn] = None,
             at: Optional[int] = None
             ) -> List[Tuple[Tuple[Any, ...], Dict[str, Any]]]:
        """Range scan fanned out to every shard that may hold rows,
        merged back into global key order.

        Each shard already returns its rows key-ordered, so the merge
        is a streaming :func:`heapq.merge` over the per-shard result
        lists — O(n log shards) instead of the old extend-then-sort's
        O(n log n) over the whole result."""
        self._schema(relation)
        shards = self.router.shards_for_scan(relation)
        if len(shards) > 1:
            self._c_cross_reads.inc()
        handles = {shard: self._handle(txn, shard) for shard in shards} \
            if txn is not None else {}
        outcomes = self.fanout.map("scan", [
            (shard,
             lambda b=self.backends[shard], h=handles.get(shard):
                 b.scan(relation, lo=lo, hi=hi, txn=h, at=at))
            for shard in shards])
        self._raise_first(outcomes)
        if len(outcomes) == 1:
            return list(outcomes[0].value)
        return list(heapq.merge(
            *(outcome.value for outcome in outcomes),
            key=lambda pair: encode_key(pair[0])))

    # -- lifecycle / maintenance ---------------------------------------------

    @property
    def halted(self) -> bool:
        """True when **any** shard is compliance-halted: a sharded
        database with one unwritable compliance log must stop accepting
        cross-shard work, or audits would diverge across shards."""
        return any(backend.halted for backend in self.backends)

    def now(self) -> int:
        """Current simulated time (the shared clock, or shard 0's)."""
        if self.clock is not None:
            return self.clock.now()
        return int(self.backends[0].now())

    def _raise_first(self, outcomes: List[Outcome]) -> List[Outcome]:
        """Re-raise the lowest-shard failure (deterministic aggregate
        of a fan-out round where the serial loop raised in shard
        order); pass the outcomes through otherwise."""
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return outcomes

    def checkpoint(self) -> None:
        """Checkpoint every shard."""
        self._raise_first(self.fanout.map("checkpoint", [
            (idx, lambda b=backend: b.checkpoint())
            for idx, backend in enumerate(self.backends)]))

    def maintenance(self, force: bool = False) -> bool:
        """Run regret-interval duties on every shard."""
        ran = False
        for backend in self.backends:
            ran = bool(backend.maintenance(force=force)) or ran
        return ran

    def pass_time(self, duration: int) -> None:
        """Advance the shared clock, running maintenance each regret
        interval (in-process shard sets only)."""
        if self.clock is None:
            raise ShardError(
                "pass_time needs the coordinator-owned clock; remote "
                "shards advance their own time")
        interval = min(
            getattr(b, "config").compliance.regret_interval
            for b in self.backends if hasattr(b, "config"))
        remaining = duration
        while remaining > 0:
            step = min(interval, remaining)
            self.clock.advance(step)
            remaining -= step
            self.maintenance()

    def recover(self) -> Dict[int, Any]:
        """Recover every shard, resolving in-doubt prepared transactions
        against the decision journal (commit iff the gid was journaled;
        presumed abort otherwise).  Returns per-shard recovery reports
        for shards that exposed one."""
        commits = self.journal.committed_gids()
        outcomes = self.fanout.map("recover", [
            (idx, lambda b=backend: b.recover(in_doubt_commits=commits))
            for idx, backend in enumerate(self.backends)
            if hasattr(backend, "recover")])
        self._raise_first(outcomes)
        return {outcome.key: outcome.value for outcome in outcomes}

    def crash_recover(self) -> Dict[int, Any]:
        """Test harness: crash every shard, then recover them all
        through the journal (wire shards use their crash_recover op)."""
        commits = sorted(self.journal.committed_gids())

        def crash_one(backend: Any) -> Any:
            if hasattr(backend, "crash_recover"):
                return backend.crash_recover(commits=commits)
            backend.crash()
            return backend.recover(in_doubt_commits=commits)

        outcomes = self.fanout.map("crash_recover", [
            (idx, lambda b=backend: crash_one(b))
            for idx, backend in enumerate(self.backends)])
        self._raise_first(outcomes)
        return {outcome.key: outcome.value for outcome in outcomes}

    def metrics(self) -> Dict[str, Any]:
        """Coordinator counters plus every shard's full metrics report."""
        from ..obs import metrics_report
        return {
            "coordinator": metrics_report(self.obs.registry,
                                          self.obs.tracer),
            "shards": [backend.metrics() for backend in self.backends],
        }

    def close(self) -> None:
        """Clean shutdown: close every shard, then the fan-out pool,
        then the journal."""
        for backend in self.backends:
            backend.close()
        self.fanout.close()
        self.journal.close()

    def __enter__(self) -> "ShardedDB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
