"""Bounded fan-out executor for per-shard coordinator work.

The coordinator's loops ("for each shard: prepare / commit / scan /
audit") are embarrassingly parallel *between* shards but strictly serial
*within* one — every backend here is single-caller (an in-process
:class:`~repro.core.database.CompliantDB` has no internal locking; a
:class:`~repro.server.client.ServerClient` has one byte stream).  The
:class:`FanoutExecutor` encodes exactly that contract:

**Confinement rules** (what keeps the PR 8 sanitizer clean):

1. One round = one :meth:`map` call = at most one task per shard.  Two
   tasks in a round sharing a shard key is a coordinator bug: it would
   put two pool threads inside one single-caller backend.  The executor
   refuses the round with :class:`~repro.common.errors.ShardError` and,
   when the runtime sanitizer is installed, records a ``confinement``
   violation so the test gate trips too.
2. Rounds do not overlap: :meth:`map` blocks until every task of the
   round has finished (success or failure) before returning, so at any
   instant each shard sees at most one coordinator thread.
3. Worker threads run the supplied thunks and **nothing else** — all
   observability (counters, histograms, the in-flight gauge, tracer
   spans) is emitted from the calling thread, before dispatch and after
   the join.  The :class:`~repro.obs.registry.MetricsRegistry` and
   :class:`~repro.obs.tracing.Tracer` are not thread-safe and never see
   a pool thread; span parentage therefore survives cross-thread
   dispatch trivially (spans simply never cross threads), and traces
   stay byte-identical between serial and concurrent runs.

**Determinism**: every task of a round runs to completion and its
outcome (value or exception, plus elapsed wall seconds) is stored at the
task's own index — results come back in submission order regardless of
completion order, and errors are *collected*, never raced: the caller
decides how to aggregate (lowest shard first, full failures map, ...)
exactly as the serial loops did.

With ``workers <= 1`` (or a single task) the round runs inline on the
calling thread in submission order — byte-for-byte the old serial path,
used when shards share a :class:`~repro.common.clock.SimulatedClock`
and concurrent commits would race its ticks.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..common.errors import ShardError
from ..obs import DEFAULT_LATENCY_BUCKETS, Observability

#: default ceiling on pool threads regardless of shard count
MAX_WORKERS = 16


class Outcome:
    """Result slot of one fan-out task (value XOR error, plus timing)."""

    __slots__ = ("key", "value", "error", "seconds")

    def __init__(self, key: int, value: Any = None,
                 error: Optional[BaseException] = None,
                 seconds: float = 0.0):
        self.key = key
        self.value = value
        self.error = error
        self.seconds = seconds

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """The value, or re-raise the task's exception."""
        if self.error is not None:
            raise self.error
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"error={self.error!r}"
        return f"Outcome(shard {self.key}, {state})"


class _Round:
    """Completion latch for one :meth:`FanoutExecutor.map` call."""

    __slots__ = ("_remaining", "_lock", "_done")

    def __init__(self, tasks: int):
        self._remaining = tasks
        self._lock = threading.Lock()
        self._done = threading.Event()

    def task_done(self) -> None:
        with self._lock:
            self._remaining -= 1
            if self._remaining == 0:
                self._done.set()

    def wait(self) -> None:
        self._done.wait()


class FanoutExecutor:
    """Persistent bounded thread pool with serial-equivalent semantics."""

    def __init__(self, workers: int,
                 obs: Optional[Observability] = None):
        if workers < 1:
            raise ShardError(f"fanout workers must be >= 1, got {workers}")
        self.workers = min(int(workers), MAX_WORKERS)
        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._g_inflight = registry.gauge(
            "shard_fanout_inflight",
            help="tasks currently dispatched to the fan-out pool")
        self._threads: List[threading.Thread] = []
        self._queue: "queue.SimpleQueue[Optional[Tuple[_Round, Outcome, Callable[[], Any]]]]" = (
            queue.SimpleQueue())
        self._closed = False

    # -- the one entry point -------------------------------------------------

    def map(self, op: str,
            tasks: Sequence[Tuple[int, Callable[[], Any]]]
            ) -> List[Outcome]:
        """Run ``(shard key, thunk)`` tasks; outcomes in submission order.

        Every task runs to completion; exceptions are captured in the
        task's :class:`Outcome`, never raised here (except the
        same-shard confinement breach, which fails the whole round
        before anything is dispatched).
        """
        if self._closed:
            raise ShardError("fanout executor is closed")
        self._check_confinement(op, tasks)
        started = time.monotonic()
        outcomes = [Outcome(key) for key, _ in tasks]
        if self.workers <= 1 or len(tasks) <= 1:
            for outcome, (_, thunk) in zip(outcomes, tasks):
                self._run_task(outcome, thunk)
        else:
            self._ensure_threads(len(tasks))
            self._g_inflight.set(len(tasks))
            round_ = _Round(len(tasks))
            for outcome, (_, thunk) in zip(outcomes, tasks):
                self._queue.put((round_, outcome, thunk))
            round_.wait()
            self._g_inflight.set(0)
        self._observe(op, outcomes, time.monotonic() - started)
        return outcomes

    # -- obs (calling thread only) -------------------------------------------

    def _observe(self, op: str, outcomes: List[Outcome],
                 elapsed: float) -> None:
        registry = self.obs.registry
        registry.counter(
            "shard_fanout_rounds_total",
            help="fan-out rounds driven by the coordinator",
            op=op).inc()
        registry.counter(
            "shard_fanout_tasks_total",
            help="per-shard tasks dispatched by the coordinator",
            op=op).inc(len(outcomes))
        registry.histogram(
            "shard_fanout_seconds", buckets=DEFAULT_LATENCY_BUCKETS,
            help="wall time of one whole fan-out round",
            op=op).observe(elapsed)
        task_hist = registry.histogram(
            "shard_fanout_task_seconds", buckets=DEFAULT_LATENCY_BUCKETS,
            help="wall time of individual per-shard tasks", op=op)
        for outcome in outcomes:
            task_hist.observe(outcome.seconds)

    # -- confinement ---------------------------------------------------------

    def _check_confinement(self, op: str,
                           tasks: Sequence[Tuple[int, Callable[[], Any]]]
                           ) -> None:
        seen: set = set()
        dupes = sorted({key for key, _ in tasks
                        if key in seen or seen.add(key)})  # type: ignore[func-returns-value]
        if not dupes:
            return
        message = (
            f"fan-out round {op!r} has {len(tasks)} tasks but shards "
            f"{dupes} appear more than once — backends are "
            "single-caller, so one round may touch each shard at most "
            "once")
        from ..analysis import sanitizer as _sanitizer
        active = _sanitizer.current()
        if active is not None:
            active._record(_sanitizer.Violation(
                "confinement", message,
                threading.current_thread().name))
        raise ShardError(message)

    # -- pool plumbing -------------------------------------------------------

    def _ensure_threads(self, needed: int) -> None:
        target = min(self.workers, needed)
        while len(self._threads) < target:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-fanout-{len(self._threads)}",
                daemon=True)
            self._threads.append(thread)
            thread.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            round_, outcome, thunk = item
            try:
                self._run_task(outcome, thunk)
            finally:
                round_.task_done()

    @staticmethod
    def _run_task(outcome: Outcome, thunk: Callable[[], Any]) -> None:
        started = time.monotonic()
        try:
            outcome.value = thunk()
        except BaseException as exc:
            outcome.error = exc
        outcome.seconds = time.monotonic() - started

    def close(self) -> None:
        """Stop the pool threads (idempotent; running rounds finish)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "FanoutExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def shared_clock_hazard(backends: Sequence[Any]) -> bool:
    """True when two in-process backends share one clock object.

    :class:`~repro.common.clock.SimulatedClock` is not thread-safe and
    every in-process commit ticks it; concurrent fan-out over shards
    sharing a clock would race those ticks and make commit timestamps —
    and therefore page digests and audit attestations —
    nondeterministic.  Remote backends are immune: each server process
    owns its clock, and the client-side
    :class:`~repro.server.client._RemoteClock` shim is stateless.
    """
    seen_ids: set = set()
    for backend in backends:
        if not hasattr(backend, "engine"):
            continue  # remote: the clock lives server-side
        clock = getattr(backend, "clock", None)
        if clock is None:
            continue
        if id(clock) in seen_ids:
            return True
        seen_ids.add(id(clock))
    return False


def resolve_workers(fanout_workers: Optional[int],
                    backends: Sequence[Any],
                    shared_clock: bool) -> int:
    """Worker count under the clock-hazard confinement rule.

    ``None`` (auto) picks ``min(16, len(backends))`` when concurrency
    is safe, else 1; an explicit ``fanout_workers > 1`` in a hazardous
    configuration is refused loudly rather than silently serialised.
    """
    hazard = shared_clock or shared_clock_hazard(backends)
    if fanout_workers is None:
        return 1 if hazard else min(MAX_WORKERS, len(backends))
    workers = int(fanout_workers)
    if workers < 1:
        raise ShardError(
            f"fanout_workers must be >= 1, got {fanout_workers}")
    if workers > 1 and hazard:
        from ..common.errors import ConfigError
        raise ConfigError(
            "fanout_workers > 1 is unsafe here: in-process shards share "
            "one SimulatedClock, and concurrent commits would race its "
            "ticks (nondeterministic timestamps and digests); give each "
            "shard its own clock or use remote shards")
    return workers
