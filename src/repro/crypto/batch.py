"""Batched page hashing: ``Hs`` straight from raw page bytes.

The hash-page-on-read hot path (Section V) computes the sequential hash
``Hs`` of every leaf page read from disk.  The straightforward route —
parse the page into :class:`~repro.storage.record.TupleVersion` objects,
sort, re-encode each tuple, chain — allocates one object and one ``bytes``
per tuple per read.  :func:`seq_hash_page` removes all of that: it walks
the slotted page's tuple extents as contiguous ``memoryview`` slices
(:func:`~repro.storage.page.leaf_tuple_extents`), orders them by tuple
order number, and folds them with :meth:`~repro.crypto.hashes.SeqHash.
add_many`'s reused-hasher chain.

Byte-identity argument (the invariant the property tests pin down): the
on-page encoding of a record *is* its canonical ``to_bytes`` form, so for
every stamped tuple the extent bytes equal what the per-tuple path hashes.
Unstamped tuples whose commit time is known are the one exception — the
plugin hashes them *as stamped* (Section V) — so those few extents are
parsed and re-encoded through the exact :meth:`TupleVersion.stamp` path
the slow route uses.
"""

from __future__ import annotations

from typing import (Callable, FrozenSet, List, Optional, Sequence, Set,
                    Tuple)

from ..storage.page import leaf_tuple_extents
from ..storage.record import TupleVersion
from .hashes import Buffer, SeqHash

#: commit-time lookup: txn id -> commit time, or None if still unknown
Resolver = Callable[[int], Optional[int]]


def page_items(raw: bytes, resolve: Optional[Resolver] = None
               ) -> Tuple[List[Buffer], FrozenSet[int]]:
    """The exact byte items ``Hs`` folds for a raw LEAF page, in order.

    ``resolve`` maps a transaction id to its commit time (or ``None`` if
    the transaction has not committed) — pass the compliance plugin's
    ``commit_map.get``.  Unstamped tuples with a known commit time are
    returned in stamped form, the rest exactly as stored; the returned
    frozenset names the transactions whose commit time was still unknown,
    i.e. the condition under which the digest must later be recomputed.

    Raises :class:`~repro.common.errors.PageFormatError` for non-leaf or
    malformed pages.
    """
    extents = leaf_tuple_extents(raw)
    extents.sort(key=lambda e: e.seq)  # stable, like the reference sort
    unresolved: Set[int] = set()
    items: List[Buffer] = []
    for ext in extents:
        if ext.stamped:
            items.append(ext.raw)
            continue
        commit_time = resolve(ext.start) if resolve is not None else None
        if commit_time is None:
            unresolved.add(ext.start)
            items.append(ext.raw)  # hashed as read, txn id and all
        else:
            # the rare slow lane: materialise and stamp, exactly like
            # the per-tuple path, so substitution stays byte-identical
            version, _ = TupleVersion.from_bytes(ext.raw)
            items.append(version.stamp(commit_time).to_bytes())
    return items, frozenset(unresolved)


def seq_hash_page(raw: bytes, resolve: Optional[Resolver] = None
                  ) -> Tuple[bytes, FrozenSet[int]]:
    """``Hs`` of a raw LEAF page, batched over its tuple extents.

    Byte-identical to the per-tuple reference::

        ordered = sorted(page.entries, key=lambda t: t.seq)
        SeqHash(stamped_form(t).to_bytes() for t in ordered).digest()

    See :func:`page_items` for the substitution rules and errors.
    """
    items, unresolved = page_items(raw, resolve)
    return SeqHash().add_many(items).digest(), unresolved


def seq_hash_page_resumed(
    raw: bytes,
    resolve: Optional[Resolver],
    prev_items: Optional[Sequence[Buffer]],
    prev_digest: Optional[bytes],
) -> Tuple[bytes, FrozenSet[int], List[Buffer]]:
    """``Hs`` of a LEAF page, resuming a previous fold when possible.

    Tuple order numbers only ever grow, so a page that merely *gained*
    tuples since its last fold hashes the same item sequence with new
    items appended — the chain property the paper leans on ("appending a
    tuple to a page updates the hash in O(1)").  When the previously
    folded items (with their substitutions) are a byte-equal prefix of
    the current ones, the chain resumes from the stored digest and folds
    only the suffix; any other change (vacuumed tuple, new substitution,
    reordering) falls back to the full fold.  Returns the items as a
    third element so the caller can cache them for the next resume.

    Byte-identity with :func:`seq_hash_page` holds by construction: the
    chain state after item ``i`` is a pure function of items ``0..i``.
    """
    items, unresolved = page_items(raw, resolve)
    if prev_items is not None and prev_digest is not None:
        n = len(prev_items)
        if n <= len(items) and list(prev_items) == items[:n]:
            chain = SeqHash.from_state(prev_digest, n)
            return chain.add_many(items[n:]).digest(), unresolved, items
    return SeqHash().add_many(items).digest(), unresolved, items
