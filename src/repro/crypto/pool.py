"""DigestPool: a small thread pool for independent digest work.

CPython's ``hashlib`` releases the GIL while hashing buffers larger than
2047 bytes, so SHA-512 of page-sized inputs genuinely runs in parallel
across threads.  Below that threshold the interpreter still *timeshares*
threads every switch interval, which matters here because the simulated
I/O latency (:meth:`~repro.storage.pager.Pager` ``io_delay``) is a
wall-clock-deadline spin: digest work done on a pool thread during
another page's spin window costs no extra wall-clock time.

What may and may not be pooled
------------------------------
The ``Hs`` chain of a single page is strictly sequential — link ``i``
needs link ``i-1`` — so a page's fold never splits across threads;
:meth:`seq_hash_page` always runs the batched inline fold.  Parallelism
comes only from *independent* units:

* :meth:`seq_hash_pages` — different pages' chains share no state, so a
  prefetch batch folds one page per worker;
* :meth:`add_hash_many` — ADD-HASH is commutative, so per-chunk partial
  sums merged with :meth:`~repro.crypto.hashes.AddHash.union` are
  byte-identical to a single pass in any order;
* :meth:`h_many` — unrelated one-shot digests.

Every digest is computed *synchronously* from the caller's point of view
(submit, then block for results).  The compliance log serialises each
record into the WORM buffer at append time, so a READ_HASH digest must
exist — and must reflect the commit map as of its position in L — before
the append; deferring digests past the append would let a later
STAMP_TRANS change what the replayed auditor expects.  See DESIGN.md
§10 for the full ordering argument.

With ``workers=0`` (the default) everything runs inline on the calling
thread and only the ``inline`` counter moves; the knob is
``hash_workers`` on :class:`~repro.common.config.EngineConfig`.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import (
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..common.errors import PageFormatError
from ..obs import MetricsRegistry, NullRegistry
from .batch import (Resolver, seq_hash_page as _seq_hash_page,
                    seq_hash_page_resumed as _seq_hash_page_resumed)
from .hashes import AddHash, Buffer, h

#: hashlib only drops the GIL for updates of at least 2048 bytes
#: (``HASHLIB_GIL_MINSIZE`` in CPython); smaller buffers are hashed
#: inline because a pool round-trip buys no parallelism for them
GIL_RELEASE_MIN = 2048

#: a page digest per (digest, unresolved-transaction-ids) pair, or
#: ``None`` when the page was malformed (non-leaf, truncated)
PageDigest = Optional[Tuple[bytes, FrozenSet[int]]]


class DigestPool:
    """Bounded worker pool for digest batches; inline when ``workers=0``.

    Counters (registered on ``registry``):

    * ``digest_pool_submitted_total`` — tasks handed to worker threads;
    * ``digest_pool_completed_total`` — pooled tasks whose result was
      collected (equals submitted unless a task raised);
    * ``digest_pool_inline_total`` — digest units computed on the
      calling thread instead (no workers configured, batch too small to
      split, or buffer below the GIL-release threshold).

    The pool owns no digest state: every method is a pure function of
    its arguments, so results are byte-identical whether pooled or
    inline — the property tests assert exactly that.
    """

    def __init__(self, workers: int = 0,
                 registry: Optional[MetricsRegistry] = None):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        reg = registry if registry is not None else NullRegistry()
        self._c_submitted = reg.counter(
            "digest_pool_submitted_total",
            help="digest tasks handed to pool worker threads")
        self._c_completed = reg.counter(
            "digest_pool_completed_total",
            help="pooled digest tasks completed and collected")
        self._c_inline = reg.counter(
            "digest_pool_inline_total",
            help="digest units computed inline on the calling thread")
        self._workers = workers
        self._executor: Optional[ThreadPoolExecutor] = None
        if workers > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-digest")

    # -- lifecycle -------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Configured worker-thread count (0 = inline-only)."""
        return self._workers

    def close(self) -> None:
        """Shut the worker threads down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "DigestPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- digest entry points -----------------------------------------------------

    def h(self, data: Buffer) -> bytes:
        """One-shot ``h`` (SHA-512) of a single buffer, always inline.

        A lone digest gains nothing from a worker hand-off — the caller
        would block on the future immediately — so this exists to give
        pool users one entry point and honest accounting.
        """
        self._c_inline.inc()
        return h(data)

    def h_many(self, buffers: Sequence[Buffer]) -> List[bytes]:
        """Digest several independent buffers, pooling the large ones.

        Buffers of at least :data:`GIL_RELEASE_MIN` bytes are submitted
        to worker threads (hashlib releases the GIL for them, so they
        hash genuinely in parallel); smaller ones are hashed inline
        while the workers run.  Results are returned in input order.
        """
        if self._executor is None or len(buffers) <= 1:
            self._c_inline.inc(len(buffers))
            return [h(b) for b in buffers]
        futures: List[Tuple[int, "Future[bytes]"]] = []
        results: List[Optional[bytes]] = [None] * len(buffers)
        submitted = 0
        inline = 0
        for i, buf in enumerate(buffers):
            if len(buf) >= GIL_RELEASE_MIN:
                futures.append((i, self._executor.submit(h, buf)))
                submitted += 1
            else:
                results[i] = h(buf)
                inline += 1
        for i, future in futures:
            results[i] = future.result()
        if submitted:
            self._c_submitted.inc(submitted)
            self._c_completed.inc(submitted)
        if inline:
            self._c_inline.inc(inline)
        return results  # type: ignore[return-value]

    def seq_hash_page(self, raw: bytes,
                      resolve: Optional[Resolver] = None
                      ) -> Tuple[bytes, FrozenSet[int]]:
        """Batched ``Hs`` of one page — always the inline fold.

        A single chain is sequential by construction (each link hashes
        the previous link's digest), so there is nothing to parallelise
        within one page; the win here is the batched extent walk.  Use
        :meth:`seq_hash_pages` when several pages are in hand.
        """
        self._c_inline.inc()
        return _seq_hash_page(raw, resolve)

    def seq_hash_page_resumed(
        self,
        raw: bytes,
        resolve: Optional[Resolver],
        prev_items: Optional[Sequence[Buffer]],
        prev_digest: Optional[bytes],
    ) -> Tuple[bytes, FrozenSet[int], List[Buffer]]:
        """Batched ``Hs`` of one page, resuming a cached fold if it can.

        Inline like :meth:`seq_hash_page` (one chain, nothing to
        parallelise); when the previously folded items are a byte-equal
        prefix of the current ones only the suffix is chained.  Returns
        the folded items for the caller to cache.
        """
        self._c_inline.inc()
        return _seq_hash_page_resumed(raw, resolve, prev_items,
                                      prev_digest)

    def seq_hash_pages(self, raws: Sequence[bytes],
                       resolve: Optional[Resolver] = None
                       ) -> List[PageDigest]:
        """``Hs`` of several pages, one independent chain per worker.

        Returns one ``(digest, unresolved)`` pair per input page, in
        input order, or ``None`` for pages that fail to parse (the
        caller decides how to flag those).  ``resolve`` is read from
        worker threads; callers must not mutate the underlying commit
        map until this returns (the engine is single-writer, so its
        commit map cannot move while the caller blocks here).
        """
        def one(raw: bytes) -> PageDigest:
            try:
                return _seq_hash_page(raw, resolve)
            except PageFormatError:
                return None

        if self._executor is None or len(raws) <= 1:
            self._c_inline.inc(len(raws))
            return [one(raw) for raw in raws]
        futures = [self._executor.submit(one, raw) for raw in raws]
        results = [future.result() for future in futures]
        self._c_submitted.inc(len(raws))
        self._c_completed.inc(len(raws))
        return results

    def add_hash_many(self, items: Iterable[Buffer]) -> AddHash:
        """ADD-HASH over many items, chunked across the workers.

        Each worker folds a contiguous chunk into a partial
        :class:`AddHash`; partials merge with :meth:`AddHash.union`.
        Commutativity makes the merge byte-identical to a single
        sequential pass *in any order*.  Small batches run inline —
        splitting them costs more in hand-off than the fold itself.
        """
        if not isinstance(items, (list, tuple)):
            items = list(items)
        n = len(items)
        if self._executor is None or self._workers < 2 or n < 64:
            self._c_inline.inc(n)
            return AddHash().add_many(items)
        chunk = -(-n // self._workers)  # ceil division
        futures = [
            self._executor.submit(
                lambda part: AddHash().add_many(part), items[i:i + chunk])
            for i in range(0, n, chunk)
        ]
        merged = AddHash()
        for future in futures:
            merged = merged.union(future.result())
        self._c_submitted.inc(len(futures))
        self._c_completed.inc(len(futures))
        return merged
