"""Auditor signatures over snapshots and audit certificates.

The paper has the auditor place a digital signature on WORM testifying that
a snapshot (or the stored ``H(Df ∪ L)`` value) is correct.  The protocol only
needs that the *adversary* — who does not hold the auditor's key — cannot
forge or alter a signed statement without detection.  We therefore model the
signature with HMAC-SHA512 keyed by the auditor's secret; this is a
documented substitution for a public-key signature (see DESIGN.md) and gives
the same in-simulation unforgeability.
"""

from __future__ import annotations

import hashlib
import hmac

from ..common.errors import SnapshotError

SIGNATURE_BYTES = 64


class AuditorKey:
    """An auditor's signing identity.

    ``name`` identifies the auditor in signed artefacts; ``secret`` is the
    private signing key.  Anyone holding the same :class:`AuditorKey` can
    verify; the threat model's adversary (a DBMS-side superuser) does not.
    """

    def __init__(self, name: str, secret: bytes):
        if not secret:
            raise SnapshotError("auditor secret must be non-empty")
        self.name = name
        self._secret = bytes(secret)

    @classmethod
    def generate(cls, name: str = "auditor") -> "AuditorKey":
        """Derive a deterministic per-name key (convenient for tests)."""
        return cls(name, hashlib.sha512(b"repro.auditor." +
                                        name.encode("utf-8")).digest())

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``; returns a 64-byte signature."""
        return hmac.new(self._secret, message, hashlib.sha512).digest()

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Constant-time verification of a signature over ``message``."""
        return hmac.compare_digest(self.sign(message), bytes(signature))

    def require_valid(self, message: bytes, signature: bytes,
                      what: str = "artifact") -> None:
        """Raise :class:`SnapshotError` unless the signature verifies."""
        if not self.verify(message, signature):
            raise SnapshotError(
                f"signature check failed for {what} (auditor {self.name!r})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AuditorKey(name={self.name!r})"
