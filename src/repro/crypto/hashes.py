"""Cryptographic hash constructions from the paper.

Three constructions are used by the compliance architecture:

* ``h`` — a plain big one-way hash ("512 bits or more"); we use SHA-512.
* :class:`AddHash` — Bellare–Micciancio's **ADD-HASH** incremental,
  commutative multiset hash:  ``ADD_HASH(a1..an) = Σ h(ai) mod 2^512``.
  The auditor uses it to check the tuple completeness condition
  ``Df = Ds ∪ L`` in a single unsorted pass (Section IV-A).
* :class:`SeqHash` — the sequential page hash ``Hs`` used by the
  hash-page-on-read refinement (Section V).  The paper defines
  ``Hs(r1..rn) = H(h(r1), H(r2..rn))``; we implement the equivalent
  left-fold chain ``s_i = sha512(s_{i-1} || h(r_i))`` so that appending a
  tuple to a page updates the hash in O(1), which is exactly the incremental
  replay the auditor performs while scanning the compliance log.

All digests are 64 bytes.  :class:`AddHash` additionally supports
*subtraction*, which the auditor uses when recomputing snapshot-page hashes
after vacuuming (Section VIII).

Batched entry points (:meth:`SeqHash.add_many`, :meth:`AddHash.add_many`,
:func:`~repro.crypto.batch.seq_hash_page`) fold many items with one pass
and no per-item intermediate allocations; they are byte-identical to the
per-item loops.  Everything here is thread-safe so the
:class:`~repro.crypto.pool.DigestPool` may call ``h`` concurrently: the
work counters are per-thread shards summed on read, and the ``h`` memo
tolerates concurrent eviction.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Union

DIGEST_BYTES = 64
_MODULUS = 1 << (DIGEST_BYTES * 8)
_MASK = _MODULUS - 1

#: anything ``hashlib`` accepts without copying
Buffer = Union[bytes, bytearray, memoryview]


class _StatsShard:
    """One thread's private counters (written without any locking)."""

    __slots__ = ("sha512_calls", "memo_hits")

    def __init__(self) -> None:
        self.sha512_calls = 0
        self.memo_hits = 0


class HashStats:
    """Process-wide SHA-512 work counters, safe under DigestPool threads.

    Writers bump a per-thread shard (no lock, no contention on the hot
    path); readers sum the shards.  The legacy attribute surface —
    ``sha512_calls`` and ``memo_hits`` as plain reads — is preserved as
    summing properties, so existing callers and tests keep working.
    """

    __slots__ = ("_lock", "_local", "_shards")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: List[_StatsShard] = []

    def shard(self) -> _StatsShard:
        """This thread's private counter shard (created on first use)."""
        shard: _StatsShard = getattr(self._local, "shard", None)  # type: ignore[assignment]
        if shard is None:
            shard = _StatsShard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    @property
    def sha512_calls(self) -> int:
        """Real SHA-512 compressions performed, summed across threads."""
        with self._lock:
            return sum(s.sha512_calls for s in self._shards)

    @property
    def memo_hits(self) -> int:
        """Memoised ``h`` lookups served, summed across threads."""
        with self._lock:
            return sum(s.memo_hits for s in self._shards)

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of both counters (for bench deltas)."""
        with self._lock:
            return {
                "sha512_calls": sum(s.sha512_calls for s in self._shards),
                "memo_hits": sum(s.memo_hits for s in self._shards),
            }


#: process-wide counters: every real SHA-512 compression bumps
#: ``sha512_calls``; every memoised ``h`` lookup bumps ``memo_hits``
HASH_STATS = HashStats()

#: bounded LRU for ``h``: a tuple's digest is computed once and reused
#: across NEW_TUPLE emission, READ_HASH chains, and audit replay
_MEMO_MAX = 16384
#: only memoise small inputs (tuple-sized); hashing whole page images
#: through the memo would let a handful of entries pin megabytes
_MEMO_ITEM_MAX = 512
_memo: "OrderedDict[bytes, bytes]" = OrderedDict()


def _sha512(data: Buffer) -> bytes:
    HASH_STATS.shard().sha512_calls += 1
    return hashlib.sha512(data).digest()


def h(data: Buffer) -> bytes:
    """The underlying big one-way hash (SHA-512), memoised for small
    inputs (bounded LRU).

    Accepts any buffer without copying; memo keys are materialised to
    ``bytes`` only for memo-sized inputs, so hashing a large
    ``memoryview`` (a page image, a tuple extent) never copies it.
    """
    if len(data) > _MEMO_ITEM_MAX:
        return _sha512(data)
    if not isinstance(data, bytes):
        data = bytes(data)  # memo keys must be hashable and immutable
    cached = _memo.get(data)
    if cached is not None:
        HASH_STATS.shard().memo_hits += 1
        try:
            _memo.move_to_end(data)
        except KeyError:
            # concurrently evicted between get and move: reinsert
            _memo[data] = cached
        return cached
    digest = _sha512(data)
    _memo[data] = digest
    if len(_memo) > _MEMO_MAX:
        try:
            _memo.popitem(last=False)
        except KeyError:
            pass  # another thread already evicted
    return digest


def h_int(data: Buffer) -> int:
    """``h`` interpreted as an unsigned integer (for ADD-HASH sums)."""
    return int.from_bytes(h(data), "big")


class AddHash:
    """Incremental, commutative, pre-image-resistant multiset hash.

    Properties required by Section IV-A:

    * *incremental*: ``add`` is O(1) given the running value;
    * *commutative*: insertion order never affects the digest;
    * *secure*: finding a different multiset with the same digest requires
      breaking the underlying modular-sum construction (Bellare–Micciancio).

    The hash is over a **multiset**: adding the same item twice is different
    from adding it once.  ``remove`` subtracts an item, enabling the
    vacuum-aware snapshot recomputation of Section VIII.
    """

    __slots__ = ("_acc", "_count")

    def __init__(self, items: Iterable[Buffer] = ()):
        self._acc = 0
        self._count = 0
        if items:
            self.add_many(items)

    @classmethod
    def from_digest(cls, digest: bytes, count: int = 0) -> "AddHash":
        """Reconstruct a running hash from a previously emitted digest.

        The modular sum *is* the state, so a 64-byte digest plus the
        item count fully resumes the fold.  This is what lets a shard
        coordinator take per-shard audit digests off the wire and
        :meth:`union` them into one cross-shard attestation without
        rehashing a single tuple (the partition-mergeability the
        parallel auditor already relies on).
        """
        if len(digest) != DIGEST_BYTES:
            raise ValueError(
                f"AddHash digest must be {DIGEST_BYTES} bytes, "
                f"got {len(digest)}")
        resumed = cls()
        resumed._acc = int.from_bytes(digest, "big")
        resumed._count = count
        return resumed

    def add(self, item: Buffer) -> "AddHash":
        """Fold one item into the multiset hash."""
        self._acc = (self._acc + h_int(item)) & _MASK
        self._count += 1
        return self

    def add_many(self, items: Iterable[Buffer]) -> "AddHash":
        """Fold many items in one pass.

        Byte-identical to repeated :meth:`add` — modular addition is
        associative — but the per-item ``h_int`` values are summed as a
        plain Python integer and reduced mod 2^512 once, instead of one
        masked reduction per item.
        """
        acc = 0
        count = 0
        for item in items:
            acc += h_int(item)
            count += 1
        self._acc = (self._acc + acc) & _MASK
        self._count += count
        return self

    def remove(self, item: Buffer) -> "AddHash":
        """Subtract one item (modular inverse of :meth:`add`)."""
        self._acc = (self._acc - h_int(item)) & _MASK
        self._count -= 1
        return self

    def union(self, other: "AddHash") -> "AddHash":
        """Return the hash of the multiset union of two hashed multisets."""
        merged = AddHash()
        merged._acc = (self._acc + other._acc) & _MASK
        merged._count = self._count + other._count
        return merged

    @property
    def count(self) -> int:
        """Number of items folded in (adds minus removes)."""
        return self._count

    def digest(self) -> bytes:
        """The 64-byte multiset digest."""
        return self._acc.to_bytes(DIGEST_BYTES, "big")

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()

    def copy(self) -> "AddHash":
        """An independent copy of the running state."""
        dup = AddHash()
        dup._acc = self._acc
        dup._count = self._count
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AddHash):
            return NotImplemented
        return self._acc == other._acc and self._count == other._count

    def __hash__(self) -> int:
        return hash((self._acc, self._count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddHash(count={self._count}, digest={self.hexdigest()[:16]}…)"


_SEQ_IV = h(b"repro.SeqHash.iv")


class SeqHash:
    """Sequential (order-sensitive) hash chain ``Hs`` over page tuples.

    Used by hash-page-on-read: tuples on a page are ordered by their *tuple
    order number* and chained.  Equal digests imply (collision resistance
    aside) the same tuples in the same order.
    """

    __slots__ = ("_state", "_count")

    def __init__(self, items: Iterable[Buffer] = ()):
        self._state = _SEQ_IV
        self._count = 0
        if items:
            self.add_many(items)

    @classmethod
    def from_state(cls, state: bytes, count: int = 0) -> "SeqHash":
        """Resume a chain from a previously computed digest.

        The chain state after item ``i`` *is* the digest of items
        ``0..i``, so a caller that kept a fold's digest can continue it
        with further items — the O(1)-append property the
        hash-page-on-read refinement relies on.
        """
        chain = cls()
        chain._state = state
        chain._count = count
        return chain

    def add(self, item: Buffer) -> "SeqHash":
        """Chain one more item onto the sequence."""
        self._state = _sha512(self._state + h(item))
        self._count += 1
        return self

    def add_many(self, items: Iterable[Buffer]) -> "SeqHash":
        """Chain many items in order, one reused hasher object per link.

        Byte-identical to repeated :meth:`add`: each link is still
        ``sha512(state || h(item))``, but state and item digest are fed
        to the hasher as two updates, skipping the intermediate 128-byte
        concatenation that :meth:`add` allocates per link.
        """
        state = self._state
        sha512 = hashlib.sha512
        count = 0
        for item in items:
            hasher = sha512(state)
            hasher.update(h(item))
            state = hasher.digest()
            count += 1
        if count:
            HASH_STATS.shard().sha512_calls += count
            self._state = state
            self._count += count
        return self

    @property
    def count(self) -> int:
        """Number of items chained so far."""
        return self._count

    def digest(self) -> bytes:
        """The 64-byte chain digest."""
        return self._state

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self._state.hex()

    def copy(self) -> "SeqHash":
        """An independent copy of the running chain state."""
        dup = SeqHash()
        dup._state = self._state
        dup._count = self._count
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeqHash):
            return NotImplemented
        return self._state == other._state

    def __hash__(self) -> int:
        return hash(self._state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeqHash(count={self._count}, digest={self.hexdigest()[:16]}…)"


def seq_hash(items: Iterable[Buffer]) -> bytes:
    """One-shot ``Hs`` over an ordered iterable of encoded tuples."""
    return SeqHash(items).digest()


def add_hash(items: Iterable[Buffer]) -> bytes:
    """One-shot ADD-HASH over an iterable of encoded tuples."""
    return AddHash(items).digest()
