"""Hash constructions (ADD-HASH, Hs) and auditor signatures."""

from .hashes import (DIGEST_BYTES, HASH_STATS, AddHash, HashStats, SeqHash,
                     add_hash, h, h_int, seq_hash)
from .signatures import SIGNATURE_BYTES, AuditorKey

__all__ = [
    "AddHash", "AuditorKey", "DIGEST_BYTES", "HASH_STATS", "HashStats",
    "SIGNATURE_BYTES", "SeqHash", "add_hash", "h", "h_int", "seq_hash",
]
