"""Hash constructions (ADD-HASH, Hs), batched digests, and signatures."""

from .batch import seq_hash_page
from .hashes import (DIGEST_BYTES, HASH_STATS, AddHash, Buffer, HashStats,
                     SeqHash, add_hash, h, h_int, seq_hash)
from .pool import GIL_RELEASE_MIN, DigestPool
from .signatures import SIGNATURE_BYTES, AuditorKey

__all__ = [
    "AddHash", "AuditorKey", "Buffer", "DIGEST_BYTES", "DigestPool",
    "GIL_RELEASE_MIN", "HASH_STATS", "HashStats", "SIGNATURE_BYTES",
    "SeqHash", "add_hash", "h", "h_int", "seq_hash", "seq_hash_page",
]
