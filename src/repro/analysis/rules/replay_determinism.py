"""replay-determinism: audit replay must be a pure function of the log.

Paper invariant (Section V): the auditor re-derives every page hash
``Hs`` and the ADD-HASH completeness digest purely from the snapshot and
the compliance log; any nondeterminism in what the engine *feeds* those
hashes (wall-clock reads, unseeded randomness, dict-order iteration)
makes the honest system indistinguishable from a tampered one.

Flagged anywhere in the linted set:

* wall-clock / entropy calls: ``time.time``, ``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, anything from ``secrets`` — the engine runs
  on :class:`~repro.common.clock.SimulatedClock`, full stop.
  (``time.perf_counter`` is allowed: it feeds metrics, never hashes.)
* module-level ``random.<fn>(...)`` calls and unseeded
  ``random.Random()`` — a seeded ``random.Random(seed)`` instance is
  deterministic and allowed (the TPC-C generators use one).
* hash constructions fed by an **unsorted dict view**:
  ``SeqHash``/``AddHash``/``seq_hash``/``add_hash``/``h`` whose argument
  is ``<d>.values()/items()/keys()`` (directly or as the iterable of a
  comprehension) without a ``sorted(...)`` wrapper.  ADD-HASH is
  commutative, so a deliberate unsorted feed there may be suppressed
  with a justification; ``Hs`` is order-sensitive and never may be.

Since lint v2 a second, **interprocedural** rule rides in this module:
``replay-reachability``.  Every function in the audit replay surface (``audit.py``, ``parallel_audit.py``, ``forensics.py``,
``recovery.py`` under ``repro``, plus any module marked
``# repro-lint: replay-root``) is a reachability root, and a call site
in reachable code whose resolved callee *transitively* performs a
wall-clock/entropy read is flagged where the contamination enters the
replay surface — wrapping ``time.time()`` in a helper module no longer
hides it from the audit path.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Set, Tuple

from ..callgraph import iter_calls
from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    register_rule)

#: modules under ``repro`` that are always replay/audit reachability roots
_AUDIT_BASENAMES = {"audit.py", "parallel_audit.py", "forensics.py",
                    "recovery.py"}

_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "os.urandom": "entropy source",
    "uuid.uuid1": "entropy source",
    "uuid.uuid4": "entropy source",
}

_HASH_CALLEES = {"SeqHash", "AddHash", "seq_hash", "add_hash", "h"}
_DICT_VIEWS = {"values", "items", "keys"}


def _unsorted_view(node: ast.expr) -> Optional[str]:
    """The ``.values()``-style view call in ``node``, if unsorted."""
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr in _DICT_VIEWS:
        receiver = dotted_name(node.func.value) or "<expr>"
        return f"{receiver}.{node.func.attr}()"
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        for comp in node.generators:
            view = _unsorted_view(comp.iter)
            if view is not None:
                return view
    return None


def _forbidden_desc(call: ast.Call) -> Optional[str]:
    """Short description when ``call`` is a direct nondeterminism source.

    The predicate the interprocedural pass runs down the call graph;
    mirrors the direct-ban logic of :meth:`check_module`.
    """
    callee = dotted_name(call.func)
    if callee is None:
        return None
    if callee in _FORBIDDEN_CALLS:
        return f"{callee}() ({_FORBIDDEN_CALLS[callee]})"
    if callee.startswith("secrets."):
        return f"{callee}() (shared entropy)"
    if callee.startswith("random."):
        fn = callee.split(".", 1)[1]
        if fn != "Random":
            return f"{callee}() (shared/unseeded randomness)"
        if not call.args and not call.keywords:
            return "random.Random() with no seed"
    return None


@register_rule
class ReplayDeterminismRule(Rule):
    """No wall clocks, entropy, or dict-order feeds into audit hashes."""

    name = "replay-determinism"
    description = ("forbid time.time/random and unsorted-dict iteration "
                   "feeding Hs/ADD-HASH")
    invariant = ("Section V: the auditor's replay must re-derive every "
                 "digest purely from the snapshot and the log")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee in _FORBIDDEN_CALLS:
                findings.append(LintFinding(
                    self.name, unit.path, node.lineno, node.col_offset,
                    f"{callee}() is a {_FORBIDDEN_CALLS[callee]} — replay "
                    "must take time from the SimulatedClock/Compliance "
                    "Clock only"))
            elif callee is not None and (callee.startswith("random.") or
                                         callee.startswith("secrets.")):
                fn = callee.split(".", 1)[1]
                if callee.startswith("secrets.") or fn != "Random":
                    findings.append(LintFinding(
                        self.name, unit.path, node.lineno,
                        node.col_offset,
                        f"{callee}() draws from shared/unseeded "
                        "randomness — use a seeded random.Random(seed) "
                        "instance"))
                elif not node.args and not node.keywords:
                    findings.append(LintFinding(
                        self.name, unit.path, node.lineno,
                        node.col_offset,
                        "random.Random() without a seed is "
                        "nondeterministic — pass an explicit seed"))
            func_name = node.func.id if isinstance(node.func, ast.Name) \
                else None
            if func_name in _HASH_CALLEES:
                for arg in node.args:
                    view = _unsorted_view(arg)
                    if view is not None:
                        findings.append(LintFinding(
                            self.name, unit.path, node.lineno,
                            node.col_offset,
                            f"{func_name}({view}) feeds dict-order "
                            "iteration into a hash — wrap the view in "
                            "sorted(...) or justify why order cannot "
                            "matter"))
        return findings


@register_rule
class ReplayReachabilityRule(Rule):
    """Nondeterminism reachable from the audit replay surface."""

    name = "replay-reachability"
    description = ("flag replay/audit-reachable call sites whose callees "
                   "transitively read wall clocks or entropy")
    invariant = ("Section V: every function the auditor's replay can "
                 "reach must be deterministic, not just the replay "
                 "modules themselves")

    def finalize(self, project: Project) -> List[LintFinding]:
        """Interprocedural pass: nondeterminism reachable from replay.

        Call sites *inside* the replay surface whose resolved callees
        transitively hit a wall-clock/entropy read are flagged at the
        point where the contamination enters — the direct per-module
        bans of ``replay-determinism`` already cover the source itself.
        """
        graph = project.callgraph()
        roots = []
        for unit in project.units:
            if unit.replay_root or (
                    Path(unit.path).name in _AUDIT_BASENAMES and
                    unit.in_repro_package()):
                roots.extend(graph.functions_of_unit(unit))
        if not roots:
            return []
        findings: List[LintFinding] = []
        seen: Set[Tuple[str, int, int]] = set()
        for key in sorted(graph.reachable_functions(roots)):
            info = graph.functions[key]
            for call in iter_calls(info.node):
                for target in graph.resolve_call(call, info):
                    hit = graph.reaches(target, _forbidden_desc)
                    if hit is None:
                        continue
                    site = (info.unit.path, call.lineno,
                            call.col_offset)
                    if site not in seen:
                        seen.add(site)
                        findings.append(LintFinding(
                            self.name, info.unit.path, call.lineno,
                            call.col_offset,
                            f"replay-reachable call in "
                            f"'{info.qualname}' reaches {hit} via "
                            f"'{target.qualname}' — the audit replay "
                            "surface must be deterministic"))
                    break
        return findings
