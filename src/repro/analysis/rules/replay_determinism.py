"""replay-determinism: audit replay must be a pure function of the log.

Paper invariant (Section V): the auditor re-derives every page hash
``Hs`` and the ADD-HASH completeness digest purely from the snapshot and
the compliance log; any nondeterminism in what the engine *feeds* those
hashes (wall-clock reads, unseeded randomness, dict-order iteration)
makes the honest system indistinguishable from a tampered one.

Flagged anywhere in the linted set:

* wall-clock / entropy calls: ``time.time``, ``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, anything from ``secrets`` — the engine runs
  on :class:`~repro.common.clock.SimulatedClock`, full stop.
  (``time.perf_counter`` is allowed: it feeds metrics, never hashes.)
* module-level ``random.<fn>(...)`` calls and unseeded
  ``random.Random()`` — a seeded ``random.Random(seed)`` instance is
  deterministic and allowed (the TPC-C generators use one).
* hash constructions fed by an **unsorted dict view**:
  ``SeqHash``/``AddHash``/``seq_hash``/``add_hash``/``h`` whose argument
  is ``<d>.values()/items()/keys()`` (directly or as the iterable of a
  comprehension) without a ``sorted(...)`` wrapper.  ADD-HASH is
  commutative, so a deliberate unsorted feed there may be suppressed
  with a justification; ``Hs`` is order-sensitive and never may be.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    register_rule)

_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "os.urandom": "entropy source",
    "uuid.uuid1": "entropy source",
    "uuid.uuid4": "entropy source",
}

_HASH_CALLEES = {"SeqHash", "AddHash", "seq_hash", "add_hash", "h"}
_DICT_VIEWS = {"values", "items", "keys"}


def _unsorted_view(node: ast.expr) -> Optional[str]:
    """The ``.values()``-style view call in ``node``, if unsorted."""
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr in _DICT_VIEWS:
        receiver = dotted_name(node.func.value) or "<expr>"
        return f"{receiver}.{node.func.attr}()"
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        for comp in node.generators:
            view = _unsorted_view(comp.iter)
            if view is not None:
                return view
    return None


@register_rule
class ReplayDeterminismRule(Rule):
    """No wall clocks, entropy, or dict-order feeds into audit hashes."""

    name = "replay-determinism"
    description = ("forbid time.time/random and unsorted-dict iteration "
                   "feeding Hs/ADD-HASH")
    invariant = ("Section V: the auditor's replay must re-derive every "
                 "digest purely from the snapshot and the log")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee in _FORBIDDEN_CALLS:
                findings.append(LintFinding(
                    self.name, unit.path, node.lineno, node.col_offset,
                    f"{callee}() is a {_FORBIDDEN_CALLS[callee]} — replay "
                    "must take time from the SimulatedClock/Compliance "
                    "Clock only"))
            elif callee is not None and (callee.startswith("random.") or
                                         callee.startswith("secrets.")):
                fn = callee.split(".", 1)[1]
                if callee.startswith("secrets.") or fn != "Random":
                    findings.append(LintFinding(
                        self.name, unit.path, node.lineno,
                        node.col_offset,
                        f"{callee}() draws from shared/unseeded "
                        "randomness — use a seeded random.Random(seed) "
                        "instance"))
                elif not node.args and not node.keywords:
                    findings.append(LintFinding(
                        self.name, unit.path, node.lineno,
                        node.col_offset,
                        "random.Random() without a seed is "
                        "nondeterministic — pass an explicit seed"))
            func_name = node.func.id if isinstance(node.func, ast.Name) \
                else None
            if func_name in _HASH_CALLEES:
                for arg in node.args:
                    view = _unsorted_view(arg)
                    if view is not None:
                        findings.append(LintFinding(
                            self.name, unit.path, node.lineno,
                            node.col_offset,
                            f"{func_name}({view}) feeds dict-order "
                            "iteration into a hash — wrap the view in "
                            "sorted(...) or justify why order cannot "
                            "matter"))
        return findings
