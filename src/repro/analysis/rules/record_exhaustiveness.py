"""record-exhaustiveness: every record type must be dispatched everywhere.

Paper invariant (Sections IV–V): the auditor's verdict is only sound if
*every* record kind the engine can emit is accounted for by crash
recovery, by the audit's log replay, and by the forensic localiser.  A
record type added to ``wal/records.py`` or ``core/records.py`` without a
matching arm silently falls through those dispatchers — the classic
refactor hazard this linter exists to close ("new record types fail the
build until handled").

A module is a *dispatcher* for an enum when either

* its basename appears in :data:`DEFAULT_DISPATCHERS` (the three
  protocol modules of this tree), or
* it carries a ``# repro-lint: exhaustive=<EnumName>`` marker (used by
  fixtures and future dispatch sites).

A member counts as **handled** in a dispatcher when the module mentions
it as an ``<Enum>.<MEMBER>`` attribute (including inside explicit
"deliberately ignored" sets, which thereby document the decision) or
defines a ``_on_<member>`` handler method (the audit's dynamic-dispatch
idiom).  The enum definitions themselves are discovered in the linted
file set, so the rule works on any subset that includes them.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, List, Set

from ..core import (LintFinding, ModuleUnit, Project, Rule, iter_functions,
                    register_rule)

#: module basename -> enums it must dispatch exhaustively
DEFAULT_DISPATCHERS: Dict[str, List[str]] = {
    "recovery.py": ["WalRecordType"],
    "audit.py": ["CLogType"],
    "forensics.py": ["CLogType"],
}

#: enums the default map knows about (markers may add others)
KNOWN_ENUMS = ("WalRecordType", "CLogType")


def _mentioned_members(unit: ModuleUnit, enum_name: str) -> Set[str]:
    mentioned: Set[str] = set()
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == enum_name:
            mentioned.add(node.attr)
    for fn in iter_functions(unit.tree):
        if fn.name.startswith("_on_"):
            mentioned.add(fn.name[len("_on_"):].upper())
    return mentioned


def _defines_enum(unit: ModuleUnit, enum_name: str) -> bool:
    return any(isinstance(node, ast.ClassDef) and node.name == enum_name
               for node in ast.walk(unit.tree))


@register_rule
class RecordExhaustivenessRule(Rule):
    """Recovery/replay/forensics must handle every declared record type."""

    name = "record-exhaustiveness"
    description = ("every WAL/compliance record type must appear in "
                   "recovery, audit-replay, and forensics dispatch")
    invariant = ("Sections IV–V: the audit verdict is sound only if every "
                 "record kind is accounted for by every dispatcher")

    def finalize(self, project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for unit in project.units:
            basename = PurePath(unit.path).name
            enums = list(DEFAULT_DISPATCHERS.get(basename, []))
            enums.extend(mark for mark in unit.exhaustive_marks
                         if mark not in enums)
            for enum_name in enums:
                if _defines_enum(unit, enum_name) and \
                        enum_name in DEFAULT_DISPATCHERS.get(basename, []):
                    # the defining module is not its own dispatcher
                    continue
                members = project.enum_members(enum_name)
                if members is None:
                    findings.append(LintFinding(
                        self.name, unit.path, 1, 0,
                        f"dispatcher declares enum {enum_name!r} but its "
                        "definition is not in the linted file set — lint "
                        "the whole package so exhaustiveness can be "
                        "checked"))
                    continue
                missing = [m for m in members
                           if m not in _mentioned_members(unit, enum_name)]
                for member in missing:
                    findings.append(LintFinding(
                        self.name, unit.path, 1, 0,
                        f"{enum_name}.{member} has no dispatch arm in "
                        f"{basename} — handle it or add it to an "
                        "explicit ignored-set with a comment explaining "
                        "why it cannot occur here"))
        return findings
