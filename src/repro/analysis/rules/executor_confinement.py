"""executor-confinement: only the writer thread touches the database.

Invariant (PR 7 server design, DESIGN.md §11): ``CompliantDB`` is a
single-caller library — the strict-2PL lock table and the storage
layers below it take no internal locks, so the *only* thing standing
between a multi-client server and data races is the
``SingleWriterExecutor`` discipline: one worker thread owns the
database, and every ``self.db`` access or session-transaction mutation
happens either inside an ``_op_*`` handler (dispatched on the writer
thread) or inside a closure submitted to the executor.

The rule finds every class that constructs a ``SingleWriterExecutor``
(a *confined* class) and checks each of its methods: a method that
touches ``self.db`` or a ``*.txns`` transaction table must be

* an ``_op_*`` handler, or a function reachable (via the call graph)
  from one — e.g. the ``_txn``/``_write`` helpers; or
* reachable from a closure passed to ``executor.submit(...)`` — the
  session-close abort path; or
* ``__init__`` (wiring happens before the writer thread starts); or
* touching only inside a lambda that is itself a ``submit`` argument.

Anything else is a session-thread touch racing the writer.  The rule is
structural, so a method that is only ever *called* before the executor
starts still needs a justified suppression — better an explicit why
than an invisible race.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..callgraph import CallGraph, FunctionInfo, iter_calls
from ..core import (LintFinding, ModuleUnit, Project, Rule,
                    register_rule)

_SUBMIT_ATTRS = {"submit", "force"}


def _confined_classes(tree: ast.Module) -> Set[str]:
    """Names of classes that assign a SingleWriterExecutor attribute."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign) and \
                    isinstance(inner.value, ast.Call):
                func = inner.value.func
                callee = func.attr if isinstance(func, ast.Attribute) \
                    else func.id if isinstance(func, ast.Name) else ""
                if callee == "SingleWriterExecutor":
                    out.add(node.name)
                    break
    return out


def _submit_closures(tree: ast.Module) -> Set[int]:
    """ids of lambda/def nodes passed as arguments to submit/force."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SUBMIT_ATTRS:
            for arg in list(node.args) + \
                    [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    out.add(id(arg))
    return out


def _touches(fn: ast.AST, skip_ids: Set[int]) -> List[ast.Attribute]:
    """``self.db`` / ``*.txns`` attribute accesses outside submit args.

    Nested function definitions are skipped — they are checked as
    functions in their own right — but a lambda that is *not* a submit
    argument runs on whatever thread calls it, so its touches count.
    """
    found: List[ast.Attribute] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if id(child) in skip_ids or \
                    isinstance(child, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Attribute) and (
                    (child.attr == "db" and
                     isinstance(child.value, ast.Name) and
                     child.value.id == "self") or
                    child.attr == "txns"):
                found.append(child)
            visit(child)

    visit(fn)
    return found


@register_rule
class ExecutorConfinementRule(Rule):
    """Database state touched off the single-writer thread."""

    name = "executor-confinement"
    description = ("server classes may touch CompliantDB/txn state only "
                   "on the SingleWriterExecutor's thread")
    invariant = ("DESIGN.md §11: the executor's serial order IS the "
                 "database's serial history; a session-thread touch is "
                 "a data race")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        confined = _confined_classes(unit.tree)
        if not confined:
            return []
        graph = project.callgraph()
        submit_ids = _submit_closures(unit.tree)
        roots = []
        methods = [info for info in graph.functions_of_unit(unit)
                   if info.class_name in confined]
        for info in methods:
            if info.name.startswith("_op_"):
                roots.append(info)
        roots.extend(self._submitted_targets(unit, graph, submit_ids))
        writer_keys = graph.reachable_functions(roots) if roots else set()
        findings: List[LintFinding] = []
        for info in methods:
            if info.name == "__init__" or info.key in writer_keys:
                continue
            for touch in _touches(info.node, submit_ids):
                state = "self.db" if touch.attr == "db" else \
                    "the session txn table"
                findings.append(LintFinding(
                    self.name, unit.path, touch.lineno, touch.col_offset,
                    f"'{info.qualname}' touches {state} outside the "
                    "writer thread — wrap the access in "
                    "executor.submit(...) or move it into an _op_* "
                    "handler"))
        return findings

    def _submitted_targets(self, unit: ModuleUnit, graph: CallGraph,
                           submit_ids: Set[int]) -> List[FunctionInfo]:
        """Functions invoked from inside submit(...) closures."""
        out: List[FunctionInfo] = []
        for node in ast.walk(unit.tree):
            if id(node) not in submit_ids:
                continue
            caller = _enclosing_info(graph, unit, node)
            for call in iter_calls(node):
                out.extend(graph.resolve_call(call, caller))
        return out


def _enclosing_info(graph: CallGraph, unit: ModuleUnit,
                    target: ast.AST) -> Optional[FunctionInfo]:
    """The indexed function whose body contains ``target``."""
    for info in graph.functions_of_unit(unit):
        if any(node is target for node in ast.walk(info.node)):
            return info
    return None
